//! Non-commutative messages: label-propagation community detection.
//!
//! LPA's update needs the full multiset of neighbor labels, so messages
//! can only be *concatenated*, never combined — which rules out pushM,
//! switches VE-BLOCK sizing to Eq. 6, and disables b-pull's pre-pull
//! pipeline. This example runs LPA on an orkut stand-in and reports the
//! communities found plus how concatenation alone still saves traffic.
//!
//! ```text
//! cargo run --release --example community
//! ```

use hybridgraph::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let graph = Dataset::Orkut.build_scaled(2000);
    println!(
        "graph: {} vertices, {} edges (dense social network)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cfg = JobConfig::new(Mode::BPull, 5).with_buffer(500);
    let res = run_job(Arc::new(Lpa::new(5)), &graph, cfg).expect("job failed");

    // Community size distribution.
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for &label in &res.values {
        *sizes.entry(label).or_insert(0) += 1;
    }
    let mut by_size: Vec<(u32, usize)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!(
        "\n{} communities after 5 supersteps; largest:",
        by_size.len()
    );
    for (label, n) in by_size.iter().take(8) {
        println!("  label {label}: {n} members");
    }

    // Concatenation effectiveness (Appendix E's point: even without a
    // combiner, grouping messages by destination shares the id bytes).
    let raw: u64 = res.metrics.steps.iter().map(|s| s.net_raw_messages).sum();
    let saved: u64 = res.metrics.steps.iter().map(|s| s.net_saved_messages).sum();
    println!(
        "\nmessages {} raw, {} merged into shared-id groups ({:.0}% concatenation ratio)",
        raw,
        saved,
        100.0 * saved as f64 / raw.max(1) as f64
    );
    println!(
        "network bytes: {}, I/O bytes: {}",
        res.metrics.total_net_bytes(),
        res.metrics.total_io_bytes()
    );
}
