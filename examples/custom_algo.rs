//! Writing your own vertex program: degree-weighted gossip.
//!
//! Demonstrates the decoupled API the engine exposes (paper §5.2): you
//! write one `update()` plus one per-edge `message()` generator, and the
//! same program runs under push, pull, b-pull and hybrid unchanged.
//!
//! The algorithm: every vertex starts with heat `out_degree(v)` and, for
//! a fixed number of rounds, sends half its heat split across its
//! out-edges, keeping the other half — a damped diffusion whose fixpoint
//! concentrates heat in high-in-degree hubs.
//!
//! ```text
//! cargo run --release --example custom_algo
//! ```

use hybridgraph::net::combine::SumCombiner;
use hybridgraph::net::Combiner;
use hybridgraph::prelude::*;
use std::sync::Arc;

/// Heat diffusion: value = current heat, message = heat contribution.
struct HeatDiffusion {
    rounds: u64,
    combiner: SumCombiner,
}

impl VertexProgram for HeatDiffusion {
    type Value = f64;
    type Message = f64;

    fn name(&self) -> &'static str {
        "HeatDiffusion"
    }

    fn init(&self, _v: VertexId, _info: &GraphInfo) -> f64 {
        0.0
    }

    fn update(
        &self,
        _v: VertexId,
        _info: &GraphInfo,
        superstep: u64,
        current: &f64,
        msgs: &[f64],
    ) -> Update<f64> {
        let incoming: f64 = msgs.iter().sum();
        let value = if superstep == 1 {
            // Seed: heat proportional to nothing yet — everyone starts
            // at 1.0 and diffuses from there.
            1.0
        } else {
            current * 0.5 + incoming
        };
        Update::respond(value)
    }

    fn message(&self, _src: VertexId, value: &f64, out_degree: u32, _edge: &Edge) -> Option<f64> {
        // Send away half the heat, split over out-edges.
        Some(value * 0.5 / out_degree as f64)
    }

    fn combiner(&self) -> Option<&dyn Combiner<f64>> {
        Some(&self.combiner)
    }

    fn max_supersteps(&self) -> Option<u64> {
        Some(self.rounds)
    }
}

fn main() {
    let graph = Dataset::Twi.build_scaled(20_000);
    println!(
        "graph: {} vertices, {} edges, max degree {} (heavy skew)",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    let program = Arc::new(HeatDiffusion {
        rounds: 8,
        combiner: SumCombiner,
    });

    // The same program under three engines; results must agree.
    let mut baseline: Option<Vec<f64>> = None;
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let cfg = JobConfig::new(mode, 4).with_buffer(200);
        let res = run_job(Arc::clone(&program), &graph, cfg).expect("job failed");
        println!(
            "{:<8} modeled {:>8.4}s, {:>9} I/O bytes, {} supersteps",
            mode.label(),
            res.metrics.modeled_total_secs(),
            res.metrics.total_io_bytes(),
            res.metrics.supersteps()
        );
        match &baseline {
            None => baseline = Some(res.values),
            Some(want) => {
                for (a, b) in want.iter().zip(&res.values) {
                    assert!((a - b).abs() < 1e-9, "modes disagree: {a} vs {b}");
                }
            }
        }
    }

    let values = baseline.unwrap();
    let mut hot: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nhottest vertices after diffusion:");
    for (v, heat) in hot.into_iter().take(5) {
        println!("  v{v}: {heat:.3}");
    }
}
