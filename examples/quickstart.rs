//! Quickstart: PageRank over a scaled LiveJournal stand-in, run under
//! every message-handling strategy, printing runtimes and the hybrid
//! engine's choices.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hybridgraph::prelude::*;
use std::sync::Arc;

fn main() {
    // A 1/2000-scale stand-in for the paper's LiveJournal graph
    // (~2.4 K vertices, ~34 K edges, power-law, avg degree 14).
    let graph = Dataset::LiveJ.build_scaled(2000);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // The limited-memory scenario: each of 5 workers may hold only 250
    // messages in memory; the rest spills to (simulated) disk.
    let buffer = 250;
    println!(
        "\n{:<8} {:>12} {:>14} {:>12}",
        "mode", "modeled s", "io bytes", "net bytes"
    );
    for mode in [
        Mode::Push,
        Mode::PushM,
        Mode::Pull,
        Mode::BPull,
        Mode::Hybrid,
    ] {
        let cfg = JobConfig::new(mode, 5).with_buffer(buffer);
        let result = run_job(Arc::new(PageRank::new(5)), &graph, cfg).expect("job failed");
        let m = &result.metrics;
        println!(
            "{:<8} {:>12.4} {:>14} {:>12}",
            mode.label(),
            m.modeled_total_secs(),
            m.total_io_bytes(),
            m.total_net_bytes(),
        );
    }

    // Run hybrid once more and show what it decided.
    let cfg = JobConfig::new(Mode::Hybrid, 5).with_buffer(buffer);
    let result = run_job(Arc::new(PageRank::new(5)), &graph, cfg).expect("job failed");
    println!(
        "\nhybrid: started in {} (Theorem 2: B⊥ = {} messages), switches: {:?}",
        result.metrics.load.initial_mode.label(),
        result.metrics.load.b_lower_bound,
        result.metrics.switches,
    );

    // The five highest-ranked vertices.
    let mut ranked: Vec<(usize, f64)> = result.values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 5 by rank:");
    for (v, rank) in ranked.into_iter().take(5) {
        println!("  v{v}: {rank:.6}");
    }
}
