//! Traversal workload: SSSP over a long-diameter web-like graph — the
//! case hybrid was built for. The active set swells then shrinks over
//! many supersteps; b-pull wins the message-heavy middle, push wins the
//! sparse tail, and hybrid switches between them per the `Q_t` metric.
//!
//! ```text
//! cargo run --release --example shortest_paths
//! ```

use hybridgraph::prelude::*;
use std::sync::Arc;

fn main() {
    // The wiki stand-in has a chain tail, so SSSP has a long convergent
    // stage (the paper's wiki needs 284 supersteps).
    let graph = Dataset::Wiki.build_scaled(2000);
    let source = graph
        .vertices()
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();
    println!(
        "graph: {} vertices, {} edges; source {} (out-degree {})",
        graph.num_vertices(),
        graph.num_edges(),
        source,
        graph.out_degree(source)
    );

    let mut results = Vec::new();
    for mode in [Mode::Push, Mode::BPull, Mode::Hybrid] {
        let cfg = JobConfig::new(mode, 5).with_buffer(300);
        let res = run_job(Arc::new(Sssp::new(source)), &graph, cfg).expect("job failed");
        println!(
            "{:<8} {:>3} supersteps, modeled {:>8.4}s, switches {:?}",
            mode.label(),
            res.metrics.supersteps(),
            res.metrics.modeled_total_secs(),
            res.metrics.switches
        );
        results.push(res);
    }

    // All modes agree on the distances.
    let dists = &results[0].values;
    for r in &results[1..] {
        assert_eq!(
            dists.len(),
            r.values.len(),
            "modes must produce identical shapes"
        );
        for (a, b) in dists.iter().zip(&r.values) {
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4,
                "modes disagree: {a} vs {b}"
            );
        }
    }
    let reached = dists.iter().filter(|d| d.is_finite()).count();
    let max = dists
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .fold(0.0f32, f32::max);
    println!(
        "\n{} of {} vertices reachable; eccentricity {:.1}",
        reached,
        dists.len(),
        max
    );

    // The hybrid run's per-superstep story: messages and mode.
    println!("\nhybrid per-superstep:");
    println!("{:>4} {:>12} {:>10} {:>10}", "t", "mode", "messages", "Q_t");
    for s in &results[2].metrics.steps {
        println!(
            "{:>4} {:>12} {:>10} {:>+10.2e}",
            s.superstep,
            s.kind.label(),
            s.messages_produced,
            s.q_metric
        );
    }
}
