//! Service write-ahead-log record kinds and their payload codecs.
//!
//! The durable [`GraphService`](crate::GraphService) appends one record
//! per state transition to a [`ServiceLog`] on its VFS. Replaying the
//! records in commit order rebuilds the whole control plane — catalog,
//! admission queue, per-job master snapshots, shared-cache contents —
//! without re-parsing any graph source:
//!
//! | kind | record | meaning |
//! |------|--------|---------|
//! | 1 | `GraphRegistered` | name, id, spec and the full graph blob |
//! | 2 | `GraphEvicted` | registration withdrawn; drop it on replay |
//! | 3 | `JobAdmitted` | a job id was assigned for a graph |
//! | 4 | `JobStarted` | the job left the queue and holds a lane |
//! | 5 | `JobBarrier` | durable superstep cut: master snapshot + lane vtime + cache |
//! | 6 | `JobFinished` | the job is over (any outcome); final cache state |
//!
//! Barrier and finish records carry a [`CacheSnapshot`] so the shared
//! edge cache resumes with the exact hit/miss/recency state it had at
//! the last durable cut — the post-restart `io_ratio` of a resumed run
//! then matches the uninterrupted run byte for byte.

use hybridgraph_graph::{Edge, Graph, VertexId};
use hybridgraph_storage::shared_cache::ExtentKey;
use hybridgraph_storage::{
    codec_from_tag, codec_tag, decode_graph, encode_graph, CacheSnapshot, LogRecord, PayloadReader,
    PayloadWriter, ShardSnapshot,
};
use std::io;
use std::sync::Arc;

use crate::catalog::GraphSpec;

/// Kind byte of a [`WalRecord::GraphRegistered`] record.
pub const KIND_GRAPH_REGISTERED: u8 = 1;
/// Kind byte of a [`WalRecord::GraphEvicted`] record.
pub const KIND_GRAPH_EVICTED: u8 = 2;
/// Kind byte of a [`WalRecord::JobAdmitted`] record.
pub const KIND_JOB_ADMITTED: u8 = 3;
/// Kind byte of a [`WalRecord::JobStarted`] record.
pub const KIND_JOB_STARTED: u8 = 4;
/// Kind byte of a [`WalRecord::JobBarrier`] record.
pub const KIND_JOB_BARRIER: u8 = 5;
/// Kind byte of a [`WalRecord::JobFinished`] record.
pub const KIND_JOB_FINISHED: u8 = 6;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt service record: {what}"),
    )
}

/// One decoded service-log record.
#[derive(Debug)]
pub enum WalRecord {
    /// A graph entered the catalog.
    GraphRegistered {
        /// Registration name.
        name: String,
        /// Catalog id (embedded in shared-cache extent keys).
        id: u32,
        /// Store layout the graph was built with.
        spec: GraphSpec,
        /// The graph itself, decoded from the record's blob.
        graph: Graph,
    },
    /// A graph left the catalog.
    GraphEvicted {
        /// Registration name.
        name: String,
        /// Catalog id it held.
        id: u32,
    },
    /// A job id was assigned.
    JobAdmitted {
        /// Assigned job id.
        job_id: u64,
        /// Graph the job runs over.
        graph: String,
    },
    /// The job left the admission queue and holds a scheduler lane.
    JobStarted {
        /// Job id.
        job_id: u64,
    },
    /// A durable superstep cut.
    JobBarrier {
        /// Job id.
        job_id: u64,
        /// Superstep the cut covers.
        superstep: u64,
        /// The job lane's virtual time at the cut.
        lane_vtime: f64,
        /// Encoded [`MasterState`](hybridgraph_core::MasterState).
        state: Vec<u8>,
        /// Shared edge cache at the cut.
        cache: CacheSnapshot,
    },
    /// The job completed (success or permanent failure).
    JobFinished {
        /// Job id.
        job_id: u64,
        /// Shared edge cache after the job's last access.
        cache: CacheSnapshot,
    },
}

/// Encodes a graph-registration payload.
pub fn encode_graph_registered(name: &str, id: u32, spec: &GraphSpec, graph: &Graph) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_str(name);
    w.put_u32(id);
    w.put_u32(spec.workers as u32);
    w.put_u8(codec_tag(spec.codec));
    w.put_u32(spec.vblocks_per_worker as u32);
    w.put_bytes(&encode_graph(graph));
    w.into_bytes()
}

/// Encodes a graph-eviction payload.
pub fn encode_graph_evicted(name: &str, id: u32) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_str(name);
    w.put_u32(id);
    w.into_bytes()
}

/// Encodes a job-admission payload.
pub fn encode_job_admitted(job_id: u64, graph: &str) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(job_id);
    w.put_str(graph);
    w.into_bytes()
}

/// Encodes a job-start payload.
pub fn encode_job_started(job_id: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(job_id);
    w.into_bytes()
}

/// Encodes a durable-barrier payload.
pub fn encode_job_barrier(
    job_id: u64,
    superstep: u64,
    lane_vtime: f64,
    state: &[u8],
    cache: &CacheSnapshot,
) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(job_id);
    w.put_u64(superstep);
    w.put_f64(lane_vtime);
    w.put_bytes(state);
    put_cache(&mut w, cache);
    w.into_bytes()
}

/// Encodes a job-completion payload.
pub fn encode_job_finished(job_id: u64, cache: &CacheSnapshot) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(job_id);
    put_cache(&mut w, cache);
    w.into_bytes()
}

/// Decodes one replayed log record into its typed form.
pub fn decode_record(rec: &LogRecord) -> io::Result<WalRecord> {
    let mut r = PayloadReader::new(&rec.body);
    let out = match rec.kind {
        KIND_GRAPH_REGISTERED => {
            let name = r.get_str()?;
            let id = r.get_u32()?;
            let workers = r.get_u32()? as usize;
            let codec = codec_from_tag(r.get_u8()?)?;
            let vblocks = r.get_u32()? as usize;
            let graph = decode_graph(&r.get_bytes()?)?;
            WalRecord::GraphRegistered {
                name,
                id,
                spec: GraphSpec::new(workers)
                    .with_codec(codec)
                    .with_vblocks(vblocks),
                graph,
            }
        }
        KIND_GRAPH_EVICTED => WalRecord::GraphEvicted {
            name: r.get_str()?,
            id: r.get_u32()?,
        },
        KIND_JOB_ADMITTED => WalRecord::JobAdmitted {
            job_id: r.get_u64()?,
            graph: r.get_str()?,
        },
        KIND_JOB_STARTED => WalRecord::JobStarted {
            job_id: r.get_u64()?,
        },
        KIND_JOB_BARRIER => WalRecord::JobBarrier {
            job_id: r.get_u64()?,
            superstep: r.get_u64()?,
            lane_vtime: r.get_f64()?,
            state: r.get_bytes()?,
            cache: get_cache(&mut r)?,
        },
        KIND_JOB_FINISHED => WalRecord::JobFinished {
            job_id: r.get_u64()?,
            cache: get_cache(&mut r)?,
        },
        k => return Err(corrupt(&format!("unknown record kind {k}"))),
    };
    if !r.done() {
        return Err(corrupt("trailing bytes after record payload"));
    }
    Ok(out)
}

/// Serializes a shared-cache snapshot: per shard the MRU-ordered entries
/// (extent key, weight, edge run) plus the hit/miss/eviction counters.
fn put_cache(w: &mut PayloadWriter, snap: &CacheSnapshot) {
    w.put_u64(snap.shards.len() as u64);
    for shard in &snap.shards {
        w.put_u64(shard.hits);
        w.put_u64(shard.misses);
        w.put_u64(shard.evictions);
        w.put_u64(shard.entries.len() as u64);
        for ((graph, extent), edges, weight) in &shard.entries {
            w.put_u32(*graph);
            w.put_u32(*extent);
            w.put_u64(*weight as u64);
            w.put_u64(edges.len() as u64);
            for e in edges.iter() {
                w.put_u32(e.dst.0);
                w.put_u32(e.weight.to_bits());
            }
        }
    }
}

fn get_cache(r: &mut PayloadReader<'_>) -> io::Result<CacheSnapshot> {
    let nshards = r.get_u64()? as usize;
    let mut shards = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let hits = r.get_u64()?;
        let misses = r.get_u64()?;
        let evictions = r.get_u64()?;
        let nentries = r.get_u64()? as usize;
        let mut entries: Vec<(ExtentKey, Arc<Vec<Edge>>, usize)> = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            let graph = r.get_u32()?;
            let extent = r.get_u32()?;
            let weight = r.get_u64()? as usize;
            let nedges = r.get_u64()? as usize;
            let mut edges = Vec::with_capacity(nedges);
            for _ in 0..nedges {
                let dst = r.get_u32()?;
                let bits = r.get_u32()?;
                edges.push(Edge::weighted(VertexId(dst), f32::from_bits(bits)));
            }
            entries.push(((graph, extent), Arc::new(edges), weight));
        }
        shards.push(ShardSnapshot {
            entries,
            hits,
            misses,
            evictions,
        });
    }
    Ok(CacheSnapshot { shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_storage::CodecChoice;

    fn sample_cache() -> CacheSnapshot {
        CacheSnapshot {
            shards: vec![
                ShardSnapshot {
                    entries: vec![
                        ((3, 9), Arc::new(vec![Edge::weighted(VertexId(4), 2.5)]), 48),
                        ((3, 1), Arc::new(Vec::new()), 32),
                    ],
                    hits: 11,
                    misses: 5,
                    evictions: 2,
                },
                ShardSnapshot {
                    entries: Vec::new(),
                    hits: 0,
                    misses: 1,
                    evictions: 0,
                },
            ],
        }
    }

    fn assert_cache_eq(a: &CacheSnapshot, b: &CacheSnapshot) {
        assert_eq!(a.shards.len(), b.shards.len());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.hits, y.hits);
            assert_eq!(x.misses, y.misses);
            assert_eq!(x.evictions, y.evictions);
            assert_eq!(x.entries.len(), y.entries.len());
            for ((ka, ea, wa), (kb, eb, wb)) in x.entries.iter().zip(&y.entries) {
                assert_eq!(ka, kb);
                assert_eq!(wa, wb);
                assert_eq!(ea.as_slice(), eb.as_slice());
            }
        }
    }

    #[test]
    fn graph_registration_roundtrips() {
        let g = Graph::from_parts(
            vec![0, 2, 3],
            vec![
                Edge::weighted(VertexId(1), 1.0),
                Edge::weighted(VertexId(0), 0.5),
                Edge::weighted(VertexId(0), 2.0),
            ],
        );
        let spec = GraphSpec::new(2)
            .with_codec(CodecChoice::Gaps)
            .with_vblocks(3);
        let body = encode_graph_registered("ring", 7, &spec, &g);
        let rec = LogRecord {
            kind: KIND_GRAPH_REGISTERED,
            body,
        };
        match decode_record(&rec).unwrap() {
            WalRecord::GraphRegistered {
                name,
                id,
                spec,
                graph,
            } => {
                assert_eq!(name, "ring");
                assert_eq!(id, 7);
                assert_eq!(spec.workers, 2);
                assert_eq!(spec.codec, CodecChoice::Gaps);
                assert_eq!(spec.vblocks_per_worker, 3);
                assert_eq!(graph.num_vertices(), 2);
                assert_eq!(graph.num_edges(), 3);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn barrier_record_roundtrips_cache_exactly() {
        let cache = sample_cache();
        let body = encode_job_barrier(42, 6, 1.25, b"master-bytes", &cache);
        let rec = LogRecord {
            kind: KIND_JOB_BARRIER,
            body,
        };
        match decode_record(&rec).unwrap() {
            WalRecord::JobBarrier {
                job_id,
                superstep,
                lane_vtime,
                state,
                cache: got,
            } => {
                assert_eq!(job_id, 42);
                assert_eq!(superstep, 6);
                assert_eq!(lane_vtime, 1.25);
                assert_eq!(state, b"master-bytes");
                assert_cache_eq(&cache, &got);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_rejected() {
        let rec = LogRecord {
            kind: 99,
            body: Vec::new(),
        };
        assert!(decode_record(&rec).is_err());

        let mut body = encode_job_started(3);
        body.push(0);
        let rec = LogRecord {
            kind: KIND_JOB_STARTED,
            body,
        };
        assert!(decode_record(&rec).is_err());
    }
}
