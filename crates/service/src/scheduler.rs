//! Deterministic round-robin scheduling of concurrent jobs.
//!
//! The service runs each job's master on its own OS thread, but thread
//! interleavings must never leak into results: the shared gather cache is
//! mutated by whichever job's superstep runs, so the *order of supersteps
//! across jobs* decides every hit, miss and eviction. The scheduler makes
//! that order a pure function of the submitted jobs, their (deterministic)
//! modeled times, and a seed:
//!
//! * Each job occupies one **lane**. Its master calls
//!   [`StepPacer::acquire`] before every unit of work (the load phase, one
//!   superstep, the final collect) and [`StepPacer::release`] afterwards
//!   with the unit's modeled seconds.
//! * A grant is issued only at a **cohort barrier**: the engine is free
//!   *and every active lane is parked in `acquire`*. No lane can sneak an
//!   extra unit in while another is still deciding — wall-clock speed
//!   differences between threads change nothing.
//! * The grant goes to the active lane with the smallest **virtual time**
//!   (sum of released modeled seconds); ties break by a per-lane
//!   [`splitmix64`] value derived from the seed, then by lane index.
//!   Virtual-time round-robin keeps cheap jobs from starving behind
//!   expensive ones while staying replayable.
//!
//! Joining and leaving are atomic with respect to grants: a newly joined
//! lane is active-but-unparked, which *blocks* the barrier until its
//! thread reaches `acquire` — so admission never races a grant. The
//! schedule is therefore byte-identically replayable for **batch
//! submissions** (all jobs submitted before any completes, as the
//! service's admission queue arranges); jobs submitted from the outside
//! mid-run interleave at whatever barrier happens to be next.

use hybridgraph_core::StepPacer;
use std::sync::{Arc, Condvar, Mutex};

/// SplitMix64 — the same tiny generator the graph crate seeds with.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Lane {
    /// False once the lane's job finished (left lanes never block grants).
    active: bool,
    /// True while the lane's master is blocked in `acquire`.
    parked: bool,
    /// Sum of modeled seconds released so far (the round-robin key).
    vtime: f64,
    /// Seeded tiebreak for equal virtual times.
    tiebreak: u64,
}

struct State {
    lanes: Vec<Lane>,
    /// The lane currently holding the engine, if any.
    holder: Option<usize>,
    /// Units granted so far (observability).
    grants: u64,
    /// Outstanding freezes; no grant is issued while nonzero.
    frozen: usize,
}

impl State {
    /// The lane the next grant goes to — `None` unless the engine is free
    /// and *all* active lanes are parked (the cohort barrier).
    fn chosen(&self) -> Option<usize> {
        if self.holder.is_some() || self.frozen > 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for (i, l) in self.lanes.iter().enumerate() {
            if !l.active {
                continue;
            }
            if !l.parked {
                return None; // barrier: someone is still running
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let cur = &self.lanes[b];
                    if (l.vtime, l.tiebreak, i) < (cur.vtime, cur.tiebreak, b) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }
}

/// The service-wide deterministic scheduler. One instance per
/// [`GraphService`](crate::GraphService).
pub struct RoundRobinScheduler {
    state: Mutex<State>,
    cv: Condvar,
    seed: u64,
}

impl RoundRobinScheduler {
    /// A scheduler whose tiebreaks derive from `seed`.
    pub fn new(seed: u64) -> Arc<RoundRobinScheduler> {
        Arc::new(RoundRobinScheduler {
            state: Mutex::new(State {
                lanes: Vec::new(),
                holder: None,
                grants: 0,
                frozen: 0,
            }),
            cv: Condvar::new(),
            seed,
        })
    }

    /// Registers a new lane and returns its index. The lane counts as
    /// active immediately, so grants stall until its thread parks —
    /// admission can never race a grant.
    pub fn join(&self) -> usize {
        let mut s = self.state.lock().unwrap();
        let lane = Self::join_locked(&mut s, self.seed);
        drop(s);
        self.cv.notify_all();
        lane
    }

    /// Registers a new lane starting at an explicit virtual time — a
    /// resumed job rejoining exactly where its previous incarnation's
    /// last durable barrier left it, so restarted runs see the same
    /// grant order as uninterrupted ones.
    pub fn join_at(&self, vtime: f64) -> usize {
        let mut s = self.state.lock().unwrap();
        let lane = s.lanes.len();
        s.lanes.push(Lane {
            active: true,
            parked: false,
            vtime: if vtime.is_finite() {
                vtime.max(0.0)
            } else {
                0.0
            },
            tiebreak: splitmix64(self.seed ^ lane as u64),
        });
        drop(s);
        self.cv.notify_all();
        lane
    }

    /// The virtual time `lane` has accumulated so far. Recorded in every
    /// durable barrier record so [`join_at`](Self::join_at) can restore
    /// the lane's scheduling position after a restart.
    pub fn lane_vtime(&self, lane: usize) -> f64 {
        self.state.lock().unwrap().lanes[lane].vtime
    }

    fn join_locked(s: &mut State, seed: u64) -> usize {
        let lane = s.lanes.len();
        // Join at the floor of the active lanes' virtual times so a
        // newcomer neither starves nor monopolizes.
        let floor = s
            .lanes
            .iter()
            .filter(|l| l.active)
            .map(|l| l.vtime)
            .fold(f64::INFINITY, f64::min);
        s.lanes.push(Lane {
            active: true,
            parked: false,
            vtime: if floor.is_finite() { floor } else { 0.0 },
            tiebreak: splitmix64(seed ^ lane as u64),
        });
        lane
    }

    /// Deactivates `lane`. If it still holds the engine (a job that
    /// errored out mid-unit), the engine is freed.
    pub fn leave(&self, lane: usize) {
        self.leave_joining(lane, 0);
    }

    /// Atomically deactivates `lane` and registers `joiners` new lanes —
    /// one critical section, so between a job's completion and the
    /// admission of its queued successors no grant can slip through.
    /// Returns the new lane indices.
    pub fn leave_joining(&self, lane: usize, joiners: usize) -> Vec<usize> {
        let mut s = self.state.lock().unwrap();
        s.lanes[lane].active = false;
        s.lanes[lane].parked = false;
        if s.holder == Some(lane) {
            s.holder = None;
        }
        let new: Vec<usize> = (0..joiners)
            .map(|_| Self::join_locked(&mut s, self.seed))
            .collect();
        drop(s);
        self.cv.notify_all();
        new
    }

    /// Suspends grants until the matching [`RoundRobinScheduler::thaw`].
    /// A submitter freezes around a *batch* of submissions so the very
    /// first grant is decided by the full cohort's `(vtime, tiebreak)`
    /// order, never by which thread happened to park first — without the
    /// freeze, an early lane could be granted its load unit before a
    /// later lane of the same batch has joined.
    pub fn freeze(&self) {
        self.state.lock().unwrap().frozen += 1;
    }

    /// Releases one [`RoundRobinScheduler::freeze`].
    pub fn thaw(&self) {
        let mut s = self.state.lock().unwrap();
        debug_assert!(s.frozen > 0, "thaw without freeze");
        s.frozen = s.frozen.saturating_sub(1);
        drop(s);
        self.cv.notify_all();
    }

    /// A [`StepPacer`] handle binding `lane` to this scheduler.
    pub fn handle(self: &Arc<Self>, lane: usize) -> Arc<LaneHandle> {
        Arc::new(LaneHandle {
            sched: Arc::clone(self),
            lane,
        })
    }

    /// Units granted so far.
    pub fn grants(&self) -> u64 {
        self.state.lock().unwrap().grants
    }

    fn acquire(&self, lane: usize) {
        let mut s = self.state.lock().unwrap();
        s.lanes[lane].parked = true;
        self.cv.notify_all();
        while s.chosen() != Some(lane) {
            s = self.cv.wait(s).unwrap();
        }
        s.lanes[lane].parked = false;
        s.holder = Some(lane);
        s.grants += 1;
    }

    fn release(&self, lane: usize, modeled_secs: f64) {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.holder, Some(lane), "release without grant");
        s.holder = None;
        s.lanes[lane].vtime += modeled_secs.max(0.0);
        drop(s);
        self.cv.notify_all();
    }
}

impl std::fmt::Debug for RoundRobinScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().unwrap();
        f.debug_struct("RoundRobinScheduler")
            .field("lanes", &s.lanes.len())
            .field("grants", &s.grants)
            .finish()
    }
}

/// One job's pacing handle: [`StepPacer`] calls forward to the scheduler
/// with the lane baked in.
pub struct LaneHandle {
    sched: Arc<RoundRobinScheduler>,
    lane: usize,
}

impl LaneHandle {
    /// The lane this handle paces.
    pub fn lane(&self) -> usize {
        self.lane
    }
}

impl StepPacer for LaneHandle {
    fn acquire(&self) {
        self.sched.acquire(self.lane);
    }

    fn release(&self, modeled_secs: f64) {
        self.sched.release(self.lane, modeled_secs);
    }
}

impl std::fmt::Debug for LaneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneHandle")
            .field("lane", &self.lane)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Drives `n` threads through `units` acquire/release rounds each and
    /// returns the global grant order as lane indices.
    fn run_lanes(seed: u64, costs: Vec<Vec<f64>>) -> Vec<usize> {
        let sched = RoundRobinScheduler::new(seed);
        let order = Arc::new(Mutex::new(Vec::new()));
        let lanes: Vec<usize> = costs.iter().map(|_| sched.join()).collect();
        std::thread::scope(|scope| {
            for (lane, costs) in lanes.iter().zip(&costs) {
                let h = sched.handle(*lane);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    for c in costs {
                        h.acquire();
                        order.lock().unwrap().push(h.lane());
                        h.release(*c);
                    }
                    h.sched.leave(h.lane());
                });
            }
        });
        Arc::try_unwrap(order).unwrap().into_inner().unwrap()
    }

    #[test]
    fn grant_order_is_deterministic() {
        let costs = vec![vec![1.0, 1.0, 1.0], vec![0.5, 0.5, 0.5], vec![2.0, 2.0]];
        let a = run_lanes(7, costs.clone());
        let b = run_lanes(7, costs.clone());
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn cheap_lane_gets_more_turns() {
        // Lane 1's units are 4x cheaper: virtual-time round-robin should
        // interleave it ahead of lane 0 after the first exchange.
        let order = run_lanes(1, vec![vec![4.0, 4.0], vec![1.0, 1.0, 1.0, 1.0]]);
        let first_heavy = order.iter().position(|&l| l == 0).unwrap();
        let last_cheap = order.iter().rposition(|&l| l == 1).unwrap();
        assert!(order.len() == 6);
        // After the heavy lane's first unit, the cheap lane runs several
        // units before the heavy lane's vtime is caught up.
        assert!(first_heavy < last_cheap);
        let heavy_second = order.iter().skip(first_heavy + 1).position(|&l| l == 0);
        assert!(heavy_second.unwrap() >= 2, "order {order:?}");
    }

    #[test]
    fn leave_joining_is_atomic() {
        // A lane leaves while handing its slot to a joiner; the joiner
        // must be active (blocking grants) before any further grant.
        let sched = RoundRobinScheduler::new(3);
        let a = sched.join();
        let b = sched.join();
        let granted = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let ha = sched.handle(a);
            let hb = sched.handle(b);
            let g = Arc::clone(&granted);
            scope.spawn(move || {
                ha.acquire();
                ha.release(1.0);
                // Leave while registering one joiner atomically.
                let new = ha.sched.leave_joining(ha.lane(), 1);
                let hc = ha.sched.handle(new[0]);
                hc.acquire();
                g.fetch_add(1, Ordering::SeqCst);
                hc.release(1.0);
                hc.sched.leave(hc.lane());
            });
            let g = Arc::clone(&granted);
            scope.spawn(move || {
                for _ in 0..2 {
                    hb.acquire();
                    g.fetch_add(1, Ordering::SeqCst);
                    hb.release(10.0);
                }
                hb.sched.leave(hb.lane());
            });
        });
        assert_eq!(granted.load(Ordering::SeqCst), 3);
        assert_eq!(sched.grants(), 4);
    }
}
