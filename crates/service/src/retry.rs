//! Typed retry-with-backoff for transient service-log I/O errors.
//!
//! The durable service distinguishes *transient* failures (interrupted
//! syscalls, would-block, timeouts — worth retrying) from *permanent*
//! ones (corruption, missing files — surfaced immediately). Backoff is
//! **modeled, never slept**: a wall-clock sleep inside the commit path
//! would perturb nothing semantically but would make chaos sweeps slow
//! and flaky-looking; instead each retry charges an exponentially
//! growing delay to an accumulator the service exposes as an
//! observability counter.

use std::io;

/// Whether an I/O error is worth retrying. Everything else — corrupt
/// data, permission problems, missing files — is permanent and must
/// surface to the caller unchanged.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A bounded exponential-backoff policy for transient errors.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub max_attempts: u32,
    /// Modeled delay before the first retry; doubles per retry.
    pub base_backoff_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 1e-3,
        }
    }
}

impl RetryPolicy {
    /// The modeled delay charged before retry number `retry` (0-based).
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        self.base_backoff_secs * 2f64.powi(retry.min(62) as i32)
    }

    /// Runs `op`, retrying transient errors up to the attempt bound.
    /// Returns the value plus `(retries, modeled_backoff_secs)` spent;
    /// non-transient errors and exhaustion propagate the last error.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<(T, u32, f64)> {
        assert!(self.max_attempts >= 1, "retry policy needs >= 1 attempt");
        let mut retries = 0u32;
        let mut backoff = 0.0f64;
        loop {
            match op() {
                Ok(v) => return Ok((v, retries, backoff)),
                Err(e) if is_transient(&e) && retries + 1 < self.max_attempts => {
                    backoff += self.backoff_secs(retries);
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky(failures: u32) -> impl FnMut() -> io::Result<u32> {
        let mut left = failures;
        move || {
            if left > 0 {
                left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
            } else {
                Ok(7)
            }
        }
    }

    #[test]
    fn transient_errors_are_retried_with_growing_backoff() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 0.5,
        };
        let (v, retries, backoff) = p.run(flaky(2)).unwrap();
        assert_eq!(v, 7);
        assert_eq!(retries, 2);
        assert_eq!(backoff, 0.5 + 1.0); // 0.5 * 2^0 + 0.5 * 2^1
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let p = RetryPolicy::default();
        let mut calls = 0u32;
        let err = p
            .run(|| -> io::Result<()> {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_returns_the_last_transient_error() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 1e-3,
        };
        let err = p.run(flaky(10)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }
}
