//! Multi-tenant graph service: one resident engine, many concurrent
//! deterministic jobs.
//!
//! The paper's engine (and this repro's `run_job`) is single-job: load a
//! graph, iterate, tear down. Real deployments amortize the expensive
//! part — the partitioned, VE-BLOCK-laid-out, possibly compressed on-disk
//! graph — across many analytic jobs. This crate adds that layer while
//! keeping the repro's core invariant intact: **byte-identical
//! replayability**, now across *concurrent* jobs.
//!
//! Three pieces:
//!
//! * [`catalog`] — named, reference-counted registered graphs. Stores are
//!   built once at registration; jobs attach stats-rebinding views so
//!   per-job I/O accounting (and hence per-job `Q_t` switching inputs)
//!   stays exact.
//! * [`scheduler`] — a seeded virtual-time round-robin over job
//!   supersteps with a cohort barrier, making the cross-job superstep
//!   order (and therefore every shared-cache hit/miss/eviction) a pure
//!   function of the submitted jobs and the seed.
//! * [`service`] — [`GraphService`] itself: admission control (resident
//!   slots, bounded queue, clamped per-job logical-I/O and memory
//!   budgets) plus the shared byte-weighted edge cache whose cross-job
//!   interference the `multi_tenant` experiment measures.
//!
//! Two more make the service *durable* (crash-restartable):
//!
//! * [`wal`] — the typed write-ahead-log records a durable service
//!   journals: catalog transitions, admissions, per-job master snapshots
//!   at superstep cuts, shared-cache snapshots.
//! * [`retry`] — typed retry-with-modeled-backoff for transient log I/O
//!   errors, so degradation is graceful and still deterministic.
//!
//! See [`GraphService::new_durable`], [`GraphService::restore`] and
//! [`GraphService::resume_job`] for the crash-restart lifecycle.

pub mod catalog;
pub mod pool;
pub mod retry;
pub mod scheduler;
pub mod service;
pub mod wal;

pub use catalog::{Catalog, CatalogError, GraphSpec, RegisteredGraph};
pub use pool::{EnginePool, PoolRecoveredJob};
pub use retry::{is_transient, RetryPolicy};
pub use scheduler::{LaneHandle, RoundRobinScheduler};
pub use service::{
    AdmissionError, GraphService, JobRequest, JobTicket, RecoveredJob, SchedulingPause,
    ServiceConfig,
};
pub use wal::WalRecord;
