//! The multi-tenant `GraphService`.
//!
//! One long-lived service owns a [`Catalog`] of registered graphs, a
//! shared byte-weighted [`SharedEdgeCache`], and a deterministic
//! [`RoundRobinScheduler`]. Jobs are submitted against a registered graph
//! and run concurrently — each on its own thread, each over the *shared*
//! stores and cache, yet byte-identically replayable because the
//! scheduler serializes supersteps across jobs in a seeded, modeled-time
//! order.
//!
//! Admission control bounds the blast radius of any tenant: at most
//! `max_resident_jobs` run at once, at most `max_queued_jobs` wait, and a
//! job's logical-I/O / memory budget is clamped to the service-wide
//! per-job maxima (typed rejection when a request exceeds them; runtime
//! termination via [`JobError::BudgetExceeded`] when a running job does).
//!
//! # Durability
//!
//! A service built with [`GraphService::new_durable`] additionally owns a
//! write-ahead [`ServiceLog`] on a caller-provided VFS. Every control
//! transition appends a record (see [`crate::wal`]); every job gets
//! per-worker [`PrefixVfs`] disks on the same VFS so checkpoints, value
//! stores and message logs survive the process. At each durable
//! superstep cut the engine hands the service an encoded
//! [`MasterState`](hybridgraph_core::MasterState) via the
//! [`BarrierSink`]; the service wraps it with the job's scheduler lane
//! vtime and a full shared-cache snapshot, and fsyncs it *after* the
//! worker checkpoints it refers to — the commit record is the atomic
//! pointer flip of the cut.
//!
//! After a crash (simulated by a seeded
//! [`MasterKillPoint`](hybridgraph_core::MasterKillPoint) hook),
//! [`GraphService::restore`] replays the log: the catalog is rebuilt
//! without re-parsing, the shared cache resumes from its last snapshot,
//! and unfinished jobs come back as [`RecoveredJob`]s —
//! [`GraphService::resume_job`] re-attaches each one from its last
//! durable cut, so a killed-and-restored run is byte-identical (values,
//! traces, `Q_t` audits) to an uninterrupted one under the same seed.
//!
//! Degradation is graceful, not binary: transient log-I/O errors are
//! retried with typed, *modeled* backoff ([`crate::retry`]), and while
//! the recovery backlog exceeds `recovery_shed_threshold` fresh
//! submissions are shed with [`AdmissionError::Overloaded`] so recovery
//! always wins the race for resident slots.

use crate::catalog::{Catalog, CatalogError, GraphSpec};
use crate::retry::RetryPolicy;
use crate::scheduler::RoundRobinScheduler;
use crate::wal::{self, WalRecord};
use hybridgraph_core::program::VertexProgram;
use hybridgraph_core::runner::{run_job, JobError, JobResult};
use hybridgraph_core::{BarrierSink, JobConfig, ResumeState, WorkerDisks};
use hybridgraph_graph::Graph;
use hybridgraph_storage::{
    CacheSnapshot, CodecChoice, PrefixVfs, ServiceLog, SharedCacheStats, SharedEdgeCache, Vfs,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};

/// Service-wide limits and the determinism seed.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Jobs running concurrently; further admissions queue.
    pub max_resident_jobs: usize,
    /// Queue depth; admissions beyond it are rejected.
    pub max_queued_jobs: usize,
    /// Shared gather-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Cache shards — one per worker slot; registrations asking for more
    /// workers than this are refused.
    pub cache_slots: usize,
    /// Seed for the scheduler's round-robin tiebreaks.
    pub seed: u64,
    /// Service-wide per-job logical-I/O ceiling (requests above it are
    /// rejected; jobs without a requested budget inherit it).
    pub max_job_logical_io: Option<u64>,
    /// Service-wide per-job memory ceiling, same semantics.
    pub max_job_memory: Option<u64>,
    /// While more than this many recovered jobs still await
    /// [`GraphService::resume_job`], fresh submissions are shed with
    /// [`AdmissionError::Overloaded`].
    pub recovery_shed_threshold: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_resident_jobs: 4,
            max_queued_jobs: 16,
            cache_bytes: 1 << 20,
            cache_slots: 16,
            seed: 1,
            max_job_logical_io: None,
            max_job_memory: None,
            recovery_shed_threshold: 8,
        }
    }
}

/// A job submission: which registered graph, under what configuration.
///
/// The service overrides the layout-determining fields (`workers`,
/// `codec`, `vblocks_per_worker`) with the graph's registered spec — the
/// shared stores are sliced for exactly that layout — and installs the
/// shared cache, the pacer, and the clamped budgets.
pub struct JobRequest {
    /// Name of the registered graph to run over.
    pub graph: String,
    /// The job's configuration (mode, buffers, tracing, fault plan, ...).
    pub cfg: JobConfig,
}

impl JobRequest {
    /// A request to run over `graph` under `cfg`.
    pub fn new(graph: impl Into<String>, cfg: JobConfig) -> JobRequest {
        JobRequest {
            graph: graph.into(),
            cfg,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Debug)]
pub enum AdmissionError {
    /// The named graph is not registered.
    UnknownGraph(String),
    /// Both the resident slots and the queue are full.
    QueueFull {
        /// Jobs currently running.
        resident: usize,
        /// Jobs currently queued.
        queued: usize,
    },
    /// The request asks for a budget above the service-wide per-job
    /// ceiling.
    BudgetTooLarge {
        /// `"logical_io"` or `"memory"`.
        resource: &'static str,
        /// Requested budget.
        requested: u64,
        /// Service ceiling.
        limit: u64,
    },
    /// The request's trace sink was built for a different worker count
    /// than the graph's registered spec.
    TraceWorkerMismatch {
        /// The registered worker count.
        expected: usize,
        /// The sink's worker count.
        got: usize,
    },
    /// Fresh submissions are shed while the crash-recovery backlog
    /// exceeds the configured threshold.
    Overloaded {
        /// Recovered jobs still awaiting resumption.
        backlog: usize,
        /// The shedding threshold.
        threshold: usize,
    },
    /// The admission record could not be made durable.
    LogFailed(String),
}

impl AdmissionError {
    /// Stable numeric code for wire protocols: clients match on the code
    /// instead of parsing the display string. Codes are append-only —
    /// never renumber.
    ///
    /// | code | variant               |
    /// |------|-----------------------|
    /// | 1    | `UnknownGraph`        |
    /// | 2    | `QueueFull`           |
    /// | 3    | `BudgetTooLarge`      |
    /// | 4    | `TraceWorkerMismatch` |
    /// | 5    | `Overloaded`          |
    /// | 6    | `LogFailed`           |
    pub fn code(&self) -> u16 {
        match self {
            AdmissionError::UnknownGraph(_) => 1,
            AdmissionError::QueueFull { .. } => 2,
            AdmissionError::BudgetTooLarge { .. } => 3,
            AdmissionError::TraceWorkerMismatch { .. } => 4,
            AdmissionError::Overloaded { .. } => 5,
            AdmissionError::LogFailed(_) => 6,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownGraph(n) => write!(f, "no graph named '{n}' is registered"),
            AdmissionError::QueueFull { resident, queued } => write!(
                f,
                "admission refused: {resident} resident and {queued} queued jobs"
            ),
            AdmissionError::BudgetTooLarge {
                resource,
                requested,
                limit,
            } => write!(
                f,
                "requested {resource} budget {requested} exceeds the per-job limit {limit}"
            ),
            AdmissionError::TraceWorkerMismatch { expected, got } => write!(
                f,
                "trace sink built for {got} workers but the graph is registered for {expected}"
            ),
            AdmissionError::Overloaded { backlog, threshold } => write!(
                f,
                "shedding while {backlog} recovered jobs exceed the resume backlog threshold {threshold}"
            ),
            AdmissionError::LogFailed(e) => {
                write!(f, "admission could not be made durable: {e}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Handle to a submitted job; [`JobTicket::wait`] blocks for its result.
pub struct JobTicket<P: VertexProgram> {
    rx: Receiver<Result<JobResult<P>, JobError>>,
    job_id: u64,
    graph: String,
}

impl<P: VertexProgram> JobTicket<P> {
    /// Blocks until the job finishes and returns its result.
    pub fn wait(self) -> Result<JobResult<P>, JobError> {
        self.rx.recv().expect("job thread died without a result")
    }

    /// Service-wide job id (admission order).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The registered graph the job runs over.
    pub fn graph(&self) -> &str {
        &self.graph
    }
}

impl<P: VertexProgram> fmt::Debug for JobTicket<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobTicket")
            .field("job_id", &self.job_id)
            .field("graph", &self.graph)
            .finish()
    }
}

/// An unfinished job reconstructed from the service log by
/// [`GraphService::restore`]. Feed it to [`GraphService::resume_job`] to
/// continue it from its last durable cut (or from scratch if it never
/// reached one).
pub struct RecoveredJob {
    /// The job id it held — and keeps — across the restart.
    pub job_id: u64,
    /// The registered graph it runs over.
    pub graph: String,
    /// Whether the job was still queued (never held a lane) at the crash.
    pub queued: bool,
    /// The superstep of its last durable cut; `None` restarts from load.
    pub superstep: Option<u64>,
    lane_vtime: f64,
    state: Option<Vec<u8>>,
}

impl fmt::Debug for RecoveredJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveredJob")
            .field("job_id", &self.job_id)
            .field("graph", &self.graph)
            .field("queued", &self.queued)
            .field("superstep", &self.superstep)
            .field("lane_vtime", &self.lane_vtime)
            .field(
                "state_bytes",
                &self.state.as_ref().map(|s| s.len()).unwrap_or(0),
            )
            .finish()
    }
}

type Launch = Box<dyn FnOnce(usize) + Send>;

struct State {
    catalog: Catalog,
    resident: usize,
    queue: VecDeque<Launch>,
    next_job: u64,
    recovery_backlog: usize,
}

/// The durable half of a service: the WAL, its retry policy, and the
/// degradation counters (all modeled — no wall-clock sleeps anywhere).
struct Durable {
    vfs: Arc<dyn Vfs>,
    log: Mutex<ServiceLog>,
    retry: RetryPolicy,
    retries: AtomicU64,
    backoff_us: AtomicU64,
    append_errors: AtomicU64,
}

impl Durable {
    fn new(vfs: Arc<dyn Vfs>, log: ServiceLog) -> Durable {
        Durable {
            vfs,
            log: Mutex::new(log),
            retry: RetryPolicy::default(),
            retries: AtomicU64::new(0),
            backoff_us: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
        }
    }

    /// Appends one record, absorbing transient errors under the retry
    /// policy and charging their modeled backoff to the counters.
    fn append(&self, kind: u8, body: &[u8]) -> io::Result<()> {
        let log = self.log.lock().unwrap();
        let (_, retries, backoff) = self.retry.run(|| log.append(kind, body))?;
        if retries > 0 {
            self.retries
                .fetch_add(u64::from(retries), Ordering::Relaxed);
            self.backoff_us
                .fetch_add((backoff * 1e6) as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Append whose failure is *recoverable by replay semantics* (a
    /// missing `JobStarted` re-queues the job; a missing `JobFinished`
    /// re-runs it to the same result) — counted, not propagated.
    fn append_lossy(&self, kind: u8, body: &[u8]) {
        if self.append(kind, body).is_err() {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn worker_disks(&self, job_id: u64, workers: usize) -> WorkerDisks {
        WorkerDisks(
            (0..workers)
                .map(|i| {
                    Arc::new(PrefixVfs::new(
                        Arc::clone(&self.vfs),
                        format!("j{job_id}w{i}_"),
                    )) as Arc<dyn Vfs>
                })
                .collect(),
        )
    }
}

struct Inner {
    cfg: ServiceConfig,
    sched: Arc<RoundRobinScheduler>,
    cache: Arc<SharedEdgeCache>,
    durable: Option<Durable>,
    state: Mutex<State>,
}

impl Inner {
    /// Job-completion bookkeeping: unpin the graph, free the resident
    /// slot, and admit queued jobs. Leaving the scheduler lane and
    /// joining the successors' lanes happens in one scheduler critical
    /// section, so no grant slips between completion and admission.
    fn finish(self: &Arc<Inner>, lane: usize, graph: &str) {
        let mut st = self.state.lock().unwrap();
        st.catalog.unpin(graph);
        st.resident -= 1;
        let mut launches = Vec::new();
        while st.resident < self.cfg.max_resident_jobs {
            match st.queue.pop_front() {
                Some(l) => {
                    st.resident += 1;
                    launches.push(l);
                }
                None => break,
            }
        }
        let lanes = self.sched.leave_joining(lane, launches.len());
        drop(st);
        for (launch, lane) in launches.into_iter().zip(lanes) {
            launch(lane);
        }
    }
}

/// The per-job barrier sink a durable service installs into every job:
/// wraps the engine's encoded master snapshot with the lane's virtual
/// time and a full shared-cache snapshot, and appends the commit record.
/// By the [`BarrierSink`] contract the engine calls this only after the
/// cut's worker checkpoints are durable.
struct ServiceBarrierSink {
    inner: Arc<Inner>,
    job_id: u64,
    lane: usize,
}

impl fmt::Debug for ServiceBarrierSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceBarrierSink")
            .field("job_id", &self.job_id)
            .field("lane", &self.lane)
            .finish()
    }
}

impl BarrierSink for ServiceBarrierSink {
    fn commit(&self, superstep: u64, state: &[u8]) -> io::Result<()> {
        let d = self
            .inner
            .durable
            .as_ref()
            .expect("barrier sink on a non-durable service");
        let vtime = self.inner.sched.lane_vtime(self.lane);
        let cache = self.inner.cache.snapshot();
        d.append(
            wal::KIND_JOB_BARRIER,
            &wal::encode_job_barrier(self.job_id, superstep, vtime, state, &cache),
        )
    }
}

/// The resident engine: graph catalog + shared cache + job scheduler.
pub struct GraphService {
    inner: Arc<Inner>,
}

impl GraphService {
    /// An in-memory (non-durable) service under `cfg`.
    pub fn new(cfg: ServiceConfig) -> GraphService {
        Self::build(cfg, None)
    }

    /// A durable service: creates a fresh write-ahead log (under `codec`)
    /// on `vfs` and journals every control transition to it. Job worker
    /// disks are namespaced onto the same VFS, so
    /// [`GraphService::restore`] on that VFS revives the whole service
    /// after a crash.
    pub fn new_durable(
        cfg: ServiceConfig,
        vfs: Arc<dyn Vfs>,
        codec: CodecChoice,
    ) -> io::Result<GraphService> {
        let log = ServiceLog::create(vfs.as_ref(), codec)?;
        Ok(Self::build(cfg, Some(Durable::new(vfs, log))))
    }

    /// Whether a service log exists on `vfs` (i.e. whether
    /// [`GraphService::restore`] has anything to restore).
    pub fn log_exists(vfs: &dyn Vfs) -> bool {
        ServiceLog::exists(vfs)
    }

    /// Revives a durable service from the log on `vfs`: heals any torn
    /// tail, replays the records into a fresh catalog (graphs are decoded
    /// from their registration blobs — no source re-parse), restores the
    /// shared cache from its last durable snapshot, and returns every
    /// unfinished job as a [`RecoveredJob`] in admission order. The
    /// recovered jobs count as backlog for admission shedding until
    /// resumed.
    pub fn restore(
        cfg: ServiceConfig,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<(GraphService, Vec<RecoveredJob>)> {
        struct JobInfo {
            graph: String,
            started: bool,
            finished: bool,
            barrier: Option<(u64, f64, Vec<u8>)>,
        }

        let (log, records) = ServiceLog::open(vfs.as_ref())?;
        let mut graphs: Vec<(String, u32, GraphSpec, Graph)> = Vec::new();
        let mut jobs: BTreeMap<u64, JobInfo> = BTreeMap::new();
        let mut cache_snap: Option<CacheSnapshot> = None;
        let mut next_job = 0u64;
        for rec in &records {
            match wal::decode_record(rec)? {
                WalRecord::GraphRegistered {
                    name,
                    id,
                    spec,
                    graph,
                } => graphs.push((name, id, spec, graph)),
                WalRecord::GraphEvicted { name, .. } => graphs.retain(|(n, ..)| n != &name),
                WalRecord::JobAdmitted { job_id, graph } => {
                    next_job = next_job.max(job_id + 1);
                    jobs.insert(
                        job_id,
                        JobInfo {
                            graph,
                            started: false,
                            finished: false,
                            barrier: None,
                        },
                    );
                }
                WalRecord::JobStarted { job_id } => {
                    if let Some(j) = jobs.get_mut(&job_id) {
                        j.started = true;
                    }
                }
                WalRecord::JobBarrier {
                    job_id,
                    superstep,
                    lane_vtime,
                    state,
                    cache,
                } => {
                    if let Some(j) = jobs.get_mut(&job_id) {
                        j.barrier = Some((superstep, lane_vtime, state));
                    }
                    cache_snap = Some(cache);
                }
                WalRecord::JobFinished { job_id, cache } => {
                    if let Some(j) = jobs.get_mut(&job_id) {
                        j.finished = true;
                    }
                    cache_snap = Some(cache);
                }
            }
        }

        let svc = Self::build(cfg, Some(Durable::new(vfs, log)));
        {
            let mut st = svc.inner.state.lock().unwrap();
            for (name, id, spec, graph) in graphs {
                st.catalog
                    .register_with_id(&name, Arc::new(graph), spec, id)
                    .map_err(|e| io::Error::other(format!("catalog replay failed: {e}")))?;
            }
            st.next_job = next_job;
        }
        if let Some(snap) = &cache_snap {
            svc.inner.cache.restore(snap);
        }
        let recovered: Vec<RecoveredJob> = jobs
            .into_iter()
            .filter(|(_, j)| !j.finished)
            .map(|(job_id, j)| RecoveredJob {
                job_id,
                graph: j.graph,
                queued: !j.started,
                superstep: j.barrier.as_ref().map(|b| b.0),
                lane_vtime: j.barrier.as_ref().map(|b| b.1).unwrap_or(0.0),
                state: j.barrier.map(|b| b.2),
            })
            .collect();
        svc.inner.state.lock().unwrap().recovery_backlog = recovered.len();
        Ok((svc, recovered))
    }

    fn build(cfg: ServiceConfig, durable: Option<Durable>) -> GraphService {
        assert!(cfg.max_resident_jobs >= 1, "need at least one job slot");
        GraphService {
            inner: Arc::new(Inner {
                cfg,
                sched: RoundRobinScheduler::new(cfg.seed),
                cache: Arc::new(SharedEdgeCache::new(
                    cfg.cache_slots,
                    cfg.cache_bytes.max(1),
                )),
                durable,
                state: Mutex::new(State {
                    catalog: Catalog::new(),
                    resident: 0,
                    queue: VecDeque::new(),
                    next_job: 0,
                    recovery_backlog: 0,
                }),
            }),
        }
    }

    /// Registers `graph` under `name`, building its stores once. Returns
    /// the graph id. On a durable service the registration (spec and
    /// graph blob included) is journaled before this returns; a journal
    /// failure rolls the registration back.
    pub fn register_graph(
        &self,
        name: &str,
        graph: Graph,
        spec: GraphSpec,
    ) -> Result<u32, CatalogError> {
        if spec.workers > self.inner.cfg.cache_slots {
            return Err(CatalogError::TooManyWorkers {
                workers: spec.workers,
                slots: self.inner.cfg.cache_slots,
            });
        }
        let graph = Arc::new(graph);
        let mut st = self.inner.state.lock().unwrap();
        let id = st.catalog.register(name, Arc::clone(&graph), spec)?;
        if let Some(d) = &self.inner.durable {
            if let Err(e) = d.append(
                wal::KIND_GRAPH_REGISTERED,
                &wal::encode_graph_registered(name, id, &spec, &graph),
            ) {
                st.catalog.evict(name).expect("just registered, unpinned");
                return Err(CatalogError::Io(e.to_string()));
            }
        }
        Ok(id)
    }

    /// Evicts a registered graph; fails while any job holds a pin. On
    /// success the shared cache drops every entry of the graph.
    pub fn evict(&self, name: &str) -> Result<(), CatalogError> {
        let id = {
            let mut st = self.inner.state.lock().unwrap();
            st.catalog.evict(name)?
        };
        self.inner.cache.purge_graph(id);
        if let Some(d) = &self.inner.durable {
            d.append(
                wal::KIND_GRAPH_EVICTED,
                &wal::encode_graph_evicted(name, id),
            )
            .map_err(|e| CatalogError::Io(e.to_string()))?;
        }
        Ok(())
    }

    /// The registered worker count of `name` (build trace sinks for it).
    pub fn workers_of(&self, name: &str) -> Option<usize> {
        let st = self.inner.state.lock().unwrap();
        st.catalog.get(name).map(|g| g.spec.workers)
    }

    /// Suspends scheduler grants until the returned guard drops. Hold it
    /// across a *batch* of [`GraphService::submit`] calls to make the
    /// whole multi-job schedule — and with it every shared-cache
    /// interaction, trace byte and `Q_t` decision — a pure function of
    /// the batch and the service seed, independent of thread timing: no
    /// job's first unit can be granted before the last job of the batch
    /// has joined the cohort.
    pub fn pause_scheduling(&self) -> SchedulingPause<'_> {
        self.inner.sched.freeze();
        SchedulingPause { service: self }
    }

    /// Submits a job. Runs immediately if a resident slot is free, queues
    /// if the queue has room, and returns a typed error otherwise. The
    /// returned ticket's [`JobTicket::wait`] blocks for the result.
    pub fn submit<P: VertexProgram>(
        &self,
        program: Arc<P>,
        req: JobRequest,
    ) -> Result<JobTicket<P>, AdmissionError> {
        self.admit(program, req.graph, req.cfg, None)
    }

    /// Re-attaches a job recovered by [`GraphService::restore`]. The job
    /// keeps its original id and worker disks; if it reached a durable
    /// cut its master snapshot is installed as the engine's resume state
    /// and its scheduler lane rejoins at the recorded virtual time, so
    /// the continued run is byte-identical to an uninterrupted one.
    /// `cfg` must carry the same job-level knobs (mode, buffers, seed,
    /// trace sink, fault plan) as the original submission.
    pub fn resume_job<P: VertexProgram>(
        &self,
        program: Arc<P>,
        cfg: JobConfig,
        rec: &RecoveredJob,
    ) -> Result<JobTicket<P>, AdmissionError> {
        assert!(
            self.inner.durable.is_some(),
            "resume_job needs a durable service"
        );
        self.admit(program, rec.graph.clone(), cfg, Some(rec))
    }

    /// Common admission path of [`submit`](Self::submit) (fresh jobs) and
    /// [`resume_job`](Self::resume_job) (recovered ones).
    fn admit<P: VertexProgram>(
        &self,
        program: Arc<P>,
        graph_name: String,
        cfg: JobConfig,
        resume: Option<&RecoveredJob>,
    ) -> Result<JobTicket<P>, AdmissionError> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();

        // Shed fresh load while recovery still owns the backlog; resumed
        // jobs are the backlog draining and always pass.
        if resume.is_none() && st.recovery_backlog > inner.cfg.recovery_shed_threshold {
            return Err(AdmissionError::Overloaded {
                backlog: st.recovery_backlog,
                threshold: inner.cfg.recovery_shed_threshold,
            });
        }

        let (spec, stores, graph) = {
            let reg = st
                .catalog
                .get(&graph_name)
                .ok_or_else(|| AdmissionError::UnknownGraph(graph_name.clone()))?;
            (reg.spec, reg.stores.clone(), Arc::clone(&reg.graph))
        };

        if let Some(sink) = &cfg.trace {
            if sink.num_workers() != spec.workers {
                return Err(AdmissionError::TraceWorkerMismatch {
                    expected: spec.workers,
                    got: sink.num_workers(),
                });
            }
        }
        let io_budget = clamp_budget(
            "logical_io",
            cfg.logical_io_budget,
            inner.cfg.max_job_logical_io,
        )?;
        let mem_budget = clamp_budget("memory", cfg.memory_budget, inner.cfg.max_job_memory)?;

        // Effective configuration: layout fields come from the registered
        // spec (with_shared_stores pins the worker count), the shared
        // cache and clamped budgets are installed, the pacer at launch.
        let mut cfg = cfg
            .with_shared_stores(stores)
            .with_shared_cache(Arc::clone(&inner.cache))
            .with_codec(spec.codec);
        cfg.vblocks_per_worker = Some(spec.vblocks_per_worker);
        cfg.logical_io_budget = io_budget;
        cfg.memory_budget = mem_budget;

        let job_id = match resume {
            Some(rec) => rec.job_id,
            None => st.next_job,
        };
        if let Some(d) = &inner.durable {
            // Admission is durable before it is visible; worker disks are
            // namespaced per job id so a restart finds the checkpoints
            // the barrier records point at.
            if resume.is_none() {
                d.append(
                    wal::KIND_JOB_ADMITTED,
                    &wal::encode_job_admitted(job_id, &graph_name),
                )
                .map_err(|e| AdmissionError::LogFailed(e.to_string()))?;
            }
            cfg = cfg.with_worker_disks(d.worker_disks(job_id, spec.workers));
        }
        if let Some(rec) = resume {
            if let Some(state) = &rec.state {
                cfg = cfg.with_resume(ResumeState(Arc::new(state.clone())));
            }
            st.recovery_backlog = st.recovery_backlog.saturating_sub(1);
        } else {
            st.next_job += 1;
        }
        st.catalog.pin(&graph_name).expect("looked up above");

        let (tx, rx) = channel::<Result<JobResult<P>, JobError>>();
        let inner2 = Arc::clone(inner);
        let gname = graph_name.clone();
        let launch: Launch = Box::new(move |lane: usize| {
            let pacer = inner2.sched.handle(lane);
            let mut cfg = cfg.with_pacer(pacer);
            if let Some(d) = &inner2.durable {
                d.append_lossy(wal::KIND_JOB_STARTED, &wal::encode_job_started(job_id));
                cfg = cfg.with_barrier_sink(Arc::new(ServiceBarrierSink {
                    inner: Arc::clone(&inner2),
                    job_id,
                    lane,
                }));
            }
            std::thread::spawn(move || {
                let res = run_job(Arc::clone(&program), &graph, cfg);
                if matches!(res, Err(JobError::Halted { .. })) {
                    // A simulated master crash: the control plane is
                    // notionally dead. Leave the lane so co-resident jobs
                    // cannot deadlock on the cohort barrier, but keep the
                    // slot, the pin and the queue untouched — restore()
                    // replays them from the log, not from this process.
                    inner2.sched.leave(lane);
                } else {
                    if let Some(d) = &inner2.durable {
                        d.append_lossy(
                            wal::KIND_JOB_FINISHED,
                            &wal::encode_job_finished(job_id, &inner2.cache.snapshot()),
                        );
                    }
                    // Bookkeeping before the result is delivered: a
                    // waiter unblocked by the send already sees the slot
                    // freed, the pin released and any queued successor
                    // launched.
                    inner2.finish(lane, &gname);
                }
                tx.send(res).ok();
            });
        });

        let resume_vtime = resume.and_then(|r| (!r.queued).then_some(r.lane_vtime));
        if st.resident < inner.cfg.max_resident_jobs {
            st.resident += 1;
            let lane = match resume_vtime {
                Some(v) => inner.sched.join_at(v),
                None => inner.sched.join(),
            };
            drop(st);
            launch(lane);
        } else if st.queue.len() < inner.cfg.max_queued_jobs {
            st.queue.push_back(launch);
        } else {
            st.catalog.unpin(&graph_name);
            return Err(AdmissionError::QueueFull {
                resident: st.resident,
                queued: st.queue.len(),
            });
        }
        Ok(JobTicket {
            rx,
            job_id,
            graph: graph_name,
        })
    }

    /// Jobs currently running.
    pub fn resident_jobs(&self) -> usize {
        self.inner.state.lock().unwrap().resident
    }

    /// Jobs currently queued.
    pub fn queued_jobs(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Registered graphs.
    pub fn registered_graphs(&self) -> usize {
        self.inner.state.lock().unwrap().catalog.len()
    }

    /// Current pins of a registered graph.
    pub fn pins_of(&self, name: &str) -> Option<usize> {
        let st = self.inner.state.lock().unwrap();
        st.catalog.get(name).map(|g| g.pins())
    }

    /// Aggregate shared-cache counters (per-job attribution lives in each
    /// job's own step reports).
    pub fn cache_stats(&self) -> SharedCacheStats {
        self.inner.cache.stats()
    }

    /// Scheduler units granted so far.
    pub fn scheduler_grants(&self) -> u64 {
        self.inner.sched.grants()
    }

    /// Whether this service journals to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.inner.durable.is_some()
    }

    /// Recovered jobs still awaiting [`GraphService::resume_job`].
    pub fn recovery_backlog(&self) -> usize {
        self.inner.state.lock().unwrap().recovery_backlog
    }

    /// Bytes in the service log (0 on a non-durable service).
    pub fn service_log_bytes(&self) -> u64 {
        self.inner
            .durable
            .as_ref()
            .map(|d| d.log.lock().unwrap().len_bytes())
            .unwrap_or(0)
    }

    /// Transient log-append retries absorbed so far.
    pub fn log_retries(&self) -> u64 {
        self.inner
            .durable
            .as_ref()
            .map(|d| d.retries.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Modeled backoff charged to those retries, in seconds.
    pub fn log_backoff_secs(&self) -> f64 {
        self.inner
            .durable
            .as_ref()
            .map(|d| d.backoff_us.load(Ordering::Relaxed) as f64 / 1e6)
            .unwrap_or(0.0)
    }

    /// Appends whose failure was absorbed because replay semantics make
    /// them recoverable (see `Durable::append_lossy`).
    pub fn log_append_errors(&self) -> u64 {
        self.inner
            .durable
            .as_ref()
            .map(|d| d.append_errors.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl fmt::Debug for GraphService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock().unwrap();
        f.debug_struct("GraphService")
            .field("graphs", &st.catalog.len())
            .field("resident", &st.resident)
            .field("queued", &st.queue.len())
            .field("durable", &self.inner.durable.is_some())
            .finish()
    }
}

/// Scheduler-grant suspension returned by
/// [`GraphService::pause_scheduling`]; grants resume when it drops.
pub struct SchedulingPause<'a> {
    service: &'a GraphService,
}

impl Drop for SchedulingPause<'_> {
    fn drop(&mut self) {
        self.service.inner.sched.thaw();
    }
}

/// Clamps a requested budget against the service ceiling: requests above
/// it are typed rejections; absent requests inherit the ceiling.
fn clamp_budget(
    resource: &'static str,
    requested: Option<u64>,
    limit: Option<u64>,
) -> Result<Option<u64>, AdmissionError> {
    match (requested, limit) {
        (Some(r), Some(l)) if r > l => Err(AdmissionError::BudgetTooLarge {
            resource,
            requested: r,
            limit: l,
        }),
        (Some(r), _) => Ok(Some(r)),
        (None, l) => Ok(l),
    }
}
