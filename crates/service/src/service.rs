//! The multi-tenant `GraphService`.
//!
//! One long-lived service owns a [`Catalog`] of registered graphs, a
//! shared byte-weighted [`SharedEdgeCache`], and a deterministic
//! [`RoundRobinScheduler`]. Jobs are submitted against a registered graph
//! and run concurrently — each on its own thread, each over the *shared*
//! stores and cache, yet byte-identically replayable because the
//! scheduler serializes supersteps across jobs in a seeded, modeled-time
//! order.
//!
//! Admission control bounds the blast radius of any tenant: at most
//! `max_resident_jobs` run at once, at most `max_queued_jobs` wait, and a
//! job's logical-I/O / memory budget is clamped to the service-wide
//! per-job maxima (typed rejection when a request exceeds them; runtime
//! termination via [`JobError::BudgetExceeded`] when a running job does).

use crate::catalog::{Catalog, CatalogError, GraphSpec};
use crate::scheduler::RoundRobinScheduler;
use hybridgraph_core::program::VertexProgram;
use hybridgraph_core::runner::{run_job, JobError, JobResult};
use hybridgraph_core::JobConfig;
use hybridgraph_graph::Graph;
use hybridgraph_storage::{SharedCacheStats, SharedEdgeCache};
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};

/// Service-wide limits and the determinism seed.
#[derive(Copy, Clone, Debug)]
pub struct ServiceConfig {
    /// Jobs running concurrently; further admissions queue.
    pub max_resident_jobs: usize,
    /// Queue depth; admissions beyond it are rejected.
    pub max_queued_jobs: usize,
    /// Shared gather-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Cache shards — one per worker slot; registrations asking for more
    /// workers than this are refused.
    pub cache_slots: usize,
    /// Seed for the scheduler's round-robin tiebreaks.
    pub seed: u64,
    /// Service-wide per-job logical-I/O ceiling (requests above it are
    /// rejected; jobs without a requested budget inherit it).
    pub max_job_logical_io: Option<u64>,
    /// Service-wide per-job memory ceiling, same semantics.
    pub max_job_memory: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_resident_jobs: 4,
            max_queued_jobs: 16,
            cache_bytes: 1 << 20,
            cache_slots: 16,
            seed: 1,
            max_job_logical_io: None,
            max_job_memory: None,
        }
    }
}

/// A job submission: which registered graph, under what configuration.
///
/// The service overrides the layout-determining fields (`workers`,
/// `codec`, `vblocks_per_worker`) with the graph's registered spec — the
/// shared stores are sliced for exactly that layout — and installs the
/// shared cache, the pacer, and the clamped budgets.
pub struct JobRequest {
    /// Name of the registered graph to run over.
    pub graph: String,
    /// The job's configuration (mode, buffers, tracing, fault plan, ...).
    pub cfg: JobConfig,
}

impl JobRequest {
    /// A request to run over `graph` under `cfg`.
    pub fn new(graph: impl Into<String>, cfg: JobConfig) -> JobRequest {
        JobRequest {
            graph: graph.into(),
            cfg,
        }
    }
}

/// Why a submission was refused at admission.
#[derive(Debug)]
pub enum AdmissionError {
    /// The named graph is not registered.
    UnknownGraph(String),
    /// Both the resident slots and the queue are full.
    QueueFull {
        /// Jobs currently running.
        resident: usize,
        /// Jobs currently queued.
        queued: usize,
    },
    /// The request asks for a budget above the service-wide per-job
    /// ceiling.
    BudgetTooLarge {
        /// `"logical_io"` or `"memory"`.
        resource: &'static str,
        /// Requested budget.
        requested: u64,
        /// Service ceiling.
        limit: u64,
    },
    /// The request's trace sink was built for a different worker count
    /// than the graph's registered spec.
    TraceWorkerMismatch {
        /// The registered worker count.
        expected: usize,
        /// The sink's worker count.
        got: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownGraph(n) => write!(f, "no graph named '{n}' is registered"),
            AdmissionError::QueueFull { resident, queued } => write!(
                f,
                "admission refused: {resident} resident and {queued} queued jobs"
            ),
            AdmissionError::BudgetTooLarge {
                resource,
                requested,
                limit,
            } => write!(
                f,
                "requested {resource} budget {requested} exceeds the per-job limit {limit}"
            ),
            AdmissionError::TraceWorkerMismatch { expected, got } => write!(
                f,
                "trace sink built for {got} workers but the graph is registered for {expected}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Handle to a submitted job; [`JobTicket::wait`] blocks for its result.
pub struct JobTicket<P: VertexProgram> {
    rx: Receiver<Result<JobResult<P>, JobError>>,
    job_id: u64,
    graph: String,
}

impl<P: VertexProgram> JobTicket<P> {
    /// Blocks until the job finishes and returns its result.
    pub fn wait(self) -> Result<JobResult<P>, JobError> {
        self.rx.recv().expect("job thread died without a result")
    }

    /// Service-wide job id (admission order).
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The registered graph the job runs over.
    pub fn graph(&self) -> &str {
        &self.graph
    }
}

impl<P: VertexProgram> fmt::Debug for JobTicket<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobTicket")
            .field("job_id", &self.job_id)
            .field("graph", &self.graph)
            .finish()
    }
}

type Launch = Box<dyn FnOnce(usize) + Send>;

struct State {
    catalog: Catalog,
    resident: usize,
    queue: VecDeque<Launch>,
    next_job: u64,
}

struct Inner {
    cfg: ServiceConfig,
    sched: Arc<RoundRobinScheduler>,
    cache: Arc<SharedEdgeCache>,
    state: Mutex<State>,
}

impl Inner {
    /// Job-completion bookkeeping: unpin the graph, free the resident
    /// slot, and admit queued jobs. Leaving the scheduler lane and
    /// joining the successors' lanes happens in one scheduler critical
    /// section, so no grant slips between completion and admission.
    fn finish(self: &Arc<Inner>, lane: usize, graph: &str) {
        let mut st = self.state.lock().unwrap();
        st.catalog.unpin(graph);
        st.resident -= 1;
        let mut launches = Vec::new();
        while st.resident < self.cfg.max_resident_jobs {
            match st.queue.pop_front() {
                Some(l) => {
                    st.resident += 1;
                    launches.push(l);
                }
                None => break,
            }
        }
        let lanes = self.sched.leave_joining(lane, launches.len());
        drop(st);
        for (launch, lane) in launches.into_iter().zip(lanes) {
            launch(lane);
        }
    }
}

/// The resident engine: graph catalog + shared cache + job scheduler.
pub struct GraphService {
    inner: Arc<Inner>,
}

impl GraphService {
    /// A service under `cfg`.
    pub fn new(cfg: ServiceConfig) -> GraphService {
        assert!(cfg.max_resident_jobs >= 1, "need at least one job slot");
        GraphService {
            inner: Arc::new(Inner {
                cfg,
                sched: RoundRobinScheduler::new(cfg.seed),
                cache: Arc::new(SharedEdgeCache::new(
                    cfg.cache_slots,
                    cfg.cache_bytes.max(1),
                )),
                state: Mutex::new(State {
                    catalog: Catalog::new(),
                    resident: 0,
                    queue: VecDeque::new(),
                    next_job: 0,
                }),
            }),
        }
    }

    /// Registers `graph` under `name`, building its stores once. Returns
    /// the graph id.
    pub fn register_graph(
        &self,
        name: &str,
        graph: Graph,
        spec: GraphSpec,
    ) -> Result<u32, CatalogError> {
        if spec.workers > self.inner.cfg.cache_slots {
            return Err(CatalogError::TooManyWorkers {
                workers: spec.workers,
                slots: self.inner.cfg.cache_slots,
            });
        }
        let mut st = self.inner.state.lock().unwrap();
        st.catalog.register(name, Arc::new(graph), spec)
    }

    /// Evicts a registered graph; fails while any job holds a pin. On
    /// success the shared cache drops every entry of the graph.
    pub fn evict(&self, name: &str) -> Result<(), CatalogError> {
        let id = {
            let mut st = self.inner.state.lock().unwrap();
            st.catalog.evict(name)?
        };
        self.inner.cache.purge_graph(id);
        Ok(())
    }

    /// The registered worker count of `name` (build trace sinks for it).
    pub fn workers_of(&self, name: &str) -> Option<usize> {
        let st = self.inner.state.lock().unwrap();
        st.catalog.get(name).map(|g| g.spec.workers)
    }

    /// Suspends scheduler grants until the returned guard drops. Hold it
    /// across a *batch* of [`GraphService::submit`] calls to make the
    /// whole multi-job schedule — and with it every shared-cache
    /// interaction, trace byte and `Q_t` decision — a pure function of
    /// the batch and the service seed, independent of thread timing: no
    /// job's first unit can be granted before the last job of the batch
    /// has joined the cohort.
    pub fn pause_scheduling(&self) -> SchedulingPause<'_> {
        self.inner.sched.freeze();
        SchedulingPause { service: self }
    }

    /// Submits a job. Runs immediately if a resident slot is free, queues
    /// if the queue has room, and returns a typed error otherwise. The
    /// returned ticket's [`JobTicket::wait`] blocks for the result.
    pub fn submit<P: VertexProgram>(
        &self,
        program: Arc<P>,
        req: JobRequest,
    ) -> Result<JobTicket<P>, AdmissionError> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        let (spec, stores, graph) = {
            let reg = st
                .catalog
                .get(&req.graph)
                .ok_or_else(|| AdmissionError::UnknownGraph(req.graph.clone()))?;
            (reg.spec, reg.stores.clone(), Arc::clone(&reg.graph))
        };

        if let Some(sink) = &req.cfg.trace {
            if sink.num_workers() != spec.workers {
                return Err(AdmissionError::TraceWorkerMismatch {
                    expected: spec.workers,
                    got: sink.num_workers(),
                });
            }
        }
        let io_budget = clamp_budget(
            "logical_io",
            req.cfg.logical_io_budget,
            inner.cfg.max_job_logical_io,
        )?;
        let mem_budget = clamp_budget("memory", req.cfg.memory_budget, inner.cfg.max_job_memory)?;

        // Effective configuration: layout fields come from the registered
        // spec (with_shared_stores pins the worker count), the shared
        // cache and clamped budgets are installed, the pacer at launch.
        let mut cfg = req
            .cfg
            .with_shared_stores(stores)
            .with_shared_cache(Arc::clone(&inner.cache))
            .with_codec(spec.codec);
        cfg.vblocks_per_worker = Some(spec.vblocks_per_worker);
        cfg.logical_io_budget = io_budget;
        cfg.memory_budget = mem_budget;

        let job_id = st.next_job;
        st.next_job += 1;
        st.catalog.pin(&req.graph).expect("looked up above");

        let (tx, rx) = channel::<Result<JobResult<P>, JobError>>();
        let inner2 = Arc::clone(inner);
        let gname = req.graph.clone();
        let launch: Launch = Box::new(move |lane: usize| {
            let pacer = inner2.sched.handle(lane);
            let cfg = cfg.with_pacer(pacer);
            std::thread::spawn(move || {
                let res = run_job(Arc::clone(&program), &graph, cfg);
                // Bookkeeping before the result is delivered: a waiter
                // unblocked by the send already sees the slot freed, the
                // pin released and any queued successor launched.
                inner2.finish(lane, &gname);
                tx.send(res).ok();
            });
        });

        if st.resident < inner.cfg.max_resident_jobs {
            st.resident += 1;
            let lane = inner.sched.join();
            drop(st);
            launch(lane);
        } else if st.queue.len() < inner.cfg.max_queued_jobs {
            st.queue.push_back(launch);
        } else {
            st.catalog.unpin(&req.graph);
            return Err(AdmissionError::QueueFull {
                resident: st.resident,
                queued: st.queue.len(),
            });
        }
        Ok(JobTicket {
            rx,
            job_id,
            graph: req.graph,
        })
    }

    /// Jobs currently running.
    pub fn resident_jobs(&self) -> usize {
        self.inner.state.lock().unwrap().resident
    }

    /// Jobs currently queued.
    pub fn queued_jobs(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Registered graphs.
    pub fn registered_graphs(&self) -> usize {
        self.inner.state.lock().unwrap().catalog.len()
    }

    /// Current pins of a registered graph.
    pub fn pins_of(&self, name: &str) -> Option<usize> {
        let st = self.inner.state.lock().unwrap();
        st.catalog.get(name).map(|g| g.pins())
    }

    /// Aggregate shared-cache counters (per-job attribution lives in each
    /// job's own step reports).
    pub fn cache_stats(&self) -> SharedCacheStats {
        self.inner.cache.stats()
    }

    /// Scheduler units granted so far.
    pub fn scheduler_grants(&self) -> u64 {
        self.inner.sched.grants()
    }
}

impl fmt::Debug for GraphService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock().unwrap();
        f.debug_struct("GraphService")
            .field("graphs", &st.catalog.len())
            .field("resident", &st.resident)
            .field("queued", &st.queue.len())
            .finish()
    }
}

/// Scheduler-grant suspension returned by
/// [`GraphService::pause_scheduling`]; grants resume when it drops.
pub struct SchedulingPause<'a> {
    service: &'a GraphService,
}

impl Drop for SchedulingPause<'_> {
    fn drop(&mut self) {
        self.service.inner.sched.thaw();
    }
}

/// Clamps a requested budget against the service ceiling: requests above
/// it are typed rejections; absent requests inherit the ceiling.
fn clamp_budget(
    resource: &'static str,
    requested: Option<u64>,
    limit: Option<u64>,
) -> Result<Option<u64>, AdmissionError> {
    match (requested, limit) {
        (Some(r), Some(l)) if r > l => Err(AdmissionError::BudgetTooLarge {
            resource,
            requested: r,
            limit: l,
        }),
        (Some(r), _) => Ok(Some(r)),
        (None, l) => Ok(l),
    }
}
