//! The resident-graph catalog: load once, attach many.
//!
//! A registered graph is partitioned, laid out and written to its three
//! on-disk stores exactly once (per worker slot, on catalog-owned
//! in-memory disks). Jobs attach cheap stats-rebinding views
//! ([`SharedStores`]) instead of rebuilding — the I/O of registration is
//! paid once, while every byte a job later *reads* through a view is
//! charged to that job's own per-worker `IoStats`.
//!
//! Graphs are reference-counted: admission pins, completion unpins, and
//! [`Catalog::evict`] refuses while any job still holds a pin.

use hybridgraph_core::SharedStores;
use hybridgraph_graph::{BlockLayout, Graph, Partition, WorkerId};
use hybridgraph_storage::adjacency::AdjacencyStore;
use hybridgraph_storage::gather::GatherStore;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::MemVfs;
use hybridgraph_storage::CodecChoice;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;

/// How a graph is laid out at registration. Jobs over the graph inherit
/// these settings (worker count, codec, Vblock granularity) — the stores
/// are sliced for exactly this partition and layout.
#[derive(Copy, Clone, Debug)]
pub struct GraphSpec {
    /// Worker (computational-node) count the stores are built for.
    pub workers: usize,
    /// On-disk codec of the stores.
    pub codec: CodecChoice,
    /// Vblocks per worker (the b-pull layout's granularity).
    pub vblocks_per_worker: usize,
}

impl GraphSpec {
    /// A spec with `workers` slots, no codec, one Vblock per worker.
    pub fn new(workers: usize) -> GraphSpec {
        GraphSpec {
            workers,
            codec: CodecChoice::None,
            vblocks_per_worker: 1,
        }
    }

    /// Sets the on-disk codec.
    pub fn with_codec(mut self, codec: CodecChoice) -> GraphSpec {
        self.codec = codec;
        self
    }

    /// Sets the Vblock granularity.
    pub fn with_vblocks(mut self, per_worker: usize) -> GraphSpec {
        self.vblocks_per_worker = per_worker.max(1);
        self
    }
}

/// Why a catalog operation was refused.
#[derive(Debug)]
pub enum CatalogError {
    /// `register` with a name that is already taken.
    NameTaken(String),
    /// The named graph is not registered.
    Unknown(String),
    /// `evict` while jobs still hold pins.
    Pinned {
        /// The graph name.
        name: String,
        /// Outstanding pins.
        pins: usize,
    },
    /// The spec asks for more worker slots than the service's shared
    /// cache was sharded for.
    TooManyWorkers {
        /// Requested worker count.
        workers: usize,
        /// Cache shard count.
        slots: usize,
    },
    /// Building the stores failed.
    Io(String),
}

impl CatalogError {
    /// Stable numeric code for wire protocols: clients match on the code
    /// instead of parsing the display string. Codes are append-only —
    /// never renumber.
    ///
    /// | code | variant          |
    /// |------|------------------|
    /// | 1    | `NameTaken`      |
    /// | 2    | `Unknown`        |
    /// | 3    | `Pinned`         |
    /// | 4    | `TooManyWorkers` |
    /// | 5    | `Io`             |
    pub fn code(&self) -> u16 {
        match self {
            CatalogError::NameTaken(_) => 1,
            CatalogError::Unknown(_) => 2,
            CatalogError::Pinned { .. } => 3,
            CatalogError::TooManyWorkers { .. } => 4,
            CatalogError::Io(_) => 5,
        }
    }
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::NameTaken(n) => write!(f, "graph '{n}' is already registered"),
            CatalogError::Unknown(n) => write!(f, "no graph named '{n}' is registered"),
            CatalogError::Pinned { name, pins } => {
                write!(f, "graph '{name}' is pinned by {pins} job(s)")
            }
            CatalogError::TooManyWorkers { workers, slots } => write!(
                f,
                "spec asks for {workers} workers but the shared cache has {slots} shard slots"
            ),
            CatalogError::Io(e) => write!(f, "building graph stores failed: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<io::Error> for CatalogError {
    fn from(e: io::Error) -> Self {
        CatalogError::Io(e.to_string())
    }
}

/// One registered graph: the input graph (workers still need it for
/// initial values, degrees and mirror discovery), its spec, the prebuilt
/// per-slot stores, and the pin count.
pub struct RegisteredGraph {
    /// Catalog-wide id (the shared cache's key namespace).
    pub id: u32,
    /// The input graph.
    pub graph: Arc<Graph>,
    /// Layout settings jobs inherit.
    pub spec: GraphSpec,
    /// Per-worker-slot store views.
    pub stores: SharedStores,
    pins: usize,
}

impl RegisteredGraph {
    /// Jobs currently attached.
    pub fn pins(&self) -> usize {
        self.pins
    }
}

/// Name → registered graph, with monotonically increasing ids.
pub struct Catalog {
    graphs: HashMap<String, RegisteredGraph>,
    next_id: u32,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog {
            graphs: HashMap::new(),
            next_id: 0,
        }
    }

    /// Registers `graph` under `name`, building all three store kinds for
    /// every worker slot (push needs adjacency, b-pull VE-BLOCK, pull
    /// gather — a job of any mode can attach). Returns the graph id.
    pub fn register(
        &mut self,
        name: &str,
        graph: Arc<Graph>,
        spec: GraphSpec,
    ) -> Result<u32, CatalogError> {
        assert!(spec.workers >= 1, "need at least one worker slot");
        if self.graphs.contains_key(name) {
            return Err(CatalogError::NameTaken(name.to_string()));
        }
        let id = self.next_id;
        let stores = build_stores(id, &graph, &spec)?;
        self.next_id += 1;
        self.graphs.insert(
            name.to_string(),
            RegisteredGraph {
                id,
                graph,
                spec,
                stores,
                pins: 0,
            },
        );
        Ok(id)
    }

    /// Re-registers a graph under the id it held before a restart
    /// (service-log replay). Extent keys in the shared cache embed the
    /// graph id, so a restored cache snapshot only matches if ids
    /// survive recovery verbatim. `next_id` advances past `id` so later
    /// registrations never collide.
    pub fn register_with_id(
        &mut self,
        name: &str,
        graph: Arc<Graph>,
        spec: GraphSpec,
        id: u32,
    ) -> Result<u32, CatalogError> {
        assert!(spec.workers >= 1, "need at least one worker slot");
        if self.graphs.contains_key(name) {
            return Err(CatalogError::NameTaken(name.to_string()));
        }
        let stores = build_stores(id, &graph, &spec)?;
        self.next_id = self.next_id.max(id + 1);
        self.graphs.insert(
            name.to_string(),
            RegisteredGraph {
                id,
                graph,
                spec,
                stores,
                pins: 0,
            },
        );
        Ok(id)
    }

    /// Looks up a registered graph.
    pub fn get(&self, name: &str) -> Option<&RegisteredGraph> {
        self.graphs.get(name)
    }

    /// Pins `name` for a job being admitted.
    pub fn pin(&mut self, name: &str) -> Result<(), CatalogError> {
        match self.graphs.get_mut(name) {
            Some(g) => {
                g.pins += 1;
                Ok(())
            }
            None => Err(CatalogError::Unknown(name.to_string())),
        }
    }

    /// Releases one pin of `name`.
    pub fn unpin(&mut self, name: &str) {
        if let Some(g) = self.graphs.get_mut(name) {
            debug_assert!(g.pins > 0, "unpin without pin");
            g.pins = g.pins.saturating_sub(1);
        }
    }

    /// Evicts `name`, failing while pinned. Returns the graph id so the
    /// caller can purge the shared cache's entries for it.
    pub fn evict(&mut self, name: &str) -> Result<u32, CatalogError> {
        let g = self
            .graphs
            .get(name)
            .ok_or_else(|| CatalogError::Unknown(name.to_string()))?;
        if g.pins > 0 {
            return Err(CatalogError::Pinned {
                name: name.to_string(),
                pins: g.pins,
            });
        }
        Ok(self.graphs.remove(name).expect("checked above").id)
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

/// Builds all three stores for every worker slot of `graph` under `spec`.
/// Each slot gets its own in-memory disk; the files' backing buffers are
/// Arc-shared into the returned views, so the catalog need not keep the
/// build-time VFS around.
fn build_stores(id: u32, graph: &Graph, spec: &GraphSpec) -> Result<SharedStores, CatalogError> {
    let n = graph.num_vertices();
    assert!(n > 0, "graph must have vertices");
    let partition = Partition::range(n, spec.workers);
    let counts = vec![spec.vblocks_per_worker.max(1); spec.workers];
    let layout = BlockLayout::new(&partition, &counts);

    let mut adjacency = Vec::with_capacity(spec.workers);
    let mut veblock = Vec::with_capacity(spec.workers);
    let mut gather = Vec::with_capacity(spec.workers);
    for w in 0..spec.workers {
        let id_w = WorkerId::from(w);
        let range = partition.worker_range(id_w);
        let vfs = MemVfs::new();
        adjacency.push(Arc::new(AdjacencyStore::build_with(
            &vfs,
            "adj",
            graph,
            range.clone(),
            spec.codec,
        )?));
        veblock.push(Arc::new(VeBlockStore::build_with(
            &vfs, graph, &layout, id_w, spec.codec,
        )?));
        gather.push(Arc::new(GatherStore::build_with(
            &vfs,
            "gather",
            graph,
            range.clone(),
            spec.codec,
        )?));
    }
    Ok(SharedStores {
        graph_id: id,
        adjacency,
        veblock,
        gather,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_graph::gen;

    #[test]
    fn register_pin_evict_lifecycle() {
        let mut c = Catalog::new();
        let g = Arc::new(gen::uniform(40, 200, 1));
        let id = c.register("g", Arc::clone(&g), GraphSpec::new(2)).unwrap();
        assert_eq!(id, 0);
        assert!(matches!(
            c.register("g", g, GraphSpec::new(2)),
            Err(CatalogError::NameTaken(_))
        ));
        c.pin("g").unwrap();
        assert!(matches!(
            c.evict("g"),
            Err(CatalogError::Pinned { pins: 1, .. })
        ));
        c.unpin("g");
        assert_eq!(c.evict("g").unwrap(), 0);
        assert!(matches!(c.evict("g"), Err(CatalogError::Unknown(_))));
        assert!(c.is_empty());
    }

    #[test]
    fn stores_cover_every_slot() {
        let mut c = Catalog::new();
        let g = Arc::new(gen::uniform(30, 150, 2));
        c.register("g", g, GraphSpec::new(3).with_vblocks(2))
            .unwrap();
        let reg = c.get("g").unwrap();
        assert_eq!(reg.stores.workers(), 3);
        assert_eq!(reg.stores.veblock.len(), 3);
        assert_eq!(reg.stores.gather.len(), 3);
        assert_eq!(reg.pins(), 0);
    }
}
