//! Multi-engine dispatch: N independent [`GraphService`] engines behind
//! deterministic hash-based graph placement.
//!
//! One `GraphService` is one *engine*: one virtual-time scheduler, one
//! shared edge cache, one admission queue, one (optional) write-ahead
//! log. The pool scales the service layer past a single engine the
//! cheapest way that preserves every determinism guarantee: engines
//! share *nothing*, and a graph's home engine is a pure function of its
//! name. Tenants on different graphs placed on different engines
//! genuinely overlap — each engine keeps its own cohort barrier — while
//! tenants on the same graph still interleave deterministically inside
//! their home engine exactly as before.
//!
//! Placement rule (documented contract, also in DESIGN.md):
//!
//! ```text
//! engine(name) = splitmix64(fnv1a64(name)) mod engines
//! ```
//!
//! Seeds derive per-engine so no two engines share tiebreak streams:
//! engine 0 inherits `ServiceConfig::seed` verbatim (a 1-engine pool is
//! byte-identical to a bare `GraphService` under the same config) and
//! engine `i > 0` gets `splitmix64(seed ^ i)`.
//!
//! Durability nests the same way: [`EnginePool::new_durable`] namespaces
//! engine `i` onto a [`PrefixVfs`] view `"e{i}_"` of one backing VFS, so
//! each engine keeps its private WAL and [`EnginePool::restore`] revives
//! all of them — plus their unfinished jobs — from a single disk.

use crate::catalog::{CatalogError, GraphSpec};
use crate::scheduler::splitmix64;
use crate::service::{
    AdmissionError, GraphService, JobRequest, JobTicket, RecoveredJob, SchedulingPause,
    ServiceConfig,
};
use hybridgraph_core::VertexProgram;
use hybridgraph_graph::Graph;
use hybridgraph_storage::{CodecChoice, PrefixVfs, Vfs};
use std::io;
use std::sync::Arc;

/// FNV-1a 64-bit over the graph name; finalized through splitmix64 so
/// short names still spread across engines.
fn place_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// An unfinished job surfaced by [`EnginePool::restore`], tagged with
/// the engine that owns it. Resume it via
/// [`EnginePool::resume_job`] (or directly on `pool.engine(engine)`).
#[derive(Debug)]
pub struct PoolRecoveredJob {
    /// Index of the engine the job belongs to.
    pub engine: usize,
    /// The engine-local recovered job.
    pub job: RecoveredJob,
}

/// N independent [`GraphService`] engines with deterministic hash-based
/// graph placement. See the module docs for the placement and seeding
/// rules.
pub struct EnginePool {
    engines: Vec<GraphService>,
}

impl EnginePool {
    /// Seed of engine `index` under pool seed `base`: engine 0 keeps
    /// `base` (a 1-engine pool matches a bare service), engine `i > 0`
    /// gets `splitmix64(base ^ i)`.
    pub fn engine_seed(base: u64, index: usize) -> u64 {
        if index == 0 {
            base
        } else {
            splitmix64(base ^ index as u64)
        }
    }

    /// The VFS namespace prefix engine `index` mounts under a durable
    /// pool's backing VFS.
    pub fn engine_prefix(index: usize) -> String {
        format!("e{index}_")
    }

    /// An in-memory pool of `engines` independent engines, each under
    /// `cfg` with its derived seed. Panics if `engines` is zero.
    pub fn new(cfg: ServiceConfig, engines: usize) -> EnginePool {
        assert!(engines > 0, "a pool needs at least one engine");
        EnginePool {
            engines: (0..engines)
                .map(|i| {
                    let mut c = cfg;
                    c.seed = Self::engine_seed(cfg.seed, i);
                    GraphService::new(c)
                })
                .collect(),
        }
    }

    /// A durable pool: engine `i` journals to its own WAL on the
    /// namespaced view `"e{i}_"` of `vfs` (see [`EnginePool::restore`]).
    pub fn new_durable(
        cfg: ServiceConfig,
        engines: usize,
        vfs: Arc<dyn Vfs>,
        codec: CodecChoice,
    ) -> io::Result<EnginePool> {
        assert!(engines > 0, "a pool needs at least one engine");
        let mut built = Vec::with_capacity(engines);
        for i in 0..engines {
            let mut c = cfg;
            c.seed = Self::engine_seed(cfg.seed, i);
            let view: Arc<dyn Vfs> =
                Arc::new(PrefixVfs::new(Arc::clone(&vfs), Self::engine_prefix(i)));
            built.push(GraphService::new_durable(c, view, codec)?);
        }
        Ok(EnginePool { engines: built })
    }

    /// Whether any engine of an `engines`-wide pool left a service log
    /// on `vfs`.
    pub fn log_exists(vfs: &Arc<dyn Vfs>, engines: usize) -> bool {
        (0..engines).any(|i| {
            let view = PrefixVfs::new(Arc::clone(vfs), Self::engine_prefix(i));
            GraphService::log_exists(&view)
        })
    }

    /// Revives a durable pool from the per-engine logs on `vfs`. Engines
    /// whose log is missing (e.g. the pool crashed before they journaled
    /// anything) come back empty but functional. Returns every
    /// unfinished job tagged with its engine, ordered by engine then
    /// admission order.
    pub fn restore(
        cfg: ServiceConfig,
        engines: usize,
        vfs: Arc<dyn Vfs>,
        codec: CodecChoice,
    ) -> io::Result<(EnginePool, Vec<PoolRecoveredJob>)> {
        assert!(engines > 0, "a pool needs at least one engine");
        let mut built = Vec::with_capacity(engines);
        let mut recovered = Vec::new();
        for i in 0..engines {
            let mut c = cfg;
            c.seed = Self::engine_seed(cfg.seed, i);
            let view: Arc<dyn Vfs> =
                Arc::new(PrefixVfs::new(Arc::clone(&vfs), Self::engine_prefix(i)));
            if GraphService::log_exists(view.as_ref()) {
                let (svc, jobs) = GraphService::restore(c, view)?;
                recovered.extend(
                    jobs.into_iter()
                        .map(|job| PoolRecoveredJob { engine: i, job }),
                );
                built.push(svc);
            } else {
                built.push(GraphService::new_durable(c, view, codec)?);
            }
        }
        Ok((EnginePool { engines: built }, recovered))
    }

    /// Number of engines.
    pub fn engines(&self) -> usize {
        self.engines.len()
    }

    /// The engine at `index`.
    pub fn engine(&self, index: usize) -> &GraphService {
        &self.engines[index]
    }

    /// Home engine index of `name` — the documented placement rule
    /// `splitmix64(fnv1a64(name)) mod engines`.
    pub fn placement(&self, name: &str) -> usize {
        (place_hash(name) % self.engines.len() as u64) as usize
    }

    /// The home engine of `name`.
    pub fn engine_of(&self, name: &str) -> &GraphService {
        &self.engines[self.placement(name)]
    }

    /// Registers `graph` on its home engine; returns `(engine index,
    /// graph id)`.
    pub fn register_graph(
        &self,
        name: &str,
        graph: Graph,
        spec: GraphSpec,
    ) -> Result<(usize, u32), CatalogError> {
        let e = self.placement(name);
        let id = self.engines[e].register_graph(name, graph, spec)?;
        Ok((e, id))
    }

    /// Evicts `name` from its home engine.
    pub fn evict(&self, name: &str) -> Result<(), CatalogError> {
        self.engine_of(name).evict(name)
    }

    /// The registered worker count of `name` on its home engine.
    pub fn workers_of(&self, name: &str) -> Option<usize> {
        self.engine_of(name).workers_of(name)
    }

    /// Submits a job to the graph's home engine.
    pub fn submit<P: VertexProgram>(
        &self,
        program: Arc<P>,
        req: JobRequest,
    ) -> Result<JobTicket<P>, AdmissionError> {
        self.engine_of(&req.graph).submit(program, req)
    }

    /// Re-attaches a job recovered by [`EnginePool::restore`] to its
    /// engine (see [`GraphService::resume_job`]).
    pub fn resume_job<P: VertexProgram>(
        &self,
        program: Arc<P>,
        cfg: hybridgraph_core::JobConfig,
        rec: &PoolRecoveredJob,
    ) -> Result<JobTicket<P>, AdmissionError> {
        self.engines[rec.engine].resume_job(program, cfg, &rec.job)
    }

    /// Suspends scheduler grants on *every* engine until the returned
    /// guards drop. Hold across a batch of [`EnginePool::submit`] calls
    /// to make the whole cross-engine schedule a pure function of the
    /// batch and the pool seed (the per-engine analogue of
    /// [`GraphService::pause_scheduling`]).
    pub fn pause_all(&self) -> Vec<SchedulingPause<'_>> {
        self.engines.iter().map(|e| e.pause_scheduling()).collect()
    }

    /// Per-engine `(resident, queued)` job counts, indexed by engine —
    /// the gateway's queue-depth gauges.
    pub fn queue_depths(&self) -> Vec<(usize, usize)> {
        self.engines
            .iter()
            .map(|e| (e.resident_jobs(), e.queued_jobs()))
            .collect()
    }

    /// Total registered graphs across engines.
    pub fn registered_graphs(&self) -> usize {
        self.engines.iter().map(|e| e.registered_graphs()).sum()
    }
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("engines", &self.engines.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Placement is a pure function of the name — independent of the
    /// pool instance — and spreads distinct names across engines.
    #[test]
    fn placement_is_stable_and_spreads() {
        let a = EnginePool::new(ServiceConfig::default(), 4);
        let b = EnginePool::new(ServiceConfig::default(), 4);
        let mut hit = [false; 4];
        for i in 0..64 {
            let name = format!("tenant-{i}");
            assert_eq!(a.placement(&name), b.placement(&name));
            hit[a.placement(&name)] = true;
        }
        assert!(hit.iter().all(|h| *h), "64 names must touch all 4 engines");
    }

    /// Engine 0 of any pool inherits the pool seed verbatim, so a
    /// 1-engine pool is the same object as a bare service.
    #[test]
    fn engine_zero_keeps_the_base_seed() {
        assert_eq!(EnginePool::engine_seed(42, 0), 42);
        assert_ne!(
            EnginePool::engine_seed(42, 1),
            EnginePool::engine_seed(42, 2)
        );
    }
}
