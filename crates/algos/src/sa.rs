//! Simulated advertisements (Mizan's SA, paper §6).
//!
//! Selected source vertices broadcast their favourite advertisement.
//! A vertex receiving ads adopts the one a plurality of its responding
//! in-neighbors sent — if it is *interested* in it — and forwards it;
//! otherwise it ignores the round. Interests and sources are
//! deterministic hashes of the vertex id, so runs are reproducible.
//! Ad identities are not commutative: SA is the paper's second
//! concatenate-only workload, and Traversal-style like SSSP.

use hybridgraph_core::{GraphInfo, Update, VertexProgram};
use hybridgraph_graph::{Edge, VertexId};
use std::collections::HashMap;

/// Number of distinct advertisements in the universe.
pub const NUM_ADS: u32 = 64;

/// SA vertex state: the set of adopted ads (bitmask) and the most
/// recently adopted ad (the one being forwarded).
pub type SaValue = (u64, u32);

/// The simulated-advertisement vertex program.
#[derive(Clone, Debug)]
pub struct Sa {
    /// One in `source_ratio` vertices starts as an advertiser.
    pub source_ratio: u32,
    /// Interest probability numerator out of 256 per (vertex, ad) pair.
    pub interest_per_256: u32,
    /// Hash seed.
    pub seed: u64,
}

impl Sa {
    /// SA with one source per `source_ratio` vertices and ~50% interest.
    pub fn new(source_ratio: u32, seed: u64) -> Self {
        Sa {
            source_ratio: source_ratio.max(1),
            interest_per_256: 128,
            seed,
        }
    }

    fn hash(&self, a: u64, b: u64) -> u64 {
        // splitmix64 over (seed, a, b)
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(a)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add(b);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Is `v` an initial advertiser?
    pub fn is_source(&self, v: VertexId) -> bool {
        (self.hash(v.0 as u64, 0)).is_multiple_of(self.source_ratio as u64)
    }

    /// `v`'s favourite ad (the one it advertises if a source).
    pub fn favourite(&self, v: VertexId) -> u32 {
        (self.hash(v.0 as u64, 1) % NUM_ADS as u64) as u32
    }

    /// Is `v` interested in `ad`?
    pub fn interested(&self, v: VertexId, ad: u32) -> bool {
        self.hash(v.0 as u64, 2 + ad as u64) % 256 < self.interest_per_256 as u64
    }

    /// Plurality ad with smallest-id tie-breaking.
    fn plurality(msgs: &[u32]) -> u32 {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &m in msgs {
            *counts.entry(m).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(ad, _)| ad)
            .expect("plurality of empty ads")
    }
}

impl VertexProgram for Sa {
    type Value = SaValue;
    type Message = u32;

    fn name(&self) -> &'static str {
        "SA"
    }

    fn init(&self, _v: VertexId, _info: &GraphInfo) -> SaValue {
        (0, u32::MAX)
    }

    fn initially_active(&self, v: VertexId, _info: &GraphInfo) -> bool {
        self.is_source(v)
    }

    fn update(
        &self,
        v: VertexId,
        _info: &GraphInfo,
        superstep: u64,
        current: &SaValue,
        msgs: &[u32],
    ) -> Update<SaValue> {
        if superstep == 1 {
            let ad = self.favourite(v);
            return Update::respond((1u64 << ad, ad));
        }
        let (mask, _) = *current;
        if mask != 0 {
            // Already adopted and forwarded once: ignore further ads, so
            // the active set decays monotonically (Traversal-style, like
            // the paper's SA — not Multi-Phase).
            return Update::halt(*current);
        }
        let ad = Self::plurality(msgs);
        if self.interested(v, ad) {
            Update::respond((1u64 << ad, ad))
        } else {
            Update::halt(*current)
        }
    }

    fn message(
        &self,
        _src: VertexId,
        value: &SaValue,
        _out_degree: u32,
        _edge: &Edge,
    ) -> Option<u32> {
        let (_, last) = *value;
        (last != u32::MAX).then_some(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run_capped;
    use hybridgraph_graph::gen;

    #[test]
    fn hashing_is_deterministic() {
        let sa = Sa::new(4, 7);
        assert_eq!(sa.is_source(VertexId(3)), sa.is_source(VertexId(3)));
        assert_eq!(sa.favourite(VertexId(9)), sa.favourite(VertexId(9)));
        assert!(sa.favourite(VertexId(1)) < NUM_ADS);
    }

    #[test]
    fn roughly_expected_source_fraction() {
        let sa = Sa::new(4, 1);
        let sources = (0..10_000u32)
            .filter(|&v| sa.is_source(VertexId(v)))
            .count();
        assert!((1500..3500).contains(&sources), "sources {sources}");
    }

    #[test]
    fn adoption_requires_interest_and_novelty() {
        let sa = Sa::new(2, 3);
        let info = GraphInfo {
            num_vertices: 10,
            num_edges: 0,
        };
        // find an interested pair
        let v = (0..100u32)
            .map(VertexId)
            .find(|&v| sa.interested(v, 5))
            .unwrap();
        let upd = sa.update(v, &info, 2, &(0, u32::MAX), &[5]);
        assert!(upd.respond);
        assert_eq!(upd.value, (1 << 5, 5));
        // already adopted: halt
        let upd2 = sa.update(v, &info, 2, &(1 << 5, 5), &[5]);
        assert!(!upd2.respond);
    }

    #[test]
    fn converges_on_random_graph() {
        let g = gen::uniform(200, 1200, 9);
        let (values, steps) = reference_run_capped(&Sa::new(8, 2), &g, 200);
        assert!(steps < 200, "SA must converge, ran {steps}");
        // Some non-source vertices adopted something.
        let adopted = values.iter().filter(|(m, _)| *m != 0).count();
        assert!(adopted > 0);
    }

    #[test]
    fn sa_value_is_fixed_width() {
        use hybridgraph_storage::Record;
        assert_eq!(<SaValue as Record>::BYTES, 12);
    }
}
