//! Sequential reference executor.
//!
//! Implements the engine's BSP semantics directly — superstep 1 updates
//! the initially-active vertices with no messages; superstep `t > 1`
//! generates messages from every vertex whose responding flag was set at
//! `t − 1` and updates exactly the message receivers — with no storage,
//! network, or concurrency. The distributed engine in every mode must
//! produce byte-identical values to this executor; the cross-mode
//! equivalence tests assert it.

use hybridgraph_core::program::{GraphInfo, VertexProgram};
use hybridgraph_graph::{Graph, VertexId};
use std::collections::BTreeMap;

/// Runs `program` on `graph` sequentially until convergence or the
/// program's superstep budget; returns the final values.
pub fn reference_run<P: VertexProgram>(program: &P, graph: &Graph) -> Vec<P::Value> {
    reference_run_capped(program, graph, 10_000).0
}

/// Like [`reference_run`], also returning the number of supersteps
/// executed. `cap` bounds runaway programs.
pub fn reference_run_capped<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    cap: u64,
) -> (Vec<P::Value>, u64) {
    let n = graph.num_vertices();
    let info = GraphInfo {
        num_vertices: n as u64,
        num_edges: graph.num_edges() as u64,
    };
    let mut values: Vec<P::Value> = (0..n)
        .map(|v| program.init(VertexId(v as u32), &info))
        .collect();
    let mut respond: Vec<bool> = vec![false; n];
    let max = program.max_supersteps().unwrap_or(u64::MAX).min(cap);

    let mut superstep = 0u64;
    while superstep < max {
        superstep += 1;
        if superstep == 1 {
            for v in 0..n {
                if program.initially_active(VertexId(v as u32), &info) {
                    let upd = program.update(VertexId(v as u32), &info, 1, &values[v], &[]);
                    values[v] = upd.value;
                    respond[v] = upd.respond;
                }
            }
        } else {
            // pushRes / pullRes from last superstep's responders.
            let mut inbox: BTreeMap<u32, Vec<P::Message>> = BTreeMap::new();
            for v in 0..n {
                if !respond[v] {
                    continue;
                }
                let vid = VertexId(v as u32);
                let outd = graph.out_degree(vid) as u32;
                for e in graph.out_edges(vid) {
                    if let Some(m) = program.message(vid, &values[v], outd, e) {
                        inbox.entry(e.dst.0).or_default().push(m);
                    }
                }
            }
            respond.fill(false);
            if inbox.is_empty() {
                break;
            }
            for (v, msgs) in inbox {
                let vid = VertexId(v);
                let upd = program.update(vid, &info, superstep, &values[v as usize], &msgs);
                values[v as usize] = upd.value;
                respond[v as usize] = upd.respond;
            }
        }
        if !respond.iter().any(|&r| r) {
            break;
        }
    }
    (values, superstep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::Sssp;
    use hybridgraph_graph::gen;

    #[test]
    fn terminates_on_quiet_program() {
        let g = gen::chain(5);
        let (_, steps) = reference_run_capped(&Sssp::new(VertexId(0)), &g, 100);
        // chain of 5: distances propagate one hop per superstep.
        assert!(steps <= 6, "steps {steps}");
    }

    #[test]
    fn cap_bounds_execution() {
        let g = gen::cycle(4);
        let p = crate::pagerank::PageRank::new(u64::MAX);
        let (_, steps) = reference_run_capped(&p, &g, 7);
        assert_eq!(steps, 7);
    }
}
