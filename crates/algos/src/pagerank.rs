//! PageRank (paper Fig. 3).
//!
//! Superstep 1 initializes every rank to `1/N` and broadcasts
//! `rank/out-degree`; each later superstep sets
//! `rank = 0.15/N + 0.85 · Σ messages` and broadcasts again, for a fixed
//! number of supersteps. Messages are commutative (sum-combinable), which
//! makes PageRank the paper's canonical Always-Active-style, combinable
//! workload.

use hybridgraph_core::{GraphInfo, Update, VertexProgram};
use hybridgraph_graph::{Edge, VertexId};
use hybridgraph_net::combine::SumCombiner;
use hybridgraph_net::Combiner;

/// The PageRank vertex program.
#[derive(Clone, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 in the paper's Fig. 3).
    pub damping: f64,
    /// Total supersteps to run (the paper uses 5 or 10).
    pub supersteps: u64,
    /// Convergence tolerance on `|new − old|`, when running to
    /// convergence instead of a fixed superstep count.
    pub eps: Option<f64>,
    combiner: SumCombiner,
}

impl PageRank {
    /// PageRank with damping 0.85 for `supersteps` supersteps.
    pub fn new(supersteps: u64) -> Self {
        PageRank {
            damping: 0.85,
            supersteps,
            eps: None,
            combiner: SumCombiner,
        }
    }

    /// PageRank that runs until every rank moves by at most `eps` in one
    /// superstep (capped at `max_supersteps`). The residual also drives
    /// `Async` mode's per-block pseudo-round cutoff.
    pub fn until(eps: f64, max_supersteps: u64) -> Self {
        PageRank {
            damping: 0.85,
            supersteps: max_supersteps,
            eps: Some(eps),
            combiner: SumCombiner,
        }
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Message = f64;

    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn init(&self, _v: VertexId, info: &GraphInfo) -> f64 {
        1.0 / info.num_vertices as f64
    }

    fn update(
        &self,
        _v: VertexId,
        info: &GraphInfo,
        superstep: u64,
        current: &f64,
        msgs: &[f64],
    ) -> Update<f64> {
        let value = if superstep == 1 {
            *current
        } else {
            let sum: f64 = msgs.iter().sum();
            (1.0 - self.damping) / info.num_vertices as f64 + self.damping * sum
        };
        Update::respond(value)
    }

    fn message(&self, _src: VertexId, value: &f64, out_degree: u32, _edge: &Edge) -> Option<f64> {
        debug_assert!(out_degree > 0, "message generated for sink vertex");
        Some(*value / out_degree as f64)
    }

    fn combiner(&self) -> Option<&dyn Combiner<f64>> {
        Some(&self.combiner)
    }

    fn max_supersteps(&self) -> Option<u64> {
        Some(self.supersteps)
    }

    fn residual(&self, old: &f64, new: &f64) -> f64 {
        (new - old).abs()
    }

    fn tolerance(&self) -> Option<f64> {
        self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;
    use hybridgraph_graph::gen;

    #[test]
    fn ranks_sum_to_roughly_one_on_cycle() {
        // On a cycle every vertex has in-degree 1 and out-degree 1: ranks
        // stay uniform and sum to exactly 1.
        let g = gen::cycle(10);
        let ranks = reference_run(&PageRank::new(5), &g);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn hub_gets_more_rank() {
        // Cycle 0 -> 1 -> 2 -> 3 -> 0 plus a chord 0 -> 2: vertex 2 has
        // the highest in-flow, vertex 1 (fed by only half of 0's rank)
        // the lowest. Every vertex has an in-edge, so all stay active.
        let mut b = hybridgraph_graph::GraphBuilder::new(4);
        for &(s, d) in &[(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.add(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let ranks = reference_run(&PageRank::new(30), &g);
        let max = ranks.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(ranks[2], max, "chord target collects the most rank");
        assert!(ranks[1] < ranks[3]);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rank mass conserved: {sum}");
    }

    #[test]
    fn respects_superstep_budget() {
        let g = gen::uniform(50, 200, 1);
        let p = PageRank::new(3);
        assert_eq!(p.max_supersteps(), Some(3));
        // Reference runs exactly 3 supersteps and terminates.
        let _ = reference_run(&p, &g);
    }

    #[test]
    fn message_divides_by_out_degree() {
        let p = PageRank::new(5);
        let e = Edge::to(VertexId(1));
        assert_eq!(p.message(VertexId(0), &0.8, 4, &e), Some(0.2));
    }
}
