//! Label propagation community detection (Raghavan et al., paper §6).
//!
//! Every vertex starts with its own id as label; each superstep it adopts
//! the label held by the plurality of its in-neighbors (ties broken
//! toward the smallest label, for determinism) and re-broadcasts. Labels
//! are **not** commutative — the update needs the full multiset — so LPA
//! can only concatenate messages (no combiner, no pushM, Eq. 6 Vblock
//! sizing), which is exactly why the paper includes it.

use hybridgraph_core::{GraphInfo, Update, VertexProgram};
use hybridgraph_graph::{Edge, VertexId};
use std::collections::HashMap;

/// The LPA vertex program.
#[derive(Clone, Debug)]
pub struct Lpa {
    /// Total supersteps to run (the paper runs 5).
    pub supersteps: u64,
    /// Stop early once a superstep changes no label.
    pub converge: bool,
}

impl Lpa {
    /// LPA for `supersteps` supersteps.
    pub fn new(supersteps: u64) -> Self {
        Lpa {
            supersteps,
            converge: false,
        }
    }

    /// LPA that stops as soon as a superstep changes no label (capped at
    /// `max_supersteps`). The default 0/1 residual is exact for labels,
    /// so tolerance 0 means "no vertex changed".
    pub fn converging(max_supersteps: u64) -> Self {
        Lpa {
            supersteps: max_supersteps,
            converge: true,
        }
    }

    /// The plurality label with smallest-label tie-breaking.
    pub fn plurality(msgs: &[u32]) -> u32 {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &m in msgs {
            *counts.entry(m).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(label, _)| label)
            .expect("plurality of empty message set")
    }
}

impl VertexProgram for Lpa {
    type Value = u32;
    type Message = u32;

    fn name(&self) -> &'static str {
        "LPA"
    }

    fn init(&self, v: VertexId, _info: &GraphInfo) -> u32 {
        v.0
    }

    fn update(
        &self,
        _v: VertexId,
        _info: &GraphInfo,
        superstep: u64,
        current: &u32,
        msgs: &[u32],
    ) -> Update<u32> {
        let value = if superstep == 1 {
            *current
        } else {
            Self::plurality(msgs)
        };
        Update::respond(value)
    }

    fn message(&self, _src: VertexId, value: &u32, _out_degree: u32, _edge: &Edge) -> Option<u32> {
        Some(*value)
    }

    fn max_supersteps(&self) -> Option<u64> {
        Some(self.supersteps)
    }

    fn tolerance(&self) -> Option<f64> {
        self.converge.then_some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;
    use hybridgraph_graph::{gen, GraphBuilder};

    #[test]
    fn plurality_counts_and_ties() {
        assert_eq!(Lpa::plurality(&[3, 1, 3, 2]), 3);
        // tie between 1 and 2 -> smallest wins
        assert_eq!(Lpa::plurality(&[2, 1, 1, 2]), 1);
        assert_eq!(Lpa::plurality(&[9]), 9);
    }

    #[test]
    fn no_combiner() {
        assert!(Lpa::new(5).combiner().is_none());
    }

    #[test]
    fn two_cliques_converge_to_two_labels() {
        // Two directed 3-cliques with no cross edges.
        let mut b = GraphBuilder::new(6);
        for &(s, d) in &[(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)] {
            b.add(VertexId(s), VertexId(d));
        }
        for &(s, d) in &[(3, 4), (4, 5), (5, 3), (4, 3), (5, 4), (3, 5)] {
            b.add(VertexId(s), VertexId(d));
        }
        let g = b.build();
        let labels = reference_run(&Lpa::new(8), &g);
        assert!(labels[0] == labels[1] && labels[1] == labels[2]);
        assert!(labels[3] == labels[4] && labels[4] == labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn order_insensitive_update() {
        let p = Lpa::new(5);
        let info = GraphInfo {
            num_vertices: 4,
            num_edges: 0,
        };
        let a = p.update(VertexId(0), &info, 2, &0, &[5, 7, 5]);
        let b = p.update(VertexId(0), &info, 2, &0, &[5, 5, 7]);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn runs_fixed_supersteps_on_cycle() {
        let g = gen::cycle(5);
        // On a directed cycle each vertex adopts its predecessor's label:
        // after k propagation rounds, label(v) = v - k mod 5.
        let labels = reference_run(&Lpa::new(3), &g);
        // 3 supersteps = init + 2 propagation rounds.
        for v in 0..5u32 {
            assert_eq!(labels[v as usize], (v + 5 - 2) % 5);
        }
    }
}
