//! Single-source shortest paths (paper §6).
//!
//! The source starts at distance 0; every superstep, a vertex whose
//! distance improved broadcasts `distance + edge weight` to its
//! out-neighbors. Messages are min-combinable. The active vertex set
//! swells and then shrinks over supersteps — the paper's Traversal-style
//! workload, where hybrid's switching pays off.

use hybridgraph_core::{GraphInfo, Update, VertexProgram};
use hybridgraph_graph::{Edge, VertexId};
use hybridgraph_net::combine::MinCombiner;
use hybridgraph_net::Combiner;

/// The SSSP vertex program.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
    combiner: MinCombiner,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp {
            source,
            combiner: MinCombiner,
        }
    }
}

impl VertexProgram for Sssp {
    type Value = f32;
    type Message = f32;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn init(&self, _v: VertexId, _info: &GraphInfo) -> f32 {
        f32::INFINITY
    }

    fn initially_active(&self, v: VertexId, _info: &GraphInfo) -> bool {
        v == self.source
    }

    fn update(
        &self,
        v: VertexId,
        _info: &GraphInfo,
        superstep: u64,
        current: &f32,
        msgs: &[f32],
    ) -> Update<f32> {
        if superstep == 1 {
            debug_assert_eq!(v, self.source);
            return Update::respond(0.0);
        }
        let best = msgs.iter().copied().fold(f32::INFINITY, f32::min);
        if best < *current {
            Update::respond(best)
        } else {
            Update::halt(*current)
        }
    }

    fn message(&self, _src: VertexId, value: &f32, _out_degree: u32, edge: &Edge) -> Option<f32> {
        Some(value + edge.weight)
    }

    fn combiner(&self) -> Option<&dyn Combiner<f32>> {
        Some(&self.combiner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;
    use hybridgraph_graph::{gen, Graph, GraphBuilder};

    /// Dijkstra ground truth. Positive f32 bit patterns order like the
    /// floats themselves, so `to_bits` gives an exact heap key.
    pub(crate) fn dijkstra(g: &Graph, source: VertexId) -> Vec<f32> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = g.num_vertices();
        let mut dist = vec![f32::INFINITY; n];
        dist[source.index()] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0.0f32.to_bits(), source.0)));
        while let Some(Reverse((bits, v))) = heap.pop() {
            let d = f32::from_bits(bits);
            if d > dist[v as usize] {
                continue;
            }
            for e in g.out_edges(VertexId(v)) {
                let nd = d + e.weight;
                if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    heap.push(Reverse((nd.to_bits(), e.dst.0)));
                }
            }
        }
        dist
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let g = gen::randomize_weights(&gen::uniform(100, 600, 3), 1.0, 5.0, 4);
        let got = reference_run(&Sssp::new(VertexId(0)), &g);
        let want = dijkstra(&g, VertexId(0));
        for v in 0..100 {
            if want[v].is_infinite() {
                assert!(got[v].is_infinite(), "v{v}");
            } else {
                assert!(
                    (got[v] - want[v]).abs() < 1e-3,
                    "v{v}: {} vs {}",
                    got[v],
                    want[v]
                );
            }
        }
    }

    #[test]
    fn chain_distances() {
        let g = gen::chain(6); // unit weights
        let got = reference_run(&Sssp::new(VertexId(0)), &g);
        for (v, d) in got.iter().enumerate() {
            assert_eq!(*d, v as f32);
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add(VertexId(0), VertexId(1));
        let g = b.build();
        let got = reference_run(&Sssp::new(VertexId(0)), &g);
        assert_eq!(got[1], 1.0);
        assert!(got[2].is_infinite());
    }

    #[test]
    fn only_source_initially_active() {
        let p = Sssp::new(VertexId(3));
        let info = GraphInfo {
            num_vertices: 5,
            num_edges: 0,
        };
        assert!(p.initially_active(VertexId(3), &info));
        assert!(!p.initially_active(VertexId(0), &info));
    }

    #[test]
    fn halts_without_improvement() {
        let p = Sssp::new(VertexId(0));
        let info = GraphInfo {
            num_vertices: 2,
            num_edges: 1,
        };
        let upd = p.update(VertexId(1), &info, 3, &2.0, &[5.0, 3.0]);
        assert!(!upd.respond);
        assert_eq!(upd.value, 2.0);
        let upd = p.update(VertexId(1), &info, 3, &2.0, &[1.5]);
        assert!(upd.respond);
        assert_eq!(upd.value, 1.5);
    }
}
