//! Minimum-label propagation (connected components on symmetric graphs).
//!
//! An extension beyond the paper's four algorithms: every vertex starts
//! with its own id, broadcasts it, and adopts any smaller id it hears,
//! until quiescence. On a symmetrized graph the fixpoint labels are the
//! weakly-connected components. Min-combinable and Traversal-style after
//! the first wave — another workload for hybrid's switching.

use hybridgraph_core::{GraphInfo, Update, VertexProgram};
use hybridgraph_graph::{Edge, VertexId};
use hybridgraph_net::combine::MinCombiner;
use hybridgraph_net::Combiner;

/// The minimum-label propagation program.
#[derive(Clone, Debug, Default)]
pub struct Wcc {
    combiner: MinCombiner,
}

impl Wcc {
    /// A new instance.
    pub fn new() -> Self {
        Wcc::default()
    }
}

impl VertexProgram for Wcc {
    type Value = u32;
    type Message = u32;

    fn name(&self) -> &'static str {
        "WCC"
    }

    fn init(&self, v: VertexId, _info: &GraphInfo) -> u32 {
        v.0
    }

    fn update(
        &self,
        _v: VertexId,
        _info: &GraphInfo,
        superstep: u64,
        current: &u32,
        msgs: &[u32],
    ) -> Update<u32> {
        if superstep == 1 {
            return Update::respond(*current);
        }
        let best = msgs.iter().copied().min().unwrap_or(u32::MAX);
        if best < *current {
            Update::respond(best)
        } else {
            Update::halt(*current)
        }
    }

    fn message(&self, _src: VertexId, value: &u32, _out_degree: u32, _edge: &Edge) -> Option<u32> {
        Some(*value)
    }

    fn combiner(&self) -> Option<&dyn Combiner<u32>> {
        Some(&self.combiner)
    }
}

/// Makes a graph symmetric: for every edge `(u, v)` adds `(v, u)`.
pub fn symmetrize(g: &hybridgraph_graph::Graph) -> hybridgraph_graph::Graph {
    let mut b = hybridgraph_graph::GraphBuilder::new(g.num_vertices())
        .with_edge_capacity(g.num_edges() * 2)
        .dedup();
    for (s, e) in g.edges() {
        b.add_weighted(s, e.dst, e.weight);
        b.add_weighted(e.dst, s, e.weight);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_run;
    use hybridgraph_graph::{gen, GraphBuilder};

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new(6);
        b.add(VertexId(0), VertexId(1));
        b.add(VertexId(1), VertexId(2));
        b.add(VertexId(4), VertexId(5));
        let g = symmetrize(&b.build());
        let labels = reference_run(&Wcc::new(), &g);
        assert_eq!(labels[0..3], [0, 0, 0]);
        assert_eq!(labels[3], 3, "isolated vertex keeps its id");
        assert_eq!(labels[4..6], [4, 4]);
    }

    #[test]
    fn connected_graph_single_label() {
        let g = symmetrize(&gen::cycle(20));
        let labels = reference_run(&Wcc::new(), &g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn symmetrize_doubles_and_dedups() {
        let g = gen::chain(4);
        let s = symmetrize(&g);
        assert_eq!(s.num_edges(), 6);
        let again = symmetrize(&s);
        assert_eq!(again.num_edges(), 6);
    }
}
