//! The vertex programs evaluated in the paper, plus extensions.
//!
//! * [`PageRank`] — Always-Active-style, combinable (sum). Paper Fig. 3.
//! * [`Sssp`] — single-source shortest paths; Traversal-style, combinable
//!   (min).
//! * [`Lpa`] — label propagation community detection; messages are *not*
//!   commutative (concatenate-only).
//! * [`Sa`] — simulated advertisements on social networks (Mizan's SA);
//!   Traversal-style, concatenate-only.
//! * [`Wcc`] — minimum-label propagation (connected components on
//!   symmetric graphs); an extension beyond the paper's four algorithms.
//!
//! [`reference`] provides a sequential executor with the exact BSP
//! semantics of the engine, used as ground truth by the cross-mode
//! equivalence tests.
//!
//! ## Activation semantics
//!
//! As in the paper's Algorithm 1 (the active-flag vector is "updated from
//! the messages received"), a vertex computes in superstep `t > 1` iff it
//! received at least one message — uniformly in every mode. A vertex with
//! no in-edges therefore keeps its superstep-1 value.

pub mod lpa;
pub mod pagerank;
pub mod reference;
pub mod sa;
pub mod sssp;
pub mod wcc;

pub use lpa::Lpa;
pub use pagerank::PageRank;
pub use sa::Sa;
pub use sssp::Sssp;
pub use wcc::Wcc;
