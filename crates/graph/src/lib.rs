//! Graph model substrate for HybridGraph.
//!
//! This crate provides the data-model layer under the HybridGraph engine:
//!
//! * compact identifiers ([`VertexId`], [`BlockId`], [`WorkerId`]),
//! * an immutable CSR [`Graph`] with forward and reverse adjacency,
//! * synthetic graph [`gen`]erators and a [`catalog`] of scaled stand-ins
//!   for the six real-world graphs evaluated in the paper (Table 4),
//! * the range [`partition`]er and Vblock layout used by VE-BLOCK
//!   (paper §4.1 and §4.3, Eqs. 5–6),
//! * text/binary graph [`io`].
//!
//! Everything downstream (storage, network, engine) is written against the
//! types defined here.

pub mod builder;
pub mod catalog;
pub mod csr;
pub mod edge;
pub mod gen;
pub mod ids;
pub mod io;
pub mod partition;
pub mod rng;

pub use builder::GraphBuilder;
pub use catalog::{Dataset, DatasetSpec, StreamSpec};
pub use csr::Graph;
pub use edge::Edge;
pub use ids::{BlockId, VertexId, WorkerId};
pub use partition::{BlockLayout, Partition, VblockInfo};
