//! Synthetic graph generators.
//!
//! The paper evaluates on six real-world graphs (Table 4). In this
//! reproduction those are replaced by synthetic stand-ins (see
//! [`crate::catalog`]); the generators here control the three properties the
//! evaluation actually keys on: edge volume, degree skew, and diameter.
//!
//! All generators are deterministic given a seed.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// Erdős–Rényi-style uniform random directed graph with `n` vertices and
/// `m` edges (self-loops excluded, duplicates allowed — matching multigraph
/// behaviour of web crawls).
pub fn uniform(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "uniform graph needs at least 2 vertices");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    let mut added = 0;
    while added < m {
        let s = rng.below_u32(n as u32);
        let d = rng.below_u32(n as u32);
        if s == d {
            continue;
        }
        b.add(VertexId(s), VertexId(d));
        added += 1;
    }
    b.build()
}

/// Parameters of the recursive-matrix (R-MAT) generator.
///
/// `a + b + c + d` must be ~1. Larger `a` concentrates edges in the
/// low-id corner, producing a power-law degree distribution similar to
/// social networks (defaults follow the Graph500 convention).
#[derive(Copy, Clone, Debug)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // Graph500 parameters: strong skew, social-network-like.
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    /// Milder skew approximating web graphs.
    pub fn web() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }

    /// Extreme skew approximating the Twitter follower graph (`twi`), where
    /// the paper observes fragment blow-up in VE-BLOCK.
    pub fn heavy_skew() -> Self {
        RmatParams {
            a: 0.65,
            b: 0.15,
            c: 0.15,
            d: 0.05,
        }
    }
}

/// R-MAT power-law random graph with `n` vertices and `m` edges.
///
/// Edges are generated in the enclosing power-of-two id space and folded
/// back into `0..n` by modulo, which preserves the skew while keeping ids
/// dense. Self-loops are dropped and regenerated.
pub fn rmat(n: usize, m: usize, params: RmatParams, seed: u64) -> Graph {
    assert!(n >= 2, "rmat graph needs at least 2 vertices");
    let scale = (n as f64).log2().ceil() as u32;
    let side = 1u64 << scale;
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    let mut added = 0;
    while added < m {
        let (mut lo_s, mut lo_d) = (0u64, 0u64);
        let mut half = side / 2;
        while half >= 1 {
            let r: f64 = rng.next_f64();
            let (ds, dd) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            lo_s += ds * half;
            lo_d += dd * half;
            half /= 2;
        }
        let s = (lo_s % n as u64) as u32;
        let d = (lo_d % n as u64) as u32;
        if s == d {
            continue;
        }
        b.add(VertexId(s), VertexId(d));
        added += 1;
    }
    b.build()
}

/// A directed chain `0 -> 1 -> … -> n-1` (diameter `n - 1`).
///
/// Useful for exercising long-tail convergence of traversal algorithms.
pub fn chain(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(n.saturating_sub(1));
    for v in 0..n.saturating_sub(1) {
        b.add(VertexId(v as u32), VertexId(v as u32 + 1));
    }
    b.build()
}

/// A directed cycle over `n` vertices.
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).with_edge_capacity(n);
    for v in 0..n {
        b.add(VertexId(v as u32), VertexId(((v + 1) % n) as u32));
    }
    b.build()
}

/// A star: vertex 0 points to all others.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n).with_edge_capacity(n - 1);
    for v in 1..n {
        b.add(VertexId(0), VertexId(v as u32));
    }
    b.build()
}

/// A `rows x cols` grid with edges right and down (long diameter, low
/// degree — web-frontier-like traversal behaviour).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| VertexId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add(at(r, c), at(r + 1, c));
            }
        }
    }
    b.build()
}

/// Composes a core graph with a chain tail hanging off vertex 0.
///
/// The result has `core.num_vertices() + tail` vertices; the tail gives the
/// graph a large diameter so SSSP-style algorithms exhibit the long, sparse
/// convergent stage the paper observes on `wiki` (284 supersteps).
pub fn with_chain_tail(core: &Graph, tail: usize, seed: u64) -> Graph {
    let n0 = core.num_vertices();
    let n = n0 + tail;
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(core.num_edges() + tail + 1);
    for (s, e) in core.edges() {
        b.add_weighted(s, e.dst, e.weight);
    }
    if tail > 0 {
        // Attach the tail to a random core vertex so it is reachable.
        let anchor = VertexId(rng.below_u32(n0 as u32));
        b.add(anchor, VertexId(n0 as u32));
        for i in 0..tail - 1 {
            b.add(VertexId((n0 + i) as u32), VertexId((n0 + i + 1) as u32));
        }
    }
    b.build()
}

/// Rewires a fraction of edges to land near their source in id space.
///
/// Real-world graph crawls number vertices so that communities and site
/// structure cluster neighbor ids; RMAT output lacks that locality. This
/// transform redirects each edge, with probability `frac`, to a
/// destination uniform in `src ± window` (self-loops re-rolled), keeping
/// out-degrees and overall skew while restoring the id clustering that
/// VE-BLOCK fragment counts depend on.
pub fn localize(g: &Graph, frac: f64, window: usize, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&frac));
    let n = g.num_vertices();
    assert!(n >= 2);
    let window = window.max(1) as i64;
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(g.num_edges());
    for (s, e) in g.edges() {
        if rng.next_f64() < frac {
            let dst = loop {
                let off = rng.range_i64_inclusive(-window, window);
                let d = (s.0 as i64 + off).rem_euclid(n as i64) as u32;
                if d != s.0 {
                    break d;
                }
            };
            b.add_weighted(s, VertexId(dst), e.weight);
        } else {
            b.add_weighted(s, e.dst, e.weight);
        }
    }
    b.build()
}

/// Assigns uniform random weights in `[lo, hi)` to every edge of `g`.
pub fn randomize_weights(g: &Graph, lo: f32, hi: f32, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(g.num_vertices()).with_edge_capacity(g.num_edges());
    for (s, e) in g.edges() {
        b.add_weighted(s, e.dst, rng.range_f32(lo, hi));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts() {
        let g = uniform(100, 500, 7);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        // No self loops.
        for (s, e) in g.edges() {
            assert_ne!(s, e.dst);
        }
    }

    #[test]
    fn uniform_deterministic() {
        assert_eq!(uniform(50, 200, 1), uniform(50, 200, 1));
        assert_ne!(uniform(50, 200, 1), uniform(50, 200, 2));
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(1024, 8192, RmatParams::default(), 42);
        assert_eq!(g.num_edges(), 8192);
        // Power-law: max degree far above average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn rmat_heavier_params_more_skew() {
        let base = rmat(2048, 16384, RmatParams::web(), 9);
        let heavy = rmat(2048, 16384, RmatParams::heavy_skew(), 9);
        assert!(heavy.max_degree() > base.max_degree());
    }

    #[test]
    fn rmat_non_power_of_two() {
        let g = rmat(1000, 4000, RmatParams::default(), 5);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 4000);
    }

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(VertexId(0)), 1);
        assert_eq!(g.out_degree(VertexId(4)), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_edges(VertexId(3))[0].dst, VertexId(0));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.out_degree(VertexId(0)), 5);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // interior (2*rows*cols - rows - cols) edges
        assert_eq!(g.num_edges(), 2 * 3 * 4 - 3 - 4);
    }

    #[test]
    fn chain_tail_extends_diameter() {
        let core = uniform(64, 256, 3);
        let g = with_chain_tail(&core, 100, 3);
        assert_eq!(g.num_vertices(), 164);
        assert_eq!(g.num_edges(), 256 + 100);
        // Tail interior vertices have out-degree 1.
        assert_eq!(g.out_degree(VertexId(100)), 1);
        assert_eq!(g.out_degree(VertexId(163)), 0);
    }

    #[test]
    fn randomized_weights_in_range() {
        let g = randomize_weights(&cycle(10), 1.0, 5.0, 11);
        for (_, e) in g.edges() {
            assert!((1.0..5.0).contains(&e.weight));
        }
    }
}
