//! Text and binary graph serialization.
//!
//! The text format is the whitespace adjacency format used by the raw
//! datasets the paper loads ("src dst1 dst2 ..."), plus a weighted edge-list
//! variant ("src dst weight"). The binary format is a compact little-endian
//! CSR dump used by the examples to persist generated graphs.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::edge::Edge;
use crate::ids::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `g` in adjacency text format: one line per vertex with out-edges,
/// `src dst1 dst2 ...`. Weights are not preserved.
pub fn write_adjacency<W: Write>(g: &Graph, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for v in g.vertices() {
        if g.out_degree(v) == 0 {
            continue;
        }
        write!(w, "{}", v.0)?;
        for e in g.out_edges(v) {
            write!(w, " {}", e.dst.0)?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads the adjacency text format produced by [`write_adjacency`].
///
/// `n` must be at least one greater than the largest id mentioned; pass the
/// intended vertex count so isolated trailing vertices are preserved.
pub fn read_adjacency<R: Read>(n: usize, input: R) -> io::Result<Graph> {
    let r = BufReader::new(input);
    let mut b = GraphBuilder::new(n);
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let src: u32 = it
            .next()
            .unwrap()
            .parse()
            .map_err(|e| bad_line(lineno, e))?;
        for tok in it {
            let dst: u32 = tok.parse().map_err(|e| bad_line(lineno, e))?;
            b.add(VertexId(src), VertexId(dst));
        }
    }
    Ok(b.build())
}

/// Writes `g` as a weighted edge list: `src dst weight` per line.
pub fn write_edge_list<W: Write>(g: &Graph, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for (s, e) in g.edges() {
        writeln!(w, "{} {} {}", s.0, e.dst.0, e.weight)?;
    }
    w.flush()
}

/// Reads a weighted edge list (`src dst [weight]`; weight defaults to 1).
pub fn read_edge_list<R: Read>(n: usize, input: R) -> io::Result<Graph> {
    let r = BufReader::new(input);
    let mut b = GraphBuilder::new(n);
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let src: u32 = it
            .next()
            .unwrap()
            .parse()
            .map_err(|e| bad_line(lineno, e))?;
        let dst: u32 = it
            .next()
            .ok_or_else(|| bad_line(lineno, "missing dst"))?
            .parse()
            .map_err(|e| bad_line(lineno, e))?;
        let weight: f32 = match it.next() {
            Some(tok) => tok.parse().map_err(|e| bad_line(lineno, e))?,
            None => 1.0,
        };
        b.add_weighted(VertexId(src), VertexId(dst), weight);
    }
    Ok(b.build())
}

const BINARY_MAGIC: &[u8; 8] = b"HYGRAPH1";

/// Writes `g` in the compact binary CSR format.
pub fn write_binary<W: Write>(g: &Graph, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for v in g.vertices() {
        w.write_all(&(g.out_degree(v) as u32).to_le_bytes())?;
    }
    for (_, e) in g.edges() {
        w.write_all(&e.dst.0.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the binary CSR format produced by [`write_binary`].
pub fn read_binary<R: Read>(input: R) -> io::Result<Graph> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    let mut acc = 0u64;
    for _ in 0..n {
        let mut d = [0u8; 4];
        r.read_exact(&mut d)?;
        acc += u32::from_le_bytes(d) as u64;
        offsets.push(acc);
    }
    if acc != m as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "degree sum does not match edge count",
        ));
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let mut d = [0u8; 4];
        r.read_exact(&mut d)?;
        let dst = VertexId(u32::from_le_bytes(d));
        let mut wbuf = [0u8; 4];
        r.read_exact(&mut wbuf)?;
        edges.push(Edge::weighted(dst, f32::from_le_bytes(wbuf)));
    }
    Ok(Graph::from_parts(offsets, edges))
}

/// Saves a graph to `path` in binary format.
pub fn save<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads a graph from `path` in binary format.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    read_binary(std::fs::File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn bad_line<E: std::fmt::Display>(lineno: usize, e: E) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {}", lineno + 1, e),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn adjacency_roundtrip() {
        let g = gen::uniform(50, 300, 5);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let back = read_adjacency(50, buf.as_slice()).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        for v in g.vertices() {
            let a: Vec<_> = g.out_edges(v).iter().map(|e| e.dst).collect();
            let b: Vec<_> = back.out_edges(v).iter().map(|e| e.dst).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn edge_list_roundtrip_preserves_weights() {
        let g = gen::randomize_weights(&gen::cycle(8), 1.0, 4.0, 2);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(8, buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_default_weight() {
        let txt = "0 1\n1 2 3.5\n# comment\n\n";
        let g = read_edge_list(3, txt.as_bytes()).unwrap();
        assert_eq!(g.out_edges(VertexId(0))[0].weight, 1.0);
        assert_eq!(g.out_edges(VertexId(1))[0].weight, 3.5);
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::rmat(128, 1024, gen::RmatParams::default(), 9);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGIC________"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("hygraph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = gen::uniform(20, 60, 1);
        save(&g, &path).unwrap();
        assert_eq!(load(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_text_is_an_error() {
        assert!(read_edge_list(3, "0 x".as_bytes()).is_err());
        assert!(read_adjacency(3, "zero 1".as_bytes()).is_err());
        assert!(read_edge_list(3, "0".as_bytes()).is_err());
    }
}
