//! Directed, weighted edges.

use crate::ids::VertexId;

/// A directed edge to `dst` with a `weight`.
///
/// The source vertex is implicit: edges are stored in per-source adjacency
/// runs (CSR rows, or VE-BLOCK fragments). Weights are used by SSSP; other
/// algorithms in the paper ignore them.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct Edge {
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (SSSP distance contribution; `1.0` for unweighted use).
    pub weight: f32,
}

impl Edge {
    /// An unweighted edge (weight `1.0`).
    #[inline]
    pub fn to(dst: VertexId) -> Self {
        Edge { dst, weight: 1.0 }
    }

    /// A weighted edge.
    #[inline]
    pub fn weighted(dst: VertexId, weight: f32) -> Self {
        Edge { dst, weight }
    }

    /// On-disk footprint of one edge: 4-byte destination id + 4-byte weight.
    ///
    /// Used by the storage layer when accounting I/O bytes (the paper's
    /// `Se`, the average size of one edge, in the proof of Theorem 2).
    pub const DISK_BYTES: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Edge::to(VertexId(3));
        assert_eq!(e.dst, VertexId(3));
        assert_eq!(e.weight, 1.0);
        let w = Edge::weighted(VertexId(4), 2.5);
        assert_eq!(w.dst, VertexId(4));
        assert_eq!(w.weight, 2.5);
    }

    #[test]
    fn disk_bytes_matches_layout() {
        // dst (u32) + weight (f32)
        assert_eq!(Edge::DISK_BYTES, 8);
        assert_eq!(std::mem::size_of::<Edge>(), 8);
    }
}
