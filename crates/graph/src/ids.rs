//! Compact typed identifiers.
//!
//! Vertices, Vblocks and computational nodes ("workers" — the paper's
//! slaves) are all addressed by dense indices. Newtypes keep the three
//! spaces from being mixed up while compiling down to plain integers.

use std::fmt;

/// Identifier of a vertex. Dense in `0..n` for a graph with `n` vertices.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "vertex id overflows u32");
        VertexId(v as u32)
    }
}

/// Global identifier of a Vblock in the VE-BLOCK layout.
///
/// Block ids are dense in `0..V` where `V` is the total number of Vblocks
/// across the cluster; pull requests carry a `BlockId` instead of a set of
/// vertex ids, which is the essence of block-centric pulling (paper §4.2).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of a computational node (the paper's "slave"/task; one task
/// per node is assumed throughout, matching the paper's setup).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WorkerId(pub u16);

impl WorkerId {
    /// The worker id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for WorkerId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "worker id overflows u16");
        WorkerId(v as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42usize);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn block_id_ordering() {
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(BlockId(7).index(), 7);
        assert_eq!(BlockId(7).to_string(), "b7");
    }

    #[test]
    fn worker_id_display_and_index() {
        let w = WorkerId::from(3usize);
        assert_eq!(w.index(), 3);
        assert_eq!(w.to_string(), "T3");
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<BlockId>(), 4);
        assert_eq!(std::mem::size_of::<WorkerId>(), 2);
    }
}
