//! Range partitioning and Vblock layout (paper §4.1, §4.3).
//!
//! Vertices are range-partitioned across workers (the paper partitions "by
//! the range method" for Giraph, MOCgraph and HybridGraph), and each
//! worker's range is further split into fixed-size Vblocks. The number of
//! Vblocks per worker follows Eq. 5 (combinable messages, with pre-pull) or
//! Eq. 6 (concatenate-only messages).

use crate::csr::Graph;
use crate::ids::{BlockId, VertexId, WorkerId};
use std::ops::Range;

/// A contiguous range of vertices assigned to one worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `boundaries[w]..boundaries[w + 1]` is worker `w`'s vertex range.
    boundaries: Vec<u32>,
}

impl Partition {
    /// Evenly range-partitions `n` vertices over `workers` workers.
    ///
    /// Ranges differ in size by at most one vertex, matching the range
    /// partitioner the paper uses for Giraph/MOCgraph/HybridGraph.
    pub fn range(n: usize, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let n = n as u32;
        let w = workers as u32;
        let base = n / w;
        let extra = n % w;
        let mut boundaries = Vec::with_capacity(workers + 1);
        let mut at = 0u32;
        boundaries.push(0);
        for i in 0..w {
            at += base + u32::from(i < extra);
            boundaries.push(at);
        }
        Partition { boundaries }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Total number of vertices.
    pub fn num_vertices(&self) -> usize {
        *self.boundaries.last().unwrap() as usize
    }

    /// The vertex range of worker `w`.
    pub fn worker_range(&self, w: WorkerId) -> Range<u32> {
        self.boundaries[w.index()]..self.boundaries[w.index() + 1]
    }

    /// Number of vertices on worker `w` (the paper's `n_i`).
    pub fn worker_len(&self, w: WorkerId) -> usize {
        self.worker_range(w).len()
    }

    /// Which worker owns vertex `v`.
    pub fn worker_of(&self, v: VertexId) -> WorkerId {
        debug_assert!(v.index() < self.num_vertices(), "vertex out of range");
        // boundaries is sorted; partition_point returns the count of
        // boundaries <= v, so subtracting one gives the owning range.
        let idx = self.boundaries.partition_point(|&b| b <= v.0) - 1;
        WorkerId::from(idx)
    }

    /// Iterator over all worker ids.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> {
        (0..self.num_workers()).map(WorkerId::from)
    }
}

/// Metadata of one Vblock: its vertex range and owning worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VblockInfo {
    /// Vertices `range.start..range.end` belong to this block.
    pub range: Range<u32>,
    /// Worker storing this block (and its outgoing Eblocks).
    pub owner: WorkerId,
}

/// The global Vblock layout: every worker's range split into Vblocks.
///
/// Blocks are globally numbered `0..V` in vertex order, so a worker's
/// blocks form a contiguous run of `BlockId`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockLayout {
    blocks: Vec<VblockInfo>,
    /// `block_starts[b]` = first vertex of block `b`; sorted.
    block_starts: Vec<u32>,
    /// `worker_blocks[w]` = range of BlockIds owned by worker `w`.
    worker_blocks: Vec<Range<u32>>,
}

impl BlockLayout {
    /// Splits each worker's partition range into `blocks_per_worker[w]`
    /// equal-size Vblocks.
    ///
    /// # Panics
    /// Panics if any worker is given zero blocks while owning vertices.
    pub fn new(partition: &Partition, blocks_per_worker: &[usize]) -> Self {
        assert_eq!(
            blocks_per_worker.len(),
            partition.num_workers(),
            "one block count per worker"
        );
        let mut blocks = Vec::new();
        let mut worker_blocks = Vec::with_capacity(partition.num_workers());
        for w in partition.workers() {
            let range = partition.worker_range(w);
            let len = range.len() as u32;
            let want = blocks_per_worker[w.index()];
            assert!(
                want >= 1 || len == 0,
                "worker {w} owns vertices but was given zero blocks"
            );
            let count = (want as u32).min(len); // zero when the range is empty
            let first = blocks.len() as u32;
            if let Some(base) = len.checked_div(count) {
                let extra = len % count;
                let mut at = range.start;
                for i in 0..count {
                    let sz = base + u32::from(i < extra);
                    blocks.push(VblockInfo {
                        range: at..at + sz,
                        owner: w,
                    });
                    at += sz;
                }
            }
            worker_blocks.push(first..blocks.len() as u32);
        }
        let block_starts = blocks.iter().map(|b| b.range.start).collect();
        BlockLayout {
            blocks,
            block_starts,
            worker_blocks,
        }
    }

    /// Uniform layout: `per_worker` blocks on every worker.
    pub fn uniform(partition: &Partition, per_worker: usize) -> Self {
        BlockLayout::new(partition, &vec![per_worker; partition.num_workers()])
    }

    /// Total number of Vblocks (the paper's `V`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Info for block `b`.
    pub fn block(&self, b: BlockId) -> &VblockInfo {
        &self.blocks[b.index()]
    }

    /// The vertex range of block `b`.
    pub fn block_range(&self, b: BlockId) -> Range<u32> {
        self.blocks[b.index()].range.clone()
    }

    /// The worker owning block `b`.
    pub fn owner(&self, b: BlockId) -> WorkerId {
        self.blocks[b.index()].owner
    }

    /// The block containing vertex `v`.
    pub fn block_of(&self, v: VertexId) -> BlockId {
        debug_assert!(!self.blocks.is_empty());
        let idx = self.block_starts.partition_point(|&s| s <= v.0) - 1;
        debug_assert!(
            self.blocks[idx].range.contains(&v.0),
            "vertex outside layout"
        );
        BlockId(idx as u32)
    }

    /// The contiguous run of BlockIds owned by worker `w`.
    pub fn blocks_of_worker(&self, w: WorkerId) -> impl Iterator<Item = BlockId> {
        let r = self.worker_blocks[w.index()].clone();
        r.map(BlockId)
    }

    /// Number of blocks on worker `w` (the paper's `V_i`).
    pub fn worker_block_count(&self, w: WorkerId) -> usize {
        self.worker_blocks[w.index()].len()
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.num_blocks() as u32).map(BlockId)
    }
}

/// Eq. 5 — Vblock count for worker `i` when messages are combinable and
/// pre-pull is enabled: `V_i = (2 n_i + n_i T) / B_i`, at least 1.
///
/// `n_i` = vertices on the worker, `t` = number of workers, `b_i` = message
/// buffer capacity on the worker (in messages).
pub fn vblocks_eq5(n_i: usize, t: usize, b_i: usize) -> usize {
    assert!(b_i > 0, "message buffer must be positive");
    let v = (2 * n_i + n_i * t).div_ceil(b_i);
    v.max(1)
}

/// Eq. 6 — Vblock count for worker `i` when messages only concatenate:
/// `V_i = (Σ_{u ∈ V_i} in-degree(u)) / B_i`, at least 1.
pub fn vblocks_eq6(sum_in_degree: u64, b_i: usize) -> usize {
    assert!(b_i > 0, "message buffer must be positive");
    let v = (sum_in_degree as usize).div_ceil(b_i);
    v.max(1)
}

/// Computes per-worker Vblock counts for a graph under a partition, using
/// Eq. 5 when `combinable`, otherwise Eq. 6.
pub fn vblock_counts(
    graph: &Graph,
    partition: &Partition,
    buffer_messages: usize,
    combinable: bool,
) -> Vec<usize> {
    let t = partition.num_workers();
    if combinable {
        partition
            .workers()
            .map(|w| vblocks_eq5(partition.worker_len(w), t, buffer_messages))
            .collect()
    } else {
        let ind = graph.in_degrees();
        partition
            .workers()
            .map(|w| {
                let sum: u64 = partition
                    .worker_range(w)
                    .map(|v| ind[v as usize] as u64)
                    .sum();
                vblocks_eq6(sum, buffer_messages)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn even_ranges() {
        let p = Partition::range(10, 3);
        assert_eq!(p.worker_range(WorkerId(0)), 0..4);
        assert_eq!(p.worker_range(WorkerId(1)), 4..7);
        assert_eq!(p.worker_range(WorkerId(2)), 7..10);
        assert_eq!(p.num_vertices(), 10);
    }

    #[test]
    fn worker_of_matches_ranges() {
        let p = Partition::range(10, 3);
        for v in 0..10u32 {
            let w = p.worker_of(VertexId(v));
            assert!(p.worker_range(w).contains(&v));
        }
    }

    #[test]
    fn more_workers_than_vertices() {
        let p = Partition::range(2, 5);
        assert_eq!(p.num_workers(), 5);
        assert_eq!(p.worker_len(WorkerId(0)), 1);
        assert_eq!(p.worker_len(WorkerId(1)), 1);
        assert_eq!(p.worker_len(WorkerId(4)), 0);
    }

    #[test]
    fn layout_splits_evenly() {
        let p = Partition::range(12, 2);
        let l = BlockLayout::uniform(&p, 3);
        assert_eq!(l.num_blocks(), 6);
        assert_eq!(l.block_range(BlockId(0)), 0..2);
        assert_eq!(l.owner(BlockId(0)), WorkerId(0));
        assert_eq!(l.owner(BlockId(3)), WorkerId(1));
        assert_eq!(l.block_range(BlockId(5)), 10..12);
    }

    #[test]
    fn block_of_is_consistent() {
        let p = Partition::range(100, 4);
        let l = BlockLayout::uniform(&p, 5);
        for v in 0..100u32 {
            let b = l.block_of(VertexId(v));
            assert!(l.block_range(b).contains(&v));
            assert_eq!(l.owner(b), p.worker_of(VertexId(v)));
        }
    }

    #[test]
    fn blocks_clamped_to_vertices() {
        let p = Partition::range(3, 1);
        let l = BlockLayout::uniform(&p, 10);
        assert_eq!(l.num_blocks(), 3);
        for b in l.block_ids() {
            assert_eq!(l.block_range(b).len(), 1);
        }
    }

    #[test]
    fn worker_block_runs() {
        let p = Partition::range(20, 2);
        let l = BlockLayout::uniform(&p, 4);
        let w0: Vec<_> = l.blocks_of_worker(WorkerId(0)).collect();
        assert_eq!(w0, vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(l.worker_block_count(WorkerId(1)), 4);
    }

    #[test]
    fn eq5_eq6_formulas() {
        // n_i = 1000, T = 5, B_i = 500 -> (2000 + 5000)/500 = 14
        assert_eq!(vblocks_eq5(1000, 5, 500), 14);
        // rounds up
        assert_eq!(vblocks_eq5(1000, 5, 499), 15);
        // floor of at least one block
        assert_eq!(vblocks_eq5(1, 1, 1_000_000), 1);
        assert_eq!(vblocks_eq6(10_000, 2_500), 4);
        assert_eq!(vblocks_eq6(0, 100), 1);
    }

    #[test]
    fn vblock_counts_combinable_vs_concat() {
        let g = gen::uniform(200, 2000, 3);
        let p = Partition::range(200, 4);
        let comb = vblock_counts(&g, &p, 100, true);
        let conc = vblock_counts(&g, &p, 100, false);
        assert_eq!(comb.len(), 4);
        // Eq 5: (2*50 + 50*4)/100 = 3 per worker
        assert!(comb.iter().all(|&v| v == 3));
        // Eq 6 depends on in-degree mass: total in-degree = 2000 across 4
        // workers at buffer 100 -> ~5 per worker (not exact; just positive)
        assert!(conc.iter().all(|&v| v >= 1));
        // Total in-degree is 2000, buffer 100 -> ~20 blocks overall, with
        // per-worker ceil rounding adding at most one block per worker.
        let total: usize = conc.iter().sum();
        assert!((20..=24).contains(&total), "total blocks {total}");
    }
}
