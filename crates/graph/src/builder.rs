//! Edge-list accumulation into CSR graphs.

use crate::csr::Graph;
use crate::edge::Edge;
use crate::ids::VertexId;

/// Accumulates directed edges and finalizes them into a [`Graph`].
///
/// Self-loops and duplicate edges can optionally be removed at build time;
/// both default to being kept so generators have full control.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, Edge)>,
    drop_self_loops: bool,
    dedup: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
            drop_self_loops: false,
            dedup: false,
        }
    }

    /// Pre-allocates room for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Remove self-loops when building.
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Remove duplicate `(src, dst)` pairs when building (first weight wins).
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Number of edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds an unweighted directed edge.
    pub fn add(&mut self, src: VertexId, dst: VertexId) {
        self.add_weighted(src, dst, 1.0);
    }

    /// Adds a weighted directed edge.
    pub fn add_weighted(&mut self, src: VertexId, dst: VertexId, weight: f32) {
        debug_assert!(src.index() < self.num_vertices, "src out of range");
        debug_assert!(dst.index() < self.num_vertices, "dst out of range");
        self.edges.push((src, Edge::weighted(dst, weight)));
    }

    /// Finalizes into a CSR [`Graph`]; edges are grouped by source and each
    /// row sorted by destination, so the result is deterministic regardless
    /// of insertion order.
    pub fn build(mut self) -> Graph {
        if self.drop_self_loops {
            self.edges.retain(|(s, e)| *s != e.dst);
        }
        self.edges.sort_by_key(|(s, e)| (*s, e.dst));
        if self.dedup {
            self.edges.dedup_by_key(|(s, e)| (*s, e.dst));
        }
        let n = self.num_vertices;
        let mut offsets = vec![0u64; n + 1];
        for (s, _) in &self.edges {
            offsets[s.index() + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let edges = self.edges.into_iter().map(|(_, e)| e).collect();
        Graph::from_parts(offsets, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_rows() {
        let mut b = GraphBuilder::new(3);
        b.add(VertexId(0), VertexId(2));
        b.add(VertexId(0), VertexId(1));
        b.add(VertexId(2), VertexId(0));
        let g = b.build();
        let row0: Vec<_> = g.out_edges(VertexId(0)).iter().map(|e| e.dst.0).collect();
        assert_eq!(row0, vec![1, 2]);
        assert_eq!(g.out_degree(VertexId(1)), 0);
        assert_eq!(g.out_degree(VertexId(2)), 1);
    }

    #[test]
    fn self_loops_dropped_on_request() {
        let mut b = GraphBuilder::new(2).drop_self_loops();
        b.add(VertexId(0), VertexId(0));
        b.add(VertexId(0), VertexId(1));
        assert_eq!(b.len(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dedup_keeps_first_weight() {
        let mut b = GraphBuilder::new(2).dedup();
        b.add_weighted(VertexId(0), VertexId(1), 3.0);
        b.add_weighted(VertexId(0), VertexId(1), 9.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_edges(VertexId(0))[0].weight, 3.0);
    }

    #[test]
    fn empty_builder() {
        let b = GraphBuilder::new(5);
        assert!(b.is_empty());
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn insertion_order_irrelevant() {
        let mut a = GraphBuilder::new(4);
        let mut b = GraphBuilder::new(4);
        let pairs = [(0u32, 1u32), (2, 3), (1, 2), (0, 3)];
        for &(s, d) in &pairs {
            a.add(VertexId(s), VertexId(d));
        }
        for &(s, d) in pairs.iter().rev() {
            b.add(VertexId(s), VertexId(d));
        }
        assert_eq!(a.build(), b.build());
    }
}
