//! Small deterministic PRNG used across the workspace.
//!
//! The workspace builds hermetically from the standard library, so the
//! generators (and the engine's fault-injection planner) need a local
//! source of seeded pseudo-randomness instead of the `rand` crate. This is
//! Steele et al.'s *splitmix64* — the generator Java's `SplittableRandom`
//! and the xoshiro seeding routines use — which passes BigCrush and is
//! more than adequate for synthetic-graph generation and test-case
//! shuffling. It is explicitly **not** cryptographic.
//!
//! Determinism is load-bearing: the same seed must produce the same
//! stream on every platform and in every session, because graph
//! generation, property tests, and [`FaultPlan`]s in the engine all key
//! their reproducibility on it.
//!
//! [`FaultPlan`]: https://docs.rs/hybridgraph-core

/// A seeded splitmix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u32` in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below_u32(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        // Modulo over a full 64-bit draw: bias < 2^-32, irrelevant for
        // synthetic graphs and far below what any test asserts on.
        (self.next_u64() % bound as u64) as u32
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widen to 128 bits so the modulo bias stays below 2^-64.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below_u64((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive on both ends).
    #[inline]
    pub fn range_i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below_u64(span) as i64
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_f64() as f32) * (hi - lo)
    }

    /// Uniform `bool`.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_vector() {
        // Reference values of splitmix64 with seed 0 (Vigna's test vector).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below_u32(10) < 10);
            let v = r.range_i64_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
            let f = r.range_f32(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            let u = r.range_usize(5, 8);
            assert!((5..8).contains(&u));
        }
    }

    #[test]
    fn below_u32_covers_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below_u32(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
