//! Scaled stand-ins for the paper's six real-world graphs (Table 4).
//!
//! | paper graph | vertices | edges  | avg degree | type            |
//! |-------------|----------|--------|------------|-----------------|
//! | livej       | 4.8 M    | 68 M   | 14.2       | social network  |
//! | wiki        | 5.7 M    | 130 M  | 22.8       | web graph       |
//! | orkut       | 3.1 M    | 234 M  | 75.5       | social network  |
//! | twi         | 41.7 M   | 1470 M | 35.3       | social network  |
//! | fri         | 65.6 M   | 1810 M | 27.5       | social network  |
//! | uk          | 105.9 M  | 3740 M | 35.6       | web graph       |
//!
//! The stand-ins shrink vertex/edge counts by a configurable scale factor
//! while preserving average degree, degree skew (RMAT parameters per graph
//! family) and, for `wiki`, the long diameter responsible for SSSP's long
//! convergent stage.

use crate::csr::Graph;
use crate::gen::{self, RmatParams};

/// Which paper dataset a spec stands in for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Dataset {
    /// LiveJournal social network (`livej`).
    LiveJ,
    /// Wikipedia link graph (`wiki`), long diameter.
    Wiki,
    /// Orkut social network (`orkut`), dense.
    Orkut,
    /// Twitter follower graph (`twi`), heavy skew.
    Twi,
    /// Friendster (`fri`).
    Fri,
    /// uk-2007 web crawl (`uk`).
    Uk,
}

impl Dataset {
    /// All six datasets in the order the paper's figures list them.
    pub const ALL: [Dataset; 6] = [
        Dataset::LiveJ,
        Dataset::Wiki,
        Dataset::Orkut,
        Dataset::Twi,
        Dataset::Fri,
        Dataset::Uk,
    ];

    /// The "small" graphs run on 5 nodes in the paper.
    pub const SMALL: [Dataset; 3] = [Dataset::LiveJ, Dataset::Wiki, Dataset::Orkut];

    /// The "large" graphs run on 30 nodes in the paper.
    pub const LARGE: [Dataset; 3] = [Dataset::Twi, Dataset::Fri, Dataset::Uk];

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::LiveJ => "livej",
            Dataset::Wiki => "wiki",
            Dataset::Orkut => "orkut",
            Dataset::Twi => "twi",
            Dataset::Fri => "fri",
            Dataset::Uk => "uk",
        }
    }

    /// The generation spec for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::LiveJ => DatasetSpec {
                dataset: self,
                paper_vertices: 4_800_000,
                paper_edges: 68_000_000,
                rmat: RmatParams::default(),
                tail_fraction: 0.0,
                locality: 0.75,
                seed: 0x11,
            },
            Dataset::Wiki => DatasetSpec {
                dataset: self,
                paper_vertices: 5_700_000,
                paper_edges: 130_000_000,
                rmat: RmatParams::web(),
                // The paper's wiki graph has a large diameter: SSSP needs
                // 284 supersteps. A chain tail of ~2% of vertices gives the
                // scaled stand-in the same long convergent stage.
                tail_fraction: 0.02,
                locality: 0.85,
                seed: 0x22,
            },
            Dataset::Orkut => DatasetSpec {
                dataset: self,
                paper_vertices: 3_100_000,
                paper_edges: 234_000_000,
                rmat: RmatParams::default(),
                tail_fraction: 0.0,
                locality: 0.75,
                seed: 0x33,
            },
            Dataset::Twi => DatasetSpec {
                dataset: self,
                paper_vertices: 41_700_000,
                paper_edges: 1_470_000_000,
                rmat: RmatParams::heavy_skew(),
                tail_fraction: 0.0,
                locality: 0.7,
                seed: 0x44,
            },
            Dataset::Fri => DatasetSpec {
                dataset: self,
                paper_vertices: 65_600_000,
                paper_edges: 1_810_000_000,
                rmat: RmatParams::default(),
                tail_fraction: 0.0,
                locality: 0.75,
                seed: 0x55,
            },
            Dataset::Uk => DatasetSpec {
                dataset: self,
                paper_vertices: 105_900_000,
                paper_edges: 3_740_000_000,
                rmat: RmatParams::web(),
                tail_fraction: 0.005,
                locality: 0.85,
                seed: 0x66,
            },
        }
    }

    /// Builds the stand-in at `1/denominator` of the paper's scale.
    ///
    /// `denominator = 1000` gives graphs from ~5 K to ~106 K vertices and
    /// 68 K to 3.7 M edges — the default used by the figure harness.
    pub fn build_scaled(self, denominator: usize) -> Graph {
        self.spec().build(denominator)
    }

    /// Convenience: the default 1/1000-scale build.
    pub fn build_default(self) -> Graph {
        self.build_scaled(1000)
    }
}

/// Generation parameters for one dataset stand-in.
#[derive(Copy, Clone, Debug)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Vertex count of the real graph.
    pub paper_vertices: u64,
    /// Edge count of the real graph.
    pub paper_edges: u64,
    /// Skew parameters for the RMAT generator.
    pub rmat: RmatParams,
    /// Fraction of vertices placed in a diameter-extending chain tail.
    pub tail_fraction: f64,
    /// Fraction of edges rewired to nearby ids (crawl-order locality;
    /// keeps VE-BLOCK fragment counts realistic — see `gen::localize`).
    pub locality: f64,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

impl DatasetSpec {
    /// Average degree of the real graph.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_vertices as f64
    }

    /// Builds the graph at `1/denominator` scale.
    pub fn build(&self, denominator: usize) -> Graph {
        assert!(denominator >= 1);
        let n = ((self.paper_vertices as usize) / denominator).max(16);
        let m = ((self.paper_edges as usize) / denominator).max(64);
        let tail = (n as f64 * self.tail_fraction) as usize;
        let core_n = n - tail;
        let core = gen::rmat(core_n, m.saturating_sub(tail), self.rmat, self.seed);
        let core = if self.locality > 0.0 {
            gen::localize(
                &core,
                self.locality,
                (core_n / 512).max(8),
                self.seed ^ 0x10c,
            )
        } else {
            core
        };
        let g = if tail > 0 {
            gen::with_chain_tail(&core, tail, self.seed ^ 0xbeef)
        } else {
            core
        };
        gen::randomize_weights(&g, 1.0, 10.0, self.seed ^ 0xfeed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names() {
        assert_eq!(Dataset::LiveJ.name(), "livej");
        assert_eq!(Dataset::Uk.name(), "uk");
        assert_eq!(Dataset::ALL.len(), 6);
    }

    #[test]
    fn scaled_degree_tracks_paper() {
        for d in Dataset::SMALL {
            let spec = d.spec();
            let g = d.build_scaled(1000);
            let got = g.avg_degree();
            let want = spec.paper_avg_degree();
            assert!(
                (got - want).abs() / want < 0.15,
                "{}: avg degree {got:.1} vs paper {want:.1}",
                d.name()
            );
        }
    }

    #[test]
    fn wiki_has_long_tail() {
        let g = Dataset::Wiki.build_scaled(1000);
        let spec = Dataset::Wiki.spec();
        let n = g.num_vertices();
        // The last tail vertex exists and is a sink.
        assert!(spec.tail_fraction > 0.0);
        assert_eq!(g.out_degree(crate::ids::VertexId(n as u32 - 1)), 0);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::Orkut.build_scaled(2000);
        let b = Dataset::Orkut.build_scaled(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn twi_is_most_skewed_small_scale() {
        let twi = Dataset::Twi.build_scaled(10_000);
        // Heavy skew should be visible even at tiny scale.
        assert!(twi.max_degree() as f64 > 8.0 * twi.avg_degree());
    }

    #[test]
    fn extreme_scale_clamps() {
        let g = Dataset::LiveJ.build_scaled(1_000_000_000);
        assert!(g.num_vertices() >= 16);
        assert!(g.num_edges() >= 64);
    }
}
