//! Scaled stand-ins for the paper's six real-world graphs (Table 4).
//!
//! | paper graph | vertices | edges  | avg degree | type            |
//! |-------------|----------|--------|------------|-----------------|
//! | livej       | 4.8 M    | 68 M   | 14.2       | social network  |
//! | wiki        | 5.7 M    | 130 M  | 22.8       | web graph       |
//! | orkut       | 3.1 M    | 234 M  | 75.5       | social network  |
//! | twi         | 41.7 M   | 1470 M | 35.3       | social network  |
//! | fri         | 65.6 M   | 1810 M | 27.5       | social network  |
//! | uk          | 105.9 M  | 3740 M | 35.6       | web graph       |
//!
//! The stand-ins shrink vertex/edge counts by a configurable scale factor
//! while preserving average degree, degree skew (RMAT parameters per graph
//! family) and, for `wiki`, the long diameter responsible for SSSP's long
//! convergent stage.

use crate::csr::Graph;
use crate::gen::{self, RmatParams};
use crate::rng::SplitMix64;

/// Which paper dataset a spec stands in for.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Dataset {
    /// LiveJournal social network (`livej`).
    LiveJ,
    /// Wikipedia link graph (`wiki`), long diameter.
    Wiki,
    /// Orkut social network (`orkut`), dense.
    Orkut,
    /// Twitter follower graph (`twi`), heavy skew.
    Twi,
    /// Friendster (`fri`).
    Fri,
    /// uk-2007 web crawl (`uk`).
    Uk,
}

impl Dataset {
    /// All six datasets in the order the paper's figures list them.
    pub const ALL: [Dataset; 6] = [
        Dataset::LiveJ,
        Dataset::Wiki,
        Dataset::Orkut,
        Dataset::Twi,
        Dataset::Fri,
        Dataset::Uk,
    ];

    /// The "small" graphs run on 5 nodes in the paper.
    pub const SMALL: [Dataset; 3] = [Dataset::LiveJ, Dataset::Wiki, Dataset::Orkut];

    /// The "large" graphs run on 30 nodes in the paper.
    pub const LARGE: [Dataset; 3] = [Dataset::Twi, Dataset::Fri, Dataset::Uk];

    /// Short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::LiveJ => "livej",
            Dataset::Wiki => "wiki",
            Dataset::Orkut => "orkut",
            Dataset::Twi => "twi",
            Dataset::Fri => "fri",
            Dataset::Uk => "uk",
        }
    }

    /// The generation spec for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::LiveJ => DatasetSpec {
                dataset: self,
                paper_vertices: 4_800_000,
                paper_edges: 68_000_000,
                rmat: RmatParams::default(),
                tail_fraction: 0.0,
                locality: 0.75,
                seed: 0x11,
            },
            Dataset::Wiki => DatasetSpec {
                dataset: self,
                paper_vertices: 5_700_000,
                paper_edges: 130_000_000,
                rmat: RmatParams::web(),
                // The paper's wiki graph has a large diameter: SSSP needs
                // 284 supersteps. A chain tail of ~2% of vertices gives the
                // scaled stand-in the same long convergent stage.
                tail_fraction: 0.02,
                locality: 0.85,
                seed: 0x22,
            },
            Dataset::Orkut => DatasetSpec {
                dataset: self,
                paper_vertices: 3_100_000,
                paper_edges: 234_000_000,
                rmat: RmatParams::default(),
                tail_fraction: 0.0,
                locality: 0.75,
                seed: 0x33,
            },
            Dataset::Twi => DatasetSpec {
                dataset: self,
                paper_vertices: 41_700_000,
                paper_edges: 1_470_000_000,
                rmat: RmatParams::heavy_skew(),
                tail_fraction: 0.0,
                locality: 0.7,
                seed: 0x44,
            },
            Dataset::Fri => DatasetSpec {
                dataset: self,
                paper_vertices: 65_600_000,
                paper_edges: 1_810_000_000,
                rmat: RmatParams::default(),
                tail_fraction: 0.0,
                locality: 0.75,
                seed: 0x55,
            },
            Dataset::Uk => DatasetSpec {
                dataset: self,
                paper_vertices: 105_900_000,
                paper_edges: 3_740_000_000,
                rmat: RmatParams::web(),
                tail_fraction: 0.005,
                locality: 0.85,
                seed: 0x66,
            },
        }
    }

    /// Builds the stand-in at `1/denominator` of the paper's scale.
    ///
    /// `denominator = 1000` gives graphs from ~5 K to ~106 K vertices and
    /// 68 K to 3.7 M edges — the default used by the figure harness.
    pub fn build_scaled(self, denominator: usize) -> Graph {
        self.spec().build(denominator)
    }

    /// Convenience: the default 1/1000-scale build.
    pub fn build_default(self) -> Graph {
        self.build_scaled(1000)
    }
}

/// Generation parameters for one dataset stand-in.
#[derive(Copy, Clone, Debug)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Vertex count of the real graph.
    pub paper_vertices: u64,
    /// Edge count of the real graph.
    pub paper_edges: u64,
    /// Skew parameters for the RMAT generator.
    pub rmat: RmatParams,
    /// Fraction of vertices placed in a diameter-extending chain tail.
    pub tail_fraction: f64,
    /// Fraction of edges rewired to nearby ids (crawl-order locality;
    /// keeps VE-BLOCK fragment counts realistic — see `gen::localize`).
    pub locality: f64,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

impl DatasetSpec {
    /// Average degree of the real graph.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_edges as f64 / self.paper_vertices as f64
    }

    /// Builds the graph at `1/denominator` scale.
    pub fn build(&self, denominator: usize) -> Graph {
        assert!(denominator >= 1);
        let n = ((self.paper_vertices as usize) / denominator).max(16);
        let m = ((self.paper_edges as usize) / denominator).max(64);
        let tail = (n as f64 * self.tail_fraction) as usize;
        let core_n = n - tail;
        let core = gen::rmat(core_n, m.saturating_sub(tail), self.rmat, self.seed);
        let core = if self.locality > 0.0 {
            gen::localize(
                &core,
                self.locality,
                (core_n / 512).max(8),
                self.seed ^ 0x10c,
            )
        } else {
            core
        };
        let g = if tail > 0 {
            gen::with_chain_tail(&core, tail, self.seed ^ 0xbeef)
        } else {
            core
        };
        gen::randomize_weights(&g, 1.0, 10.0, self.seed ^ 0xfeed)
    }
}

/// A catalog entry generated *streaming*: each vertex's successor list
/// is a pure function of `(spec, vertex)`, so a billion-edge store can
/// be built block-at-a-time — one source block of adjacency in memory at
/// a time — without ever materializing the edge list the way
/// [`DatasetSpec::build`] does.
///
/// The twitter-scale entry ([`StreamSpec::twitter`]) is the scale path
/// for ROADMAP item 2: ~2^25 vertices at average degree 34 is ≥1 B
/// edges, far past what an in-memory [`Graph`] can hold, yet a
/// `StreamSpec` walk plus the storage crate's streaming Eblock writer
/// keeps the resident set at one source block plus the Elias-Fano
/// directory.
///
/// Successors are drawn inside a window around a per-vertex base, which
/// gives the gap distribution (small, clustered) that real crawl-ordered
/// social graphs show and that the BV/gap codecs exist to exploit. A
/// ~1/1024 fraction of vertices are hubs with 16× the degree and a wider
/// window, standing in for twitter's heavy skew.
#[derive(Copy, Clone, Debug)]
pub struct StreamSpec {
    /// Catalog name of the entry.
    pub name: &'static str,
    /// Vertex count (ids are `0..vertices`, must fit `u32`).
    pub vertices: u64,
    /// Target average out-degree (actual is slightly lower after dedup).
    pub avg_degree: u32,
    /// Generation seed.
    pub seed: u64,
}

impl StreamSpec {
    /// The twitter-scale entry: 2^25 vertices × avg degree 34 ≈ 1.1 B
    /// edges (the paper's `twi` is 41.7 M × 35.3).
    pub fn twitter() -> StreamSpec {
        StreamSpec {
            name: "twi-stream",
            vertices: 1 << 25,
            avg_degree: 34,
            seed: 0x0771_77e8,
        }
    }

    /// The entry at `1/denominator` of its vertex count (degree and
    /// structure preserved), floored so tests keep a multi-block grid.
    pub fn scaled(&self, denominator: usize) -> StreamSpec {
        StreamSpec {
            vertices: (self.vertices / denominator.max(1) as u64).max(4096),
            ..*self
        }
    }

    /// Approximate total edge count (draws mean `avg_degree`, hubs add
    /// ~1.5%, dedup removes ~6% at the default window).
    pub fn expected_edges(&self) -> u64 {
        self.vertices * u64::from(self.avg_degree)
    }

    /// Source-block size for the Eblock grid: 8192 at full scale,
    /// shrinking with the entry so scaled-down runs still exercise a
    /// many-block grid.
    pub fn block_size(&self) -> u32 {
        (self.vertices / 64).clamp(64, 8192) as u32
    }

    /// Number of vertex blocks (`ceil(vertices / block_size)`).
    pub fn nblocks(&self) -> u32 {
        let bs = u64::from(self.block_size());
        self.vertices.div_ceil(bs) as u32
    }

    /// Writes `v`'s successors into `out` (cleared first): strictly
    /// ascending, distinct, in `0..vertices`. Deterministic per
    /// `(seed, v)` and independent of call order — the streaming
    /// contract.
    pub fn out_dsts(&self, v: u64, out: &mut Vec<u32>) {
        out.clear();
        debug_assert!(v < self.vertices && self.vertices <= u64::from(u32::MAX));
        let mut r = SplitMix64::new(self.seed ^ (v + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut draws = r.below_u32(2 * self.avg_degree + 1);
        let mut window = (u64::from(self.avg_degree) * 8).clamp(1, self.vertices);
        if r.below_u32(1024) == 0 {
            // Hub: 16× the degree over a 16× window.
            draws = draws.saturating_mul(16).min(4096);
            window = (window * 16).min(self.vertices);
        }
        if draws == 0 {
            return;
        }
        let base = r.below_u64(self.vertices - window + 1);
        for _ in 0..draws {
            out.push((base + r.below_u64(window)) as u32);
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names() {
        assert_eq!(Dataset::LiveJ.name(), "livej");
        assert_eq!(Dataset::Uk.name(), "uk");
        assert_eq!(Dataset::ALL.len(), 6);
    }

    #[test]
    fn scaled_degree_tracks_paper() {
        for d in Dataset::SMALL {
            let spec = d.spec();
            let g = d.build_scaled(1000);
            let got = g.avg_degree();
            let want = spec.paper_avg_degree();
            assert!(
                (got - want).abs() / want < 0.15,
                "{}: avg degree {got:.1} vs paper {want:.1}",
                d.name()
            );
        }
    }

    #[test]
    fn wiki_has_long_tail() {
        let g = Dataset::Wiki.build_scaled(1000);
        let spec = Dataset::Wiki.spec();
        let n = g.num_vertices();
        // The last tail vertex exists and is a sink.
        assert!(spec.tail_fraction > 0.0);
        assert_eq!(g.out_degree(crate::ids::VertexId(n as u32 - 1)), 0);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::Orkut.build_scaled(2000);
        let b = Dataset::Orkut.build_scaled(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn twi_is_most_skewed_small_scale() {
        let twi = Dataset::Twi.build_scaled(10_000);
        // Heavy skew should be visible even at tiny scale.
        assert!(twi.max_degree() as f64 > 8.0 * twi.avg_degree());
    }

    #[test]
    fn extreme_scale_clamps() {
        let g = Dataset::LiveJ.build_scaled(1_000_000_000);
        assert!(g.num_vertices() >= 16);
        assert!(g.num_edges() >= 64);
    }

    #[test]
    fn stream_twitter_is_billion_scale() {
        let s = StreamSpec::twitter();
        assert!(s.expected_edges() >= 1_000_000_000);
        assert_eq!(s.block_size(), 8192);
        assert_eq!(s.nblocks(), 4096);
    }

    #[test]
    fn stream_lists_are_sorted_distinct_in_range_and_deterministic() {
        let s = StreamSpec::twitter().scaled(2000);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for v in (0..s.vertices).step_by(97) {
            s.out_dsts(v, &mut a);
            s.out_dsts(v, &mut b);
            assert_eq!(a, b, "v={v} not deterministic");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "v={v} not ascending");
            assert!(a.iter().all(|&d| u64::from(d) < s.vertices));
        }
    }

    #[test]
    fn stream_degree_tracks_target_with_hub_skew() {
        let s = StreamSpec::twitter().scaled(1000);
        let mut buf = Vec::new();
        let mut total = 0u64;
        let mut max_deg = 0usize;
        for v in 0..s.vertices {
            s.out_dsts(v, &mut buf);
            total += buf.len() as u64;
            max_deg = max_deg.max(buf.len());
        }
        let avg = total as f64 / s.vertices as f64;
        let target = f64::from(s.avg_degree);
        assert!(
            (avg - target).abs() / target < 0.15,
            "avg degree {avg:.1} vs target {target}"
        );
        // Hubs exist: someone has several times the average degree.
        assert!(max_deg as f64 > 6.0 * avg, "max {max_deg} avg {avg:.1}");
    }

    #[test]
    fn stream_scaled_keeps_structure() {
        let s = StreamSpec::twitter().scaled(2000);
        assert_eq!(s.avg_degree, StreamSpec::twitter().avg_degree);
        assert!(s.nblocks() >= 8, "scaled grid too coarse: {}", s.nblocks());
        assert!(s.vertices >= 4096);
    }
}
