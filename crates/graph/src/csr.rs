//! Immutable compressed-sparse-row graph.
//!
//! The paper models a graph as a directed `G = (V, E)` with adjacency lists
//! of out-edges per source vertex (§3). [`Graph`] is the canonical in-memory
//! form every other component is built from: the push-side adjacency store,
//! the VE-BLOCK layout, and the reverse graph needed by the per-vertex pull
//! baseline are all derived from it.

use crate::edge::Edge;
use crate::ids::VertexId;

/// An immutable directed graph in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `edges` for vertex `v`. Length `n + 1`.
    offsets: Vec<u64>,
    /// All out-edges, grouped by source, each group sorted by destination.
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds a graph from raw CSR parts.
    ///
    /// # Panics
    /// Panics if the offsets are not monotonically non-decreasing, do not
    /// start at 0, or do not end at `edges.len()`.
    pub fn from_parts(offsets: Vec<u64>, edges: Vec<Edge>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            edges.len() as u64,
            "offsets must end at edges.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        Graph { offsets, edges }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Out-edges of `v` as a slice.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[Edge] {
        let i = v.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over `(src, edge)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, Edge)> + '_ {
        self.vertices()
            .flat_map(move |v| self.out_edges(v).iter().map(move |&e| (v, e)))
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.out_degree(VertexId(v as u32)))
            .max()
            .unwrap_or(0)
    }

    /// In-degree of every vertex (one `O(|E|)` pass).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut ind = vec![0u32; self.num_vertices()];
        for e in &self.edges {
            ind[e.dst.index()] += 1;
        }
        ind
    }

    /// The reverse graph: an edge `(u, v, w)` becomes `(v, u, w)`.
    ///
    /// The per-vertex pull baseline gathers along in-edges, so it needs the
    /// transpose; push, b-pull and hybrid only ever use out-edges.
    pub fn reverse(&self) -> Graph {
        let n = self.num_vertices();
        let mut counts = vec![0u64; n + 1];
        for e in &self.edges {
            counts[e.dst.index() + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut redges = vec![Edge::default(); self.edges.len()];
        for (src, e) in self.edges() {
            let slot = cursor[e.dst.index()];
            redges[slot as usize] = Edge::weighted(src, e.weight);
            cursor[e.dst.index()] += 1;
        }
        // Sort each row by destination for determinism.
        let mut g = Graph {
            offsets,
            edges: redges,
        };
        g.sort_rows();
        g
    }

    fn sort_rows(&mut self) {
        for v in 0..self.num_vertices() {
            let (s, e) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            self.edges[s..e].sort_by_key(|e| e.dst);
        }
    }

    /// Disk footprint of the adjacency representation in bytes:
    /// per vertex `(id, value, |Vo|)` plus `|Vo|` edges (paper §4.1 layout).
    pub fn adjacency_disk_bytes(&self, value_bytes: u64) -> u64 {
        let per_vertex = 4 + value_bytes + 4;
        self.num_vertices() as u64 * per_vertex + self.num_edges() as u64 * Edge::DISK_BYTES
    }

    /// Out-degree histogram: `hist[d]` = number of vertices with out-degree
    /// `d` (capped at `max_bucket`, the last bucket collects the tail).
    pub fn degree_histogram(&self, max_bucket: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_bucket + 1];
        for v in self.vertices() {
            let d = self.out_degree(v).min(max_bucket);
            hist[d] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_parts(
            vec![0, 2, 3, 4, 4],
            vec![
                Edge::to(VertexId(1)),
                Edge::to(VertexId(2)),
                Edge::to(VertexId(3)),
                Edge::to(VertexId(3)),
            ],
        )
    }

    #[test]
    fn basic_queries() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.out_degree(VertexId(3)), 0);
        assert_eq!(g.out_edges(VertexId(1)), &[Edge::to(VertexId(3))]);
        assert_eq!(g.avg_degree(), 1.0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn in_degrees_count_incoming() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn reverse_transposes() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), 4);
        assert_eq!(r.out_degree(VertexId(3)), 2);
        let back: Vec<_> = r.out_edges(VertexId(3)).iter().map(|e| e.dst).collect();
        assert_eq!(back, vec![VertexId(1), VertexId(2)]);
        // Double reverse is identity (rows re-sorted).
        assert_eq!(r.reverse().num_edges(), g.num_edges());
        assert_eq!(r.reverse().in_degrees(), g.in_degrees());
    }

    #[test]
    fn reverse_preserves_weights() {
        let g = Graph::from_parts(vec![0, 1, 1], vec![Edge::weighted(VertexId(1), 2.5)]);
        let r = g.reverse();
        assert_eq!(
            r.out_edges(VertexId(1)),
            &[Edge::weighted(VertexId(0), 2.5)]
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.reverse().num_vertices(), 3);
    }

    #[test]
    fn edge_iterator_visits_all() {
        let g = diamond();
        let pairs: Vec<_> = g.edges().map(|(s, e)| (s.0, e.dst.0)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn disk_bytes_formula() {
        let g = diamond();
        // 4 vertices * (4 + 8 + 4) + 4 edges * 8
        assert_eq!(g.adjacency_disk_bytes(8), 4 * 16 + 4 * 8);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn invalid_offsets_rejected() {
        let _ = Graph::from_parts(vec![0, 5], vec![Edge::to(VertexId(0))]);
    }

    #[test]
    fn degree_histogram_caps_tail() {
        let g = diamond();
        let h = g.degree_histogram(1);
        // degree 0: v3; degree >= 1 bucket: v0 (2), v1, v2
        assert_eq!(h, vec![1, 3]);
    }
}
