//! Randomized (seeded, reproducible) tests for the graph substrate.
//!
//! Formerly proptest-based; rewritten as plain seeded loops over a
//! [`SplitMix64`] stream so the workspace builds offline with no external
//! crates. Every case derives all of its parameters from the loop's RNG,
//! so a failure reproduces exactly from the fixed seed.

use hybridgraph_graph::rng::SplitMix64;
use hybridgraph_graph::{gen, io, partition, BlockLayout, GraphBuilder, Partition, VertexId};

/// Every vertex is owned by exactly one worker, ranges are contiguous
/// and cover 0..n.
#[test]
fn partition_covers_all_vertices() {
    let mut r = SplitMix64::new(0xA11CE);
    for _ in 0..64 {
        let n = r.range_usize(1, 500);
        let t = r.range_usize(1, 40);
        let p = Partition::range(n, t);
        assert_eq!(p.num_vertices(), n);
        assert_eq!(p.num_workers(), t);
        let mut covered = 0usize;
        let mut at = 0u32;
        for w in p.workers() {
            let range = p.worker_range(w);
            assert_eq!(range.start, at);
            at = range.end;
            covered += range.len();
            for v in range {
                assert_eq!(p.worker_of(VertexId(v)), w);
            }
        }
        assert_eq!(covered, n);
    }
}

/// Range sizes differ by at most one vertex.
#[test]
fn partition_is_balanced() {
    let mut r = SplitMix64::new(0xBA1A);
    for _ in 0..64 {
        let n = r.range_usize(1, 1000);
        let t = r.range_usize(1, 50);
        let p = Partition::range(n, t);
        let sizes: Vec<usize> = p.workers().map(|w| p.worker_len(w)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }
}

/// Block layout covers every vertex exactly once and block_of agrees.
#[test]
fn layout_partitions_vertices() {
    let mut r = SplitMix64::new(0x1A01);
    for _ in 0..64 {
        let n = r.range_usize(1, 300);
        let t = r.range_usize(1, 8);
        let per = r.range_usize(1, 10);
        let p = Partition::range(n, t);
        let l = BlockLayout::uniform(&p, per);
        let mut covered = 0usize;
        for b in l.block_ids() {
            let range = l.block_range(b);
            covered += range.len();
            for v in range {
                assert_eq!(l.block_of(VertexId(v)), b);
            }
        }
        assert_eq!(covered, n);
    }
}

/// Eq. 5 monotonicity: more buffer, fewer blocks; never zero.
#[test]
fn eq5_monotone_in_buffer() {
    let mut r = SplitMix64::new(0xE05);
    for _ in 0..64 {
        let n = r.range_usize(1, 100_000);
        let t = r.range_usize(1, 64);
        let b = r.range_usize(1, 1_000_000);
        let v1 = partition::vblocks_eq5(n, t, b);
        let v2 = partition::vblocks_eq5(n, t, b * 2);
        assert!(v1 >= v2);
        assert!(v2 >= 1);
    }
}

/// reverse(reverse(g)) has identical adjacency to g.
#[test]
fn reverse_is_involution() {
    let mut r = SplitMix64::new(0x12EF);
    for case in 0..48 {
        let n = r.range_usize(2, 80);
        let m = r.range_usize(0, 400);
        let seed = r.next_u64() % 1000;
        let g = if m == 0 {
            hybridgraph_graph::Graph::empty(n)
        } else {
            gen::uniform(n, m, seed)
        };
        let back = g.reverse().reverse();
        assert_eq!(g.num_edges(), back.num_edges(), "case {case}");
        for v in g.vertices() {
            let mut a: Vec<u32> = g.out_edges(v).iter().map(|e| e.dst.0).collect();
            let mut b: Vec<u32> = back.out_edges(v).iter().map(|e| e.dst.0).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "case {case}");
        }
    }
}

/// Binary serialization round-trips arbitrary random graphs.
#[test]
fn binary_io_roundtrip() {
    let mut r = SplitMix64::new(0xB10);
    for case in 0..48 {
        let n = r.range_usize(2, 60);
        let m = r.range_usize(1, 300);
        let seed = r.next_u64() % 1000;
        let g = gen::randomize_weights(&gen::uniform(n, m, seed), 0.5, 9.5, seed);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, back, "case {case}");
    }
}

/// The builder is insensitive to edge insertion order.
#[test]
fn builder_order_insensitive() {
    let mut r = SplitMix64::new(0x0DE);
    for _ in 0..64 {
        let len = r.range_usize(0, 200);
        let mut edges: Vec<(u32, u32)> = (0..len)
            .map(|_| (r.below_u32(50), r.below_u32(50)))
            .collect();
        let build = |pairs: &[(u32, u32)]| {
            let mut b = GraphBuilder::new(50);
            for &(s, d) in pairs {
                b.add(VertexId(s), VertexId(d));
            }
            b.build()
        };
        let forward = build(&edges);
        edges.reverse();
        let backward = build(&edges);
        assert_eq!(forward, backward);
    }
}

/// localize preserves vertex count, edge count and out-degrees.
#[test]
fn localize_preserves_degrees() {
    let mut r = SplitMix64::new(0x10CA);
    for _ in 0..48 {
        let n = r.range_usize(4, 80);
        let m = r.range_usize(1, 300);
        let frac = r.next_f64();
        let seed = r.next_u64() % 500;
        let g = gen::uniform(n, m, seed);
        let l = gen::localize(&g, frac, n / 8 + 1, seed);
        assert_eq!(l.num_vertices(), g.num_vertices());
        assert_eq!(l.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(l.out_degree(v), g.out_degree(v));
        }
    }
}

/// Generators honour exact edge counts and never emit self-loops.
#[test]
fn rmat_no_self_loops() {
    let mut r = SplitMix64::new(0x53ED);
    for _ in 0..48 {
        let n = r.range_usize(3, 200);
        let m = r.range_usize(1, 500);
        let seed = r.next_u64() % 500;
        let g = gen::rmat(n, m, gen::RmatParams::default(), seed);
        assert_eq!(g.num_edges(), m);
        for (s, e) in g.edges() {
            assert_ne!(s, e.dst);
        }
    }
}
