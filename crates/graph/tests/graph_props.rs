//! Property-based tests for the graph substrate.

use hybridgraph_graph::{gen, io, partition, BlockLayout, GraphBuilder, Partition, VertexId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every vertex is owned by exactly one worker, ranges are contiguous
    /// and cover 0..n.
    #[test]
    fn partition_covers_all_vertices(n in 1usize..500, t in 1usize..40) {
        let p = Partition::range(n, t);
        prop_assert_eq!(p.num_vertices(), n);
        prop_assert_eq!(p.num_workers(), t);
        let mut covered = 0usize;
        let mut at = 0u32;
        for w in p.workers() {
            let r = p.worker_range(w);
            prop_assert_eq!(r.start, at);
            at = r.end;
            covered += r.len();
            for v in r {
                prop_assert_eq!(p.worker_of(VertexId(v)), w);
            }
        }
        prop_assert_eq!(covered, n);
    }

    /// Range sizes differ by at most one vertex.
    #[test]
    fn partition_is_balanced(n in 1usize..1000, t in 1usize..50) {
        let p = Partition::range(n, t);
        let sizes: Vec<usize> = p.workers().map(|w| p.worker_len(w)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
    }

    /// Block layout covers every vertex exactly once and block_of agrees.
    #[test]
    fn layout_partitions_vertices(n in 1usize..300, t in 1usize..8, per in 1usize..10) {
        let p = Partition::range(n, t);
        let l = BlockLayout::uniform(&p, per);
        let mut covered = 0usize;
        for b in l.block_ids() {
            let r = l.block_range(b);
            covered += r.len();
            for v in r {
                prop_assert_eq!(l.block_of(VertexId(v)), b);
            }
        }
        prop_assert_eq!(covered, n);
    }

    /// Eq. 5 monotonicity: more buffer, fewer blocks; never zero.
    #[test]
    fn eq5_monotone_in_buffer(n in 1usize..100_000, t in 1usize..64, b in 1usize..1_000_000) {
        let v1 = partition::vblocks_eq5(n, t, b);
        let v2 = partition::vblocks_eq5(n, t, b * 2);
        prop_assert!(v1 >= v2);
        prop_assert!(v2 >= 1);
    }

    /// reverse(reverse(g)) has identical adjacency to g.
    #[test]
    fn reverse_is_involution(n in 2usize..80, m in 0usize..400, seed in 0u64..1000) {
        let g = if m == 0 {
            hybridgraph_graph::Graph::empty(n)
        } else {
            gen::uniform(n, m, seed)
        };
        let back = g.reverse().reverse();
        prop_assert_eq!(g.num_edges(), back.num_edges());
        for v in g.vertices() {
            let mut a: Vec<u32> = g.out_edges(v).iter().map(|e| e.dst.0).collect();
            let mut b: Vec<u32> = back.out_edges(v).iter().map(|e| e.dst.0).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    /// Binary serialization round-trips arbitrary random graphs.
    #[test]
    fn binary_io_roundtrip(n in 2usize..60, m in 1usize..300, seed in 0u64..1000) {
        let g = gen::randomize_weights(&gen::uniform(n, m, seed), 0.5, 9.5, seed);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let back = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    /// The builder is insensitive to edge insertion order.
    #[test]
    fn builder_order_insensitive(mut edges in prop::collection::vec((0u32..50, 0u32..50), 0..200)) {
        let build = |pairs: &[(u32, u32)]| {
            let mut b = GraphBuilder::new(50);
            for &(s, d) in pairs {
                b.add(VertexId(s), VertexId(d));
            }
            b.build()
        };
        let forward = build(&edges);
        edges.reverse();
        let backward = build(&edges);
        prop_assert_eq!(forward, backward);
    }

    /// localize preserves vertex count, edge count and out-degrees.
    #[test]
    fn localize_preserves_degrees(n in 4usize..80, m in 1usize..300, frac in 0.0f64..1.0, seed in 0u64..500) {
        let g = gen::uniform(n, m, seed);
        let l = gen::localize(&g, frac, n / 8 + 1, seed);
        prop_assert_eq!(l.num_vertices(), g.num_vertices());
        prop_assert_eq!(l.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(l.out_degree(v), g.out_degree(v));
        }
    }

    /// Generators honour exact edge counts and never emit self-loops.
    #[test]
    fn rmat_no_self_loops(scale_n in 3usize..200, m in 1usize..500, seed in 0u64..500) {
        let g = gen::rmat(scale_n, m, gen::RmatParams::default(), seed);
        prop_assert_eq!(g.num_edges(), m);
        for (s, e) in g.edges() {
            prop_assert_ne!(s, e.dst);
        }
    }
}
