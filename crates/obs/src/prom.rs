//! Prometheus text-exposition exporter built from the same event stream as
//! the Chrome trace, plus caller-supplied extra gauges.
//!
//! Span events become `_span_count` / `_span_modeled_us_total` counters and
//! a fixed-bucket duration histogram; instant events become `_total`
//! counters; counter events contribute their numeric args as `_total` sums.
//! Output lines are ordered by `BTreeMap` so the exposition is deterministic
//! for deterministic inputs. (Unlike the Chrome trace, this file may also
//! carry wall-clock/overhead gauges supplied via `extras`, so it is *not*
//! covered by the byte-identical guarantee.)

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{ArgValue, EventKind};
use crate::sink::TraceSink;

/// Histogram bucket upper bounds for span durations, in modeled µs.
const BUCKETS_US: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    buckets: [u64; BUCKETS_US.len()],
}

/// An extra gauge to append verbatim (name, label pairs, value).
pub struct ExtraMetric {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl ExtraMetric {
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        ExtraMetric {
            name: name.into(),
            labels: Vec::new(),
            value,
        }
    }

    pub fn label(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.labels.push((k.into(), v.into()));
        self
    }
}

fn label_str(track_name: &str, extra: &[(String, String)]) -> String {
    let mut parts = vec![format!("track=\"{track_name}\"")];
    for (k, v) in extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Render the sink (plus extra gauges) as Prometheus text exposition.
pub fn export_prometheus(sink: &TraceSink, extras: &[ExtraMetric]) -> String {
    // (metric_name, label_str) -> aggregation
    let mut spans: BTreeMap<(String, String), SpanAgg> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();

    for shard in sink.shards() {
        let track_name = sink.track_name(shard.track());
        for ev in shard.events() {
            let base = sanitize(&ev.name);
            match ev.kind {
                EventKind::Span { dur_us } => {
                    let key = (base, label_str(&track_name, &[]));
                    let agg = spans.entry(key).or_default();
                    agg.count += 1;
                    agg.total_us += dur_us;
                    for (i, ub) in BUCKETS_US.iter().enumerate() {
                        if dur_us <= *ub {
                            agg.buckets[i] += 1;
                        }
                    }
                }
                EventKind::Instant => {
                    let key = (base, label_str(&track_name, &[]));
                    *counts.entry(key).or_default() += 1;
                }
                EventKind::Counter => {
                    for (k, v) in &ev.args {
                        let val = match v {
                            ArgValue::U64(n) => *n as f64,
                            ArgValue::I64(n) => *n as f64,
                            ArgValue::F64(f) => *f,
                            ArgValue::Str(_) => continue,
                        };
                        let labels = label_str(&track_name, &[("series".to_string(), sanitize(k))]);
                        let key = (base.clone(), labels);
                        *sums.entry(key).or_default() += val;
                    }
                }
            }
        }
    }

    let mut out = String::new();
    let prefix = "hybridgraph";

    // `# TYPE` must appear once per metric name, before all its series;
    // the BTreeMap sorts by name first, so emit it on name transitions.
    let mut last: Option<&str> = None;
    for ((name, labels), agg) in &spans {
        let m = format!("{prefix}_{name}_span");
        if last != Some(name.as_str()) {
            let _ = writeln!(out, "# TYPE {m}_count counter");
            let _ = writeln!(out, "# TYPE {m}_modeled_us_total counter");
            let _ = writeln!(out, "# TYPE {m}_modeled_us histogram");
            last = Some(name.as_str());
        }
        let _ = writeln!(out, "{m}_count{labels} {}", agg.count);
        let _ = writeln!(out, "{m}_modeled_us_total{labels} {}", agg.total_us);
        let inner = labels.trim_start_matches('{').trim_end_matches('}');
        for (i, ub) in BUCKETS_US.iter().enumerate() {
            let _ = writeln!(
                out,
                "{m}_modeled_us_bucket{{{inner},le=\"{ub}\"}} {}",
                agg.buckets[i]
            );
        }
        let _ = writeln!(
            out,
            "{m}_modeled_us_bucket{{{inner},le=\"+Inf\"}} {}",
            agg.count
        );
        let _ = writeln!(out, "{m}_modeled_us_sum{labels} {}", agg.total_us);
        let _ = writeln!(out, "{m}_modeled_us_count{labels} {}", agg.count);
    }

    let mut last: Option<&str> = None;
    for ((name, labels), n) in &counts {
        let m = format!("{prefix}_{name}_total");
        if last != Some(name.as_str()) {
            let _ = writeln!(out, "# TYPE {m} counter");
            last = Some(name.as_str());
        }
        let _ = writeln!(out, "{m}{labels} {n}");
    }

    let mut last: Option<&str> = None;
    for ((name, labels), v) in &sums {
        let m = format!("{prefix}_{name}_total");
        if last != Some(name.as_str()) {
            let _ = writeln!(out, "# TYPE {m} counter");
            last = Some(name.as_str());
        }
        let _ = writeln!(out, "{m}{labels} {v}");
    }

    render_gauges(&mut out, prefix, extras);

    let _ = writeln!(out, "# TYPE {prefix}_trace_events_dropped gauge");
    let _ = writeln!(
        out,
        "{prefix}_trace_events_dropped {}",
        sink.total_dropped()
    );
    out
}

fn render_gauges(out: &mut String, prefix: &str, extras: &[ExtraMetric]) {
    let mut extra_sorted: Vec<&ExtraMetric> = extras.iter().collect();
    extra_sorted.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
    let mut last: Option<&str> = None;
    for e in extra_sorted {
        let m = format!("{prefix}_{}", sanitize(&e.name));
        if last != Some(e.name.as_str()) {
            let _ = writeln!(out, "# TYPE {m} gauge");
            last = Some(e.name.as_str());
        }
        if e.labels.is_empty() {
            let _ = writeln!(out, "{m} {}", e.value);
        } else {
            let pairs: Vec<String> = e
                .labels
                .iter()
                .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v))
                .collect();
            let _ = writeln!(out, "{m}{{{}}} {}", pairs.join(","), e.value);
        }
    }
}

/// Render caller-supplied gauges alone as Prometheus text exposition —
/// no trace sink required. The gateway uses this for its frame/byte
/// counters and per-engine queue-depth gauges, where there is no single
/// job trace to aggregate. Output ordering is deterministic (sorted by
/// name, then labels), and repeated names share one `# TYPE` line as
/// the exposition format requires.
pub fn export_prometheus_gauges(extras: &[ExtraMetric]) -> String {
    let mut out = String::new();
    render_gauges(&mut out, "hybridgraph", extras);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_aggregates_and_orders() {
        let sink = TraceSink::new(1);
        sink.worker(0).span("compute", 500, vec![]);
        sink.worker(0).span("compute", 1500, vec![]);
        sink.worker(0).instant("barrier", vec![]);
        sink.net()
            .counter_at(0, "traffic", vec![("bytes", 100u64.into())]);
        sink.net()
            .counter_at(1, "traffic", vec![("bytes", 50u64.into())]);
        let text = export_prometheus(
            &sink,
            &[ExtraMetric::new("wall_secs", 1.5).label("phase", "total")],
        );
        assert!(text.contains("hybridgraph_compute_span_count{track=\"worker-0\"} 2"));
        assert!(text.contains("hybridgraph_compute_span_modeled_us_total{track=\"worker-0\"} 2000"));
        assert!(text.contains("le=\"1000\"} 1"));
        assert!(text.contains("hybridgraph_barrier_total{track=\"worker-0\"} 1"));
        assert!(text.contains("hybridgraph_traffic_total{track=\"net\",series=\"bytes\"} 150"));
        assert!(text.contains("hybridgraph_wall_secs{phase=\"total\"} 1.5"));
        assert!(text.contains("hybridgraph_trace_events_dropped 0"));
    }
}
