//! The Q_t decision audit log.
//!
//! Every `Switcher::decide` call records one [`QtAudit`]: the full Eq. 11
//! inputs, the four cost terms, the predicted `Q_{t+2}` and the verdict.
//! The record carries only plain numbers and static strings so any mode
//! flip is explainable from the artifact alone — no re-run needed.

use std::fmt::Write as _;

/// Raw Eq. 11 inputs (bytes/counts of one superstep), mirroring the
/// engine's `CostInputs` without depending on it.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct QtInputs {
    pub mco: u64,
    pub bytes_per_saved: u64,
    pub io_mdisk: u64,
    pub io_vrr: u64,
    pub io_e_push: u64,
    pub io_e_bpull: u64,
    pub io_f: u64,
}

/// The async extension of one evaluation: the barrier-savings vs
/// duplicated-interior-compute trade the GraphHP-style `Async` mode adds
/// as a second decision axis next to Eq. 11's push/b-pull sign.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct QtAsync {
    /// Modeled seconds the extra pseudo-rounds saved versus paying a
    /// full strict-BSP superstep (value reload + boundary exchange) for
    /// each of them.
    pub barrier_saved_secs: f64,
    /// Modeled seconds of duplicated interior compute: updates and
    /// regenerated messages async ran beyond what one strict superstep
    /// would have.
    pub dup_compute_secs: f64,
    /// `barrier_saved_secs − dup_compute_secs`; positive favours Async.
    pub q_async: f64,
}

/// Per-access-class physical/logical ratios of the superstep whose
/// measurements fed this evaluation — the codec's effect broken out by
/// I/O tier (a tier with no logical traffic reports 1.0). Attached only
/// for jobs running with a codec configured, so codec-less audit
/// records serialize byte-for-byte as they always have.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct QtTiers {
    pub seq_read: f64,
    pub seq_write: f64,
    pub rand_read: f64,
    pub rand_write: f64,
}

impl QtTiers {
    /// `(tier label, ratio)` pairs in stable exposition order — the
    /// labels double as the `tier` label values of the
    /// `job_codec_ratio` Prometheus gauge.
    pub fn pairs(&self) -> [(&'static str, f64); 4] {
        [
            ("seq_read", self.seq_read),
            ("seq_write", self.seq_write),
            ("rand_read", self.rand_read),
            ("rand_write", self.rand_write),
        ]
    }
}

/// The four Eq. 11 terms in seconds: `Q = net + rw − rr + sr`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct QtTerms {
    /// `M_co·Byte_m / s_net` — push's extra network volume.
    pub net: f64,
    /// `IO(M_disk) / s_rw` — push's message spill writes.
    pub rw: f64,
    /// `IO(V_rr) / s_rr` — b-pull's random svertex reads (subtracted).
    pub rr: f64,
    /// `(IO(Ē)+IO(M_disk)−IO(E)−IO(F)) / s_sr` — sequential-read diff.
    pub sr: f64,
}

/// What the switcher concluded from this evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QtVerdict {
    /// `t < 2` or within the Δt interval of the last decision: no
    /// evaluation took place beyond recording `Q_t`.
    TooEarly,
    /// Evaluated; predicted mode equals the current mode.
    Hold,
    /// Sign favoured the other mode but `|Q|` did not clear the
    /// threshold·step_secs gate.
    BelowThreshold,
    /// Switch taken for superstep `t + 1`.
    Switch,
}

impl QtVerdict {
    pub fn label(&self) -> &'static str {
        match self {
            QtVerdict::TooEarly => "too-early",
            QtVerdict::Hold => "hold",
            QtVerdict::BelowThreshold => "below-threshold",
            QtVerdict::Switch => "SWITCH",
        }
    }
}

/// One audited `Switcher::decide` evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct QtAudit {
    /// Superstep `t` whose measurements fed the prediction.
    pub superstep: u64,
    pub inputs: QtInputs,
    pub terms: QtTerms,
    /// Predicted `Q_{t+2}` in seconds (positive favours b-pull).
    pub q: f64,
    /// Modeled time of superstep `t`, the threshold denominator.
    pub step_secs: f64,
    /// Physical / logical bytes of superstep `t`'s classified I/O — the
    /// on-disk compression ratio feeding the byte inputs above (1.0 when
    /// no codec is configured). Eq. 11 consumes *physical* bytes, so the
    /// codec legitimately moves `Q_t`; this records by how much the
    /// superstep's I/O shrank.
    pub io_ratio: f64,
    /// Relative-gain threshold in force.
    pub threshold: f64,
    /// Mode while superstep `t` ran ("push" / "b-pull").
    pub mode_before: &'static str,
    /// Mode for superstep `t + 1` after the verdict.
    pub mode_after: &'static str,
    pub verdict: QtVerdict,
    /// The async barrier-savings term, recorded only when the evaluation
    /// considered the `Async` mode. `None` for plain push/b-pull jobs —
    /// their audit records (and serialized bytes) are unchanged.
    pub asy: Option<QtAsync>,
    /// Per-tier compression breakdown of `io_ratio`, recorded only for
    /// jobs running with a codec.
    pub tiers: Option<QtTiers>,
}

fn fmt_secs(v: f64) -> String {
    format!("{v:+.6}")
}

/// Render the audit log as the human-readable `--explain-switch` table.
pub fn render_table(audits: &[QtAudit]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Q_t decision audit (Eq. 11; positive favours b-pull; Δt prediction horizon = 2)"
    );
    let _ = writeln!(
        out,
        "{:>4} | {:>10} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9} {:>9} | {:>9} | {:>9} {:>6} | {:<7} -> {:<7} verdict",
        "t", "M_co", "B_m", "IO(Mdisk)", "IO(Vrr)", "IO(E_psh)", "IO(E_bpl)", "IO(F)",
        "net_s", "rw_s", "-rr_s", "sr_s", "Q_t+2", "step_s", "p/l", "before", "after"
    );
    for a in audits {
        let asy = match &a.asy {
            Some(x) => format!(
                " [async saved={} dup={} q_async={}]",
                fmt_secs(x.barrier_saved_secs),
                fmt_secs(x.dup_compute_secs),
                fmt_secs(x.q_async),
            ),
            None => String::new(),
        };
        let tiers = match &a.tiers {
            Some(x) => {
                let mut s = String::from(" [p/l");
                for (k, v) in x.pairs() {
                    let _ = write!(s, " {k}={v:.3}");
                }
                s.push(']');
                s
            }
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{:>4} | {:>10} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9} {:>9} | {:>9} | {:>9.3} {:>6.3} | {:<7} -> {:<7} {}{}{}",
            a.superstep,
            a.inputs.mco,
            a.inputs.bytes_per_saved,
            a.inputs.io_mdisk,
            a.inputs.io_vrr,
            a.inputs.io_e_push,
            a.inputs.io_e_bpull,
            a.inputs.io_f,
            fmt_secs(a.terms.net),
            fmt_secs(a.terms.rw),
            fmt_secs(-a.terms.rr),
            fmt_secs(a.terms.sr),
            fmt_secs(a.q),
            a.step_secs,
            a.io_ratio,
            a.mode_before,
            a.mode_after,
            a.verdict.label(),
            asy,
            tiers,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_every_record() {
        let audits = vec![
            QtAudit {
                superstep: 1,
                inputs: QtInputs::default(),
                terms: QtTerms::default(),
                q: 0.0,
                step_secs: 0.5,
                io_ratio: 1.0,
                threshold: 0.1,
                mode_before: "b-pull",
                mode_after: "b-pull",
                verdict: QtVerdict::TooEarly,
                asy: None,
                tiers: None,
            },
            QtAudit {
                superstep: 2,
                inputs: QtInputs {
                    mco: 10,
                    bytes_per_saved: 12,
                    io_vrr: 4096,
                    ..Default::default()
                },
                terms: QtTerms {
                    net: 0.001,
                    rw: 0.0,
                    rr: 0.01,
                    sr: -0.002,
                },
                q: -0.011,
                step_secs: 0.2,
                io_ratio: 0.62,
                threshold: 0.1,
                mode_before: "b-pull",
                mode_after: "push",
                verdict: QtVerdict::Switch,
                asy: None,
                tiers: None,
            },
        ];
        let table = render_table(&audits);
        assert!(table.contains("too-early"));
        assert!(table.contains("SWITCH"));
        assert!(table.contains("b-pull  -> push"));
        assert!(table.contains("0.620"), "compression ratio column rendered");
        assert_eq!(table.lines().count(), 4);
        assert!(!table.contains("q_async"), "no async column without asy");
        assert!(!table.contains("seq_read"), "no tier column without tiers");
    }

    #[test]
    fn table_renders_tier_breakdown() {
        let audits = vec![QtAudit {
            superstep: 2,
            inputs: QtInputs::default(),
            terms: QtTerms::default(),
            q: 0.0,
            step_secs: 0.4,
            io_ratio: 0.5,
            threshold: 0.1,
            mode_before: "b-pull",
            mode_after: "b-pull",
            verdict: QtVerdict::Hold,
            asy: None,
            tiers: Some(QtTiers {
                seq_read: 0.42,
                seq_write: 1.0,
                rand_read: 1.0,
                rand_write: 0.9,
            }),
        }];
        let table = render_table(&audits);
        assert!(table.contains("seq_read=0.420"));
        assert!(table.contains("rand_write=0.900"));
    }

    #[test]
    fn table_renders_async_extension() {
        let audits = vec![QtAudit {
            superstep: 3,
            inputs: QtInputs::default(),
            terms: QtTerms::default(),
            q: 0.0,
            step_secs: 0.4,
            io_ratio: 1.0,
            threshold: 0.1,
            mode_before: "async",
            mode_after: "async",
            verdict: QtVerdict::Hold,
            asy: Some(QtAsync {
                barrier_saved_secs: 0.25,
                dup_compute_secs: 0.05,
                q_async: 0.2,
            }),
            tiers: None,
        }];
        let table = render_table(&audits);
        assert!(table.contains("async   -> async"));
        assert!(table.contains("q_async=+0.200000"));
        assert!(table.contains("saved=+0.250000"));
        assert!(table.contains("dup=+0.050000"));
    }
}
