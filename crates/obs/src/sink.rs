//! Sharded ring-buffer event collector.
//!
//! One [`TraceShard`] per simulated worker (plus master/control/net shards)
//! keeps recording contention-free: each shard is written by exactly one
//! thread, so its `Mutex` is uncontended in steady state and exists only to
//! let the master drain shards at export time. The ring buffer bounds memory
//! — when full, the oldest events are dropped and counted, never blocking
//! the hot path.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::{ArgValue, TraceEvent};

/// Default per-shard capacity. At ~100 events per superstep per worker this
/// is enough for hundreds of supersteps before wrapping.
pub const DEFAULT_SHARD_CAPACITY: usize = 65_536;

struct ShardInner {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Modeled-time cursor in microseconds; events default to this time.
    clock_us: u64,
}

/// A single-writer event buffer bound to one track.
pub struct TraceShard {
    track: u32,
    inner: Mutex<ShardInner>,
}

impl std::fmt::Debug for TraceShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceShard")
            .field("track", &self.track)
            .field("len", &self.len())
            .finish()
    }
}

impl TraceShard {
    pub fn new(track: u32, capacity: usize) -> Self {
        TraceShard {
            track,
            inner: Mutex::new(ShardInner {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                clock_us: 0,
            }),
        }
    }

    /// The Chrome-trace track (tid) this shard writes to.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Set the modeled-time cursor (microseconds since job start).
    pub fn set_clock_us(&self, us: u64) {
        self.inner.lock().unwrap().clock_us = us;
    }

    /// Advance the modeled-time cursor and return the *previous* value
    /// (the start timestamp of whatever just consumed `dur_us`).
    pub fn advance_us(&self, dur_us: u64) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let start = g.clock_us;
        g.clock_us = g.clock_us.saturating_add(dur_us);
        start
    }

    /// Current modeled-time cursor.
    pub fn clock_us(&self) -> u64 {
        self.inner.lock().unwrap().clock_us
    }

    fn push(&self, ev: TraceEvent) {
        let mut g = self.inner.lock().unwrap();
        if g.ring.len() >= g.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back(ev);
    }

    /// Record a complete span that *starts at the current cursor* and
    /// advances the cursor by `dur_us`.
    pub fn span(&self, name: impl Into<String>, dur_us: u64, args: Vec<(&'static str, ArgValue)>) {
        let start = self.advance_us(dur_us);
        let mut ev = TraceEvent::span(start, dur_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Record a complete span at an explicit start timestamp (does not move
    /// the cursor).
    pub fn span_at(
        &self,
        ts_us: u64,
        name: impl Into<String>,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let mut ev = TraceEvent::span(ts_us, dur_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Record an instant event at the current cursor.
    pub fn instant(&self, name: impl Into<String>, args: Vec<(&'static str, ArgValue)>) {
        let ts = self.clock_us();
        self.instant_at(ts, name, args);
    }

    /// Record an instant event at an explicit timestamp.
    pub fn instant_at(
        &self,
        ts_us: u64,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let mut ev = TraceEvent::instant(ts_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Record a counter sample at an explicit timestamp.
    pub fn counter_at(
        &self,
        ts_us: u64,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let mut ev = TraceEvent::counter(ts_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Snapshot the recorded events in insertion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The collector: one shard per simulated worker plus three fixed extra
/// tracks (master, control, net).
pub struct TraceSink {
    workers: usize,
    shards: Vec<Arc<TraceShard>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("workers", &self.workers)
            .field("events", &self.total_events())
            .finish()
    }
}

impl TraceSink {
    /// Create a sink for `workers` simulated workers with the default
    /// per-shard capacity.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_SHARD_CAPACITY)
    }

    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let total = workers + 3;
        let shards = (0..total)
            .map(|t| Arc::new(TraceShard::new(t as u32, capacity)))
            .collect();
        TraceSink { workers, shards }
    }

    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// Shard for simulated worker `w` (`w < num_workers`).
    pub fn worker(&self, w: usize) -> Arc<TraceShard> {
        assert!(w < self.workers, "worker shard index out of range");
        Arc::clone(&self.shards[w])
    }

    /// Master track: superstep spans, barrier instants, checkpoint spans.
    pub fn master(&self) -> Arc<TraceShard> {
        Arc::clone(&self.shards[self.workers])
    }

    /// Control track: Q_t audit instants and mode switches.
    pub fn control(&self) -> Arc<TraceShard> {
        Arc::clone(&self.shards[self.workers + 1])
    }

    /// Net track: ARQ fault instants and traffic counters.
    pub fn net(&self) -> Arc<TraceShard> {
        Arc::clone(&self.shards[self.workers + 2])
    }

    /// All shards in track order (workers, master, control, net).
    pub fn shards(&self) -> &[Arc<TraceShard>] {
        &self.shards
    }

    /// Human-readable track name used by exporter metadata.
    pub fn track_name(&self, track: u32) -> String {
        let t = track as usize;
        if t < self.workers {
            format!("worker-{t}")
        } else if t == self.workers {
            "master".to_string()
        } else if t == self.workers + 1 {
            "control".to_string()
        } else {
            "net".to_string()
        }
    }

    /// Total events dropped across all shards.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Total events currently buffered across all shards.
    pub fn total_events(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

/// Convenience for instrumented code: events recorded through an
/// `Option<Arc<TraceShard>>` compile to a null check when tracing is off.
pub fn maybe_span(
    shard: &Option<Arc<TraceShard>>,
    name: &'static str,
    dur_us: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if let Some(s) = shard {
        s.span(name, dur_us, args);
    }
}

pub fn maybe_instant(
    shard: &Option<Arc<TraceShard>>,
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) {
    if let Some(s) = shard {
        s.instant(name, args);
    }
}

#[allow(clippy::needless_range_loop)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn ring_drops_oldest() {
        let shard = TraceShard::new(0, 4);
        for i in 0..6u64 {
            shard.instant_at(i, format!("e{i}"), vec![]);
        }
        let evs = shard.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(shard.dropped(), 2);
        assert_eq!(evs[0].name, "e2");
        assert_eq!(evs[3].name, "e5");
    }

    #[test]
    fn clock_advances_spans() {
        let shard = TraceShard::new(1, 16);
        shard.set_clock_us(100);
        shard.span("a", 50, vec![]);
        shard.span("b", 25, vec![]);
        let evs = shard.events();
        assert_eq!(evs[0].ts_us, 100);
        assert_eq!(evs[1].ts_us, 150);
        assert_eq!(shard.clock_us(), 175);
        match evs[1].kind {
            EventKind::Span { dur_us } => assert_eq!(dur_us, 25),
            _ => panic!("expected span"),
        }
    }

    #[test]
    fn sink_track_layout() {
        let sink = TraceSink::new(3);
        assert_eq!(sink.worker(0).track(), 0);
        assert_eq!(sink.master().track(), 3);
        assert_eq!(sink.control().track(), 4);
        assert_eq!(sink.net().track(), 5);
        assert_eq!(sink.track_name(1), "worker-1");
        assert_eq!(sink.track_name(3), "master");
        assert_eq!(sink.track_name(4), "control");
        assert_eq!(sink.track_name(5), "net");
    }
}
