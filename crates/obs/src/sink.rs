//! Sharded ring-buffer event collector.
//!
//! One [`TraceShard`] per simulated worker (plus master/control/net shards)
//! keeps recording contention-free: each shard is written by exactly one
//! thread, so its `Mutex` is uncontended in steady state and exists only to
//! let the master drain shards at export time. The ring buffer bounds memory
//! — when full, the oldest events are dropped and counted, never blocking
//! the hot path.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Mutex};

use crate::event::{intern_arg_key, ArgValue, EventKind, TraceEvent};

/// Default per-shard capacity. At ~100 events per superstep per worker this
/// is enough for hundreds of supersteps before wrapping.
pub const DEFAULT_SHARD_CAPACITY: usize = 65_536;

struct ShardInner {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Modeled-time cursor in microseconds; events default to this time.
    clock_us: u64,
}

/// A single-writer event buffer bound to one track.
pub struct TraceShard {
    track: u32,
    inner: Mutex<ShardInner>,
}

impl std::fmt::Debug for TraceShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceShard")
            .field("track", &self.track)
            .field("len", &self.len())
            .finish()
    }
}

impl TraceShard {
    pub fn new(track: u32, capacity: usize) -> Self {
        TraceShard {
            track,
            inner: Mutex::new(ShardInner {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                clock_us: 0,
            }),
        }
    }

    /// The Chrome-trace track (tid) this shard writes to.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Set the modeled-time cursor (microseconds since job start).
    pub fn set_clock_us(&self, us: u64) {
        self.inner.lock().unwrap().clock_us = us;
    }

    /// Advance the modeled-time cursor and return the *previous* value
    /// (the start timestamp of whatever just consumed `dur_us`).
    pub fn advance_us(&self, dur_us: u64) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let start = g.clock_us;
        g.clock_us = g.clock_us.saturating_add(dur_us);
        start
    }

    /// Current modeled-time cursor.
    pub fn clock_us(&self) -> u64 {
        self.inner.lock().unwrap().clock_us
    }

    fn push(&self, ev: TraceEvent) {
        let mut g = self.inner.lock().unwrap();
        if g.ring.len() >= g.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
        g.ring.push_back(ev);
    }

    /// Record a complete span that *starts at the current cursor* and
    /// advances the cursor by `dur_us`.
    pub fn span(&self, name: impl Into<String>, dur_us: u64, args: Vec<(&'static str, ArgValue)>) {
        let start = self.advance_us(dur_us);
        let mut ev = TraceEvent::span(start, dur_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Record a complete span at an explicit start timestamp (does not move
    /// the cursor).
    pub fn span_at(
        &self,
        ts_us: u64,
        name: impl Into<String>,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let mut ev = TraceEvent::span(ts_us, dur_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Record an instant event at the current cursor.
    pub fn instant(&self, name: impl Into<String>, args: Vec<(&'static str, ArgValue)>) {
        let ts = self.clock_us();
        self.instant_at(ts, name, args);
    }

    /// Record an instant event at an explicit timestamp.
    pub fn instant_at(
        &self,
        ts_us: u64,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let mut ev = TraceEvent::instant(ts_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Record a counter sample at an explicit timestamp.
    pub fn counter_at(
        &self,
        ts_us: u64,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let mut ev = TraceEvent::counter(ts_us, self.track, name);
        ev.args = args;
        self.push(ev);
    }

    /// Snapshot the recorded events in insertion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// A full copy of this shard's volatile state (buffered events, drop
    /// count, modeled-time cursor) — what a durable master snapshots at a
    /// barrier so a restarted run replays to the same trace bytes.
    pub fn export_state(&self) -> ShardState {
        let g = self.inner.lock().unwrap();
        ShardState {
            events: g.ring.iter().cloned().collect(),
            dropped: g.dropped,
            clock_us: g.clock_us,
        }
    }

    /// Replaces this shard's buffered events, drop count and clock with
    /// `state`. A full replacement (not a merge): any events recorded
    /// before the restore — e.g. re-load spans emitted while a resumed job
    /// rebuilt its stores — are erased, which is exactly what makes the
    /// restored trace byte-identical to an uninterrupted one.
    pub fn restore_state(&self, state: &ShardState) {
        let mut g = self.inner.lock().unwrap();
        g.ring.clear();
        g.ring.extend(state.events.iter().cloned());
        g.dropped = state.dropped;
        g.clock_us = state.clock_us;
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The collector: one shard per simulated worker plus three fixed extra
/// tracks (master, control, net).
pub struct TraceSink {
    workers: usize,
    shards: Vec<Arc<TraceShard>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("workers", &self.workers)
            .field("events", &self.total_events())
            .finish()
    }
}

impl TraceSink {
    /// Create a sink for `workers` simulated workers with the default
    /// per-shard capacity.
    pub fn new(workers: usize) -> Self {
        Self::with_capacity(workers, DEFAULT_SHARD_CAPACITY)
    }

    pub fn with_capacity(workers: usize, capacity: usize) -> Self {
        let total = workers + 3;
        let shards = (0..total)
            .map(|t| Arc::new(TraceShard::new(t as u32, capacity)))
            .collect();
        TraceSink { workers, shards }
    }

    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// Shard for simulated worker `w` (`w < num_workers`).
    pub fn worker(&self, w: usize) -> Arc<TraceShard> {
        assert!(w < self.workers, "worker shard index out of range");
        Arc::clone(&self.shards[w])
    }

    /// Master track: superstep spans, barrier instants, checkpoint spans.
    pub fn master(&self) -> Arc<TraceShard> {
        Arc::clone(&self.shards[self.workers])
    }

    /// Control track: Q_t audit instants and mode switches.
    pub fn control(&self) -> Arc<TraceShard> {
        Arc::clone(&self.shards[self.workers + 1])
    }

    /// Net track: ARQ fault instants and traffic counters.
    pub fn net(&self) -> Arc<TraceShard> {
        Arc::clone(&self.shards[self.workers + 2])
    }

    /// All shards in track order (workers, master, control, net).
    pub fn shards(&self) -> &[Arc<TraceShard>] {
        &self.shards
    }

    /// Human-readable track name used by exporter metadata.
    pub fn track_name(&self, track: u32) -> String {
        let t = track as usize;
        if t < self.workers {
            format!("worker-{t}")
        } else if t == self.workers {
            "master".to_string()
        } else if t == self.workers + 1 {
            "control".to_string()
        } else {
            "net".to_string()
        }
    }

    /// Total events dropped across all shards.
    pub fn total_dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Total events currently buffered across all shards.
    pub fn total_events(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

// ------------------------------------------------------- shard snapshots

/// One shard's volatile state, snapshotted by [`TraceShard::export_state`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardState {
    /// Buffered events in insertion order.
    pub events: Vec<TraceEvent>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Modeled-time cursor in microseconds.
    pub clock_us: u64,
}

impl TraceSink {
    /// Snapshots every shard in track order (workers, master, control,
    /// net).
    pub fn export_states(&self) -> Vec<ShardState> {
        self.shards.iter().map(|s| s.export_state()).collect()
    }

    /// Restores every shard from `states` (track order). Shard counts must
    /// match — the restored sink is built for the same worker count.
    ///
    /// # Panics
    /// Panics if `states` has a different number of shards.
    pub fn restore_states(&self, states: &[ShardState]) {
        assert_eq!(
            states.len(),
            self.shards.len(),
            "trace shard count mismatch"
        );
        for (shard, state) in self.shards.iter().zip(states) {
            shard.restore_state(state);
        }
    }
}

fn enc_corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt shard state: {what}"),
    )
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.buf.len() - self.pos {
            return Err(enc_corrupt("field past end"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.u64()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| enc_corrupt("invalid utf-8"))
    }
}

/// Serializes shard states into a deterministic little-endian byte run
/// (f64 args by bit pattern), for embedding in a durable master snapshot.
pub fn encode_shard_states(states: &[ShardState]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, states.len() as u64);
    for s in states {
        put_u64(&mut buf, s.clock_us);
        put_u64(&mut buf, s.dropped);
        put_u64(&mut buf, s.events.len() as u64);
        for ev in &s.events {
            put_u64(&mut buf, ev.ts_us);
            buf.extend_from_slice(&ev.track.to_le_bytes());
            put_str(&mut buf, &ev.name);
            match ev.kind {
                EventKind::Span { dur_us } => {
                    buf.push(0);
                    put_u64(&mut buf, dur_us);
                }
                EventKind::Instant => buf.push(1),
                EventKind::Counter => buf.push(2),
            }
            put_u64(&mut buf, ev.args.len() as u64);
            for (k, v) in &ev.args {
                put_str(&mut buf, k);
                match v {
                    ArgValue::U64(x) => {
                        buf.push(0);
                        put_u64(&mut buf, *x);
                    }
                    ArgValue::I64(x) => {
                        buf.push(1);
                        put_u64(&mut buf, *x as u64);
                    }
                    ArgValue::F64(x) => {
                        buf.push(2);
                        put_u64(&mut buf, x.to_bits());
                    }
                    ArgValue::Str(x) => {
                        buf.push(3);
                        put_str(&mut buf, x);
                    }
                }
            }
        }
    }
    buf
}

/// Rebuilds shard states from [`encode_shard_states`] bytes. Arg keys are
/// re-interned to `'static` via [`intern_arg_key`].
pub fn decode_shard_states(buf: &[u8]) -> io::Result<Vec<ShardState>> {
    let mut d = Dec { buf, pos: 0 };
    let n = d.u64()? as usize;
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        let clock_us = d.u64()?;
        let dropped = d.u64()?;
        let ne = d.u64()? as usize;
        let mut events = Vec::with_capacity(ne);
        for _ in 0..ne {
            let ts_us = d.u64()?;
            let track = d.u32()?;
            let name = d.str()?;
            let kind = match d.u8()? {
                0 => EventKind::Span { dur_us: d.u64()? },
                1 => EventKind::Instant,
                2 => EventKind::Counter,
                _ => return Err(enc_corrupt("unknown event kind")),
            };
            let na = d.u64()? as usize;
            let mut args = Vec::with_capacity(na);
            for _ in 0..na {
                let key = intern_arg_key(&d.str()?);
                let val = match d.u8()? {
                    0 => ArgValue::U64(d.u64()?),
                    1 => ArgValue::I64(d.u64()? as i64),
                    2 => ArgValue::F64(f64::from_bits(d.u64()?)),
                    3 => ArgValue::Str(d.str()?),
                    _ => return Err(enc_corrupt("unknown arg value tag")),
                };
                args.push((key, val));
            }
            events.push(TraceEvent {
                ts_us,
                track,
                name,
                kind,
                args,
            });
        }
        states.push(ShardState {
            events,
            dropped,
            clock_us,
        });
    }
    if d.pos != buf.len() {
        return Err(enc_corrupt("trailing bytes"));
    }
    Ok(states)
}

/// Convenience for instrumented code: events recorded through an
/// `Option<Arc<TraceShard>>` compile to a null check when tracing is off.
pub fn maybe_span(
    shard: &Option<Arc<TraceShard>>,
    name: &'static str,
    dur_us: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if let Some(s) = shard {
        s.span(name, dur_us, args);
    }
}

pub fn maybe_instant(
    shard: &Option<Arc<TraceShard>>,
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) {
    if let Some(s) = shard {
        s.instant(name, args);
    }
}

#[allow(clippy::needless_range_loop)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn ring_drops_oldest() {
        let shard = TraceShard::new(0, 4);
        for i in 0..6u64 {
            shard.instant_at(i, format!("e{i}"), vec![]);
        }
        let evs = shard.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(shard.dropped(), 2);
        assert_eq!(evs[0].name, "e2");
        assert_eq!(evs[3].name, "e5");
    }

    #[test]
    fn clock_advances_spans() {
        let shard = TraceShard::new(1, 16);
        shard.set_clock_us(100);
        shard.span("a", 50, vec![]);
        shard.span("b", 25, vec![]);
        let evs = shard.events();
        assert_eq!(evs[0].ts_us, 100);
        assert_eq!(evs[1].ts_us, 150);
        assert_eq!(shard.clock_us(), 175);
        match evs[1].kind {
            EventKind::Span { dur_us } => assert_eq!(dur_us, 25),
            _ => panic!("expected span"),
        }
    }

    #[test]
    fn shard_state_roundtrip_is_exact() {
        let sink = TraceSink::with_capacity(2, 8);
        sink.worker(0).span(
            "load",
            50,
            vec![
                ("bytes", ArgValue::U64(1024)),
                ("worker", ArgValue::I64(-1)),
            ],
        );
        sink.master()
            .instant("barrier", vec![("superstep", ArgValue::U64(3))]);
        sink.control().counter_at(
            77,
            "q",
            vec![
                ("q", ArgValue::F64(-0.125)),
                ("verdict", ArgValue::Str("hold".into())),
            ],
        );
        for i in 0..10u64 {
            sink.net().instant_at(i, format!("e{i}"), vec![]);
        }
        let states = sink.export_states();
        assert_eq!(states[4].dropped, 2, "net ring wrapped");

        let bytes = encode_shard_states(&states);
        let decoded = decode_shard_states(&bytes).unwrap();
        assert_eq!(decoded, states);

        // A fresh sink restored from the snapshot replays identically —
        // including cursor positions, so subsequent spans line up.
        let fresh = TraceSink::with_capacity(2, 8);
        fresh.worker(0).span("noise-before-restore", 999, vec![]);
        fresh.restore_states(&decoded);
        assert_eq!(fresh.export_states(), states);
        assert_eq!(fresh.worker(0).clock_us(), sink.worker(0).clock_us());
        sink.worker(0).span("next", 10, vec![]);
        fresh.worker(0).span("next", 10, vec![]);
        assert_eq!(fresh.worker(0).events(), sink.worker(0).events());
        assert!(decode_shard_states(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn sink_track_layout() {
        let sink = TraceSink::new(3);
        assert_eq!(sink.worker(0).track(), 0);
        assert_eq!(sink.master().track(), 3);
        assert_eq!(sink.control().track(), 4);
        assert_eq!(sink.net().track(), 5);
        assert_eq!(sink.track_name(1), "worker-1");
        assert_eq!(sink.track_name(3), "master");
        assert_eq!(sink.track_name(4), "control");
        assert_eq!(sink.track_name(5), "net");
    }
}
