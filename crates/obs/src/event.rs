//! Typed trace events with deterministic modeled-time timestamps.
//!
//! Timestamps are **modeled microseconds**, not wall-clock: they are derived
//! from `DeviceProfile`-converted byte counts upstream, so a trace is a pure
//! function of (graph, config, seed) and is bit-reproducible across runs and
//! machines. Nothing in this module reads a clock.

/// A value attached to an event's `args` map.
///
/// Only exactly-representable value kinds are allowed; floats are carried as
/// `F64` and formatted with a deterministic shortest-roundtrip style by the
/// exporters (Rust's `{}` for f64 is shortest-roundtrip and stable).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What shape of event this is, mapping onto Chrome Trace Event phases.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A complete span (`"ph":"X"`) with a modeled duration.
    Span { dur_us: u64 },
    /// A point-in-time marker (`"ph":"i"`).
    Instant,
    /// A counter sample (`"ph":"C"`); args carry the series values.
    Counter,
}

/// One recorded event on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Modeled timestamp in microseconds since job start.
    pub ts_us: u64,
    /// Track (thread id in the Chrome trace): one per simulated worker,
    /// plus master/control/net tracks allocated by [`crate::TraceSink`].
    pub track: u32,
    /// Event name; static in practice but owned so callers may format.
    pub name: String,
    pub kind: EventKind,
    /// Small ordered key/value list; insertion order is preserved in export.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Returns a `'static` copy of `key` for a decoded event arg, reusing the
/// program's own literal for every known key. Arg keys form a small closed
/// set (they are `&'static str` at record time), so the `Box::leak`
/// fallback for unrecognized keys is bounded and only reachable for logs
/// written by a newer producer.
pub fn intern_arg_key(key: &str) -> &'static str {
    match key {
        "b" => "b",
        "b_lower_bound" => "b_lower_bound",
        "barrier" => "barrier",
        "bytes" => "bytes",
        "checkpoint" => "checkpoint",
        "delays" => "delays",
        "drops" => "drops",
        "duplicates" => "duplicates",
        "epoch" => "epoch",
        "failed_superstep" => "failed_superstep",
        "fragments" => "fragments",
        "from" => "from",
        "g" => "g",
        "grants" => "grants",
        "graph" => "graph",
        "hits" => "hits",
        "initial_mode" => "initial_mode",
        "io_bytes" => "io_bytes",
        "io_ratio" => "io_ratio",
        "job_id" => "job_id",
        "lane" => "lane",
        "len" => "len",
        "local" => "local",
        "logical_bytes" => "logical_bytes",
        "max_worker_bytes" => "max_worker_bytes",
        "memory" => "memory",
        "messages" => "messages",
        "misses" => "misses",
        "mode" => "mode",
        "mode_after" => "mode_after",
        "mode_before" => "mode_before",
        "odd" => "odd",
        "ops" => "ops",
        "phase" => "phase",
        "q" => "q",
        "q_metric" => "q_metric",
        "remote" => "remote",
        "step_secs" => "step_secs",
        "superstep" => "superstep",
        "threshold" => "threshold",
        "to" => "to",
        "updated" => "updated",
        "v" => "v",
        "verdict" => "verdict",
        "worker" => "worker",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

impl TraceEvent {
    pub fn span(ts_us: u64, dur_us: u64, track: u32, name: impl Into<String>) -> Self {
        TraceEvent {
            ts_us,
            track,
            name: name.into(),
            kind: EventKind::Span { dur_us },
            args: Vec::new(),
        }
    }

    pub fn instant(ts_us: u64, track: u32, name: impl Into<String>) -> Self {
        TraceEvent {
            ts_us,
            track,
            name: name.into(),
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    pub fn counter(ts_us: u64, track: u32, name: impl Into<String>) -> Self {
        TraceEvent {
            ts_us,
            track,
            name: name.into(),
            kind: EventKind::Counter,
            args: Vec::new(),
        }
    }

    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}
