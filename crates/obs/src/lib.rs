//! hybridgraph-obs — deterministic observability for the HybridGraph engine.
//!
//! A zero-dependency crate (std only, no workspace deps) providing:
//!
//! * [`TraceSink`] / [`TraceShard`] — a sharded ring-buffer event collector
//!   with one single-writer shard per simulated worker plus master /
//!   control / net tracks. Timestamps are **modeled microseconds** derived
//!   from `DeviceProfile` byte accounting upstream, so traces are
//!   bit-reproducible across runs and machines.
//! * [`export_chrome_trace`] — Chrome Trace Event JSON, loadable in
//!   Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//! * [`export_prometheus`] — Prometheus text exposition built from the same
//!   events (plus caller-supplied gauges for non-deterministic quantities
//!   like wall time, which are deliberately kept out of the Chrome trace).
//! * [`QtAudit`] / [`render_table`] — the Eq. 11 switch-decision audit log
//!   behind `repro --explain-switch`.
//! * [`FabricTap`] / [`ArqCounters`] — the ARQ observation hook installed
//!   on network endpoints.
//! * [`validate_json`] — a pure-Rust JSON syntax checker used by CI's
//!   `trace-validate` job.
//!
//! This crate sits at the bottom of the workspace dependency graph: every
//! other crate may depend on it, it depends on nothing.

pub mod audit;
pub mod chrome;
pub mod event;
pub mod json;
pub mod prom;
pub mod sink;
pub mod tap;

pub use audit::{render_table, QtAsync, QtAudit, QtInputs, QtTerms, QtTiers, QtVerdict};
pub use chrome::{export_chrome_trace, export_chrome_trace_jobs, json_escape};
pub use event::{intern_arg_key, ArgValue, EventKind, TraceEvent};
pub use json::validate_json;
pub use prom::{export_prometheus, export_prometheus_gauges, ExtraMetric};
pub use sink::{
    decode_shard_states, encode_shard_states, maybe_instant, maybe_span, ShardState, TraceShard,
    TraceSink, DEFAULT_SHARD_CAPACITY,
};
pub use tap::{ArqCounters, ArqEvent, ArqSnapshot, FabricTap};

/// Convert modeled seconds to the trace's microsecond unit, rounding to
/// nearest. Saturates at `u64::MAX` (never reached for sane inputs).
pub fn secs_to_us(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let us = secs * 1e6;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_to_us_rounds_and_clamps() {
        assert_eq!(secs_to_us(0.0), 0);
        assert_eq!(secs_to_us(-1.0), 0);
        assert_eq!(secs_to_us(1.0), 1_000_000);
        assert_eq!(secs_to_us(0.0000015), 2);
        assert_eq!(secs_to_us(f64::NAN), 0);
        assert_eq!(secs_to_us(f64::INFINITY), 0);
    }
}
