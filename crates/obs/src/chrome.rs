//! Chrome Trace Event JSON exporter (Perfetto-loadable).
//!
//! Output is the "JSON Object Format": `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
//! Events are emitted per-track in insertion order — never re-sorted by
//! timestamp — so the byte stream is a deterministic function of recorded
//! events. Floats are formatted with Rust's shortest-roundtrip `{}` which is
//! stable across platforms.

use std::fmt::Write as _;

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::sink::TraceSink;

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure the token is valid JSON (Rust prints `1` for 1.0_f64 which
        // is fine) — but NaN/inf are caught above.
        s
    } else {
        // JSON has no NaN/Infinity; encode as string to stay parseable.
        format!("\"{v}\"")
    }
}

fn write_args(buf: &mut String, args: &[(&'static str, ArgValue)]) {
    buf.push_str("\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(buf, "\"{}\":", json_escape(k));
        match v {
            ArgValue::U64(n) => {
                let _ = write!(buf, "{n}");
            }
            ArgValue::I64(n) => {
                let _ = write!(buf, "{n}");
            }
            ArgValue::F64(f) => {
                buf.push_str(&fmt_f64(*f));
            }
            ArgValue::Str(s) => {
                let _ = write!(buf, "\"{}\"", json_escape(s));
            }
        }
    }
    buf.push('}');
}

fn write_event(buf: &mut String, ev: &TraceEvent, pid: usize, first: &mut bool) {
    if !*first {
        buf.push_str(",\n");
    }
    *first = false;
    let ph = match ev.kind {
        EventKind::Span { .. } => "X",
        EventKind::Instant => "i",
        EventKind::Counter => "C",
    };
    let _ = write!(
        buf,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        json_escape(&ev.name),
        ph,
        ev.ts_us,
        pid,
        ev.track
    );
    if let EventKind::Span { dur_us } = ev.kind {
        let _ = write!(buf, ",\"dur\":{dur_us}");
    }
    if let EventKind::Instant = ev.kind {
        // Thread-scoped instants render as small arrows on the track.
        buf.push_str(",\"s\":\"t\"");
    }
    buf.push(',');
    write_args(buf, &ev.args);
    buf.push('}');
}

/// Render the full sink as Chrome Trace Event JSON.
pub fn export_chrome_trace(sink: &TraceSink) -> String {
    let mut buf = String::new();
    buf.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = false;
    // Metadata: process name + one thread_name record per track, in track
    // order. sort_index pins the UI ordering to the track number.
    buf.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"hybridgraph\"}}",
    );
    for shard in sink.shards() {
        let t = shard.track();
        let _ = write!(
            buf,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            t,
            json_escape(&sink.track_name(t))
        );
        let _ = write!(
            buf,
            ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"args\":{{\"sort_index\":{t}}}}}"
        );
    }
    for shard in sink.shards() {
        for ev in shard.events() {
            write_event(&mut buf, &ev, 0, &mut first);
        }
    }
    buf.push_str("\n]}\n");
    buf
}

/// Render several jobs' sinks into one Chrome Trace Event JSON document,
/// one *process* per job (pid = job index, process name = job name) so a
/// multi-tenant run shows every job's tracks side by side in Perfetto.
///
/// Jobs are emitted in slice order and each sink's shards in track order,
/// so the byte stream is a deterministic function of the recorded events —
/// the property the service's double-run `cmp` check relies on.
pub fn export_chrome_trace_jobs(jobs: &[(&str, &TraceSink)]) -> String {
    let mut buf = String::new();
    buf.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for (pid, (name, sink)) in jobs.iter().enumerate() {
        if !first {
            buf.push_str(",\n");
        }
        first = false;
        let _ = write!(
            buf,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            json_escape(name)
        );
        let _ = write!(
            buf,
            ",\n{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
        );
        for shard in sink.shards() {
            let t = shard.track();
            let _ = write!(
                buf,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                pid,
                t,
                json_escape(&sink.track_name(t))
            );
            let _ = write!(
                buf,
                ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{t},\"args\":{{\"sort_index\":{t}}}}}"
            );
        }
    }
    for (pid, (_, sink)) in jobs.iter().enumerate() {
        for shard in sink.shards() {
            for ev in shard.events() {
                write_event(&mut buf, &ev, pid, &mut first);
            }
        }
    }
    buf.push_str("\n]}\n");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn escape_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_is_valid_json() {
        let sink = TraceSink::new(2);
        sink.worker(0).span(
            "superstep",
            1000,
            vec![("bytes", 42u64.into()), ("mode", "push".into())],
        );
        sink.worker(1).instant("barrier", vec![("t", 1u64.into())]);
        sink.control()
            .counter_at(500, "q_t", vec![("q", 1.25f64.into())]);
        let json = export_chrome_trace(&sink);
        validate_json(&json).expect("exporter must emit valid JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"name\":\"master\""));
    }

    #[test]
    fn export_identical_for_identical_events() {
        let mk = || {
            let sink = TraceSink::new(1);
            sink.worker(0).span("a", 10, vec![("x", 1u64.into())]);
            sink.master().instant("b", vec![]);
            export_chrome_trace(&sink)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn multi_job_export_separates_processes() {
        let a = TraceSink::new(1);
        a.worker(0).span("superstep", 100, vec![]);
        let b = TraceSink::new(1);
        b.worker(0).span("superstep", 200, vec![]);
        let json = export_chrome_trace_jobs(&[("job-a", &a), ("job-b", &b)]);
        validate_json(&json).expect("multi-job exporter must emit valid JSON");
        assert!(json.contains("\"name\":\"job-a\""));
        assert!(json.contains("\"name\":\"job-b\""));
        assert!(json.contains("\"pid\":1"));
        // Deterministic byte stream for identical inputs.
        let again = export_chrome_trace_jobs(&[("job-a", &a), ("job-b", &b)]);
        assert_eq!(json, again);
    }

    #[test]
    fn nonfinite_floats_stay_parseable() {
        let sink = TraceSink::new(1);
        sink.worker(0).instant("odd", vec![("v", f64::NAN.into())]);
        let json = export_chrome_trace(&sink);
        validate_json(&json).expect("NaN must be encoded as a string");
    }
}
