//! Minimal pure-Rust JSON validator (RFC 8259 syntax check, no DOM).
//!
//! Used by CI's `trace-validate` job and the determinism tests to assert
//! that exported traces parse, without pulling a JSON dependency into the
//! workspace.

pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut p = Parser { b: bytes, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != bytes.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{} at byte {}", msg, self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                any = true;
            }
            if !any {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut any = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                any = true;
            }
            if !any {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"a\\u00e9b\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\n\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "nul",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate_json(s).is_err(), "should reject: {s}");
        }
    }
}
