//! ARQ observation tap for the network fabric.
//!
//! `net::fabric` cannot depend on the trace sink's policy decisions (which
//! ARQ events are deterministic enough for the Chrome trace vs. metrics
//! only), so it just reports everything through this trait and the runner
//! decides what to surface where. [`ArqCounters`] is the standard
//! implementation: lock-free atomic tallies that the master snapshots at
//! deterministic phase boundaries.

use std::sync::atomic::{AtomicU64, Ordering};

/// One ARQ-level occurrence on a link.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArqEvent {
    /// A data frame was retransmitted (RTO expiry or fault-forced),
    /// carrying `bytes` of payload again.
    Retransmit { bytes: u64 },
    /// A cumulative ack frame was emitted.
    AckSent,
    /// The receiver discarded an already-delivered duplicate.
    DupDrop,
    /// The fault plan swallowed this transmission attempt.
    FaultDrop,
    /// The fault plan injected a duplicate delivery.
    FaultDuplicate,
    /// The fault plan delayed this frame's delivery.
    FaultDelay,
}

/// Observer interface installed on fabric endpoints.
///
/// Implementations must be cheap and thread-safe: `transmit` paths call
/// this with locks held on hot paths.
pub trait FabricTap: Send + Sync {
    fn arq(&self, from: usize, to: usize, event: ArqEvent);
}

/// Snapshot of [`ArqCounters`] at one instant.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArqSnapshot {
    pub retransmits: u64,
    pub retransmitted_bytes: u64,
    pub acks_sent: u64,
    pub dup_drops: u64,
    pub fault_drops: u64,
    pub fault_duplicates: u64,
    pub fault_delays: u64,
}

impl ArqSnapshot {
    /// Componentwise `self − earlier` (saturating).
    pub fn delta(&self, earlier: &ArqSnapshot) -> ArqSnapshot {
        ArqSnapshot {
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            retransmitted_bytes: self
                .retransmitted_bytes
                .saturating_sub(earlier.retransmitted_bytes),
            acks_sent: self.acks_sent.saturating_sub(earlier.acks_sent),
            dup_drops: self.dup_drops.saturating_sub(earlier.dup_drops),
            fault_drops: self.fault_drops.saturating_sub(earlier.fault_drops),
            fault_duplicates: self
                .fault_duplicates
                .saturating_sub(earlier.fault_duplicates),
            fault_delays: self.fault_delays.saturating_sub(earlier.fault_delays),
        }
    }

    pub fn is_zero(&self) -> bool {
        *self == ArqSnapshot::default()
    }
}

/// Atomic tally of ARQ events across all links.
///
/// The *fault-plan-driven* components (`fault_drops`, `fault_duplicates`,
/// `fault_delays`) are deterministic per superstep — the seeded plan's
/// decisions depend only on `(from, to, seq, attempt)` and the per-link
/// send counts are order-independent — so their deltas may appear in the
/// Chrome trace. The *timing-driven* components (`retransmits`, `acks`,
/// `dup_drops`) depend on thread scheduling and belong in metrics only.
#[derive(Default)]
pub struct ArqCounters {
    retransmits: AtomicU64,
    retransmitted_bytes: AtomicU64,
    acks_sent: AtomicU64,
    dup_drops: AtomicU64,
    fault_drops: AtomicU64,
    fault_duplicates: AtomicU64,
    fault_delays: AtomicU64,
}

impl ArqCounters {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> ArqSnapshot {
        ArqSnapshot {
            retransmits: self.retransmits.load(Ordering::Relaxed),
            retransmitted_bytes: self.retransmitted_bytes.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            dup_drops: self.dup_drops.load(Ordering::Relaxed),
            fault_drops: self.fault_drops.load(Ordering::Relaxed),
            fault_duplicates: self.fault_duplicates.load(Ordering::Relaxed),
            fault_delays: self.fault_delays.load(Ordering::Relaxed),
        }
    }
}

impl FabricTap for ArqCounters {
    fn arq(&self, _from: usize, _to: usize, event: ArqEvent) {
        match event {
            ArqEvent::Retransmit { bytes } => {
                self.retransmits.fetch_add(1, Ordering::Relaxed);
                self.retransmitted_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            ArqEvent::AckSent => {
                self.acks_sent.fetch_add(1, Ordering::Relaxed);
            }
            ArqEvent::DupDrop => {
                self.dup_drops.fetch_add(1, Ordering::Relaxed);
            }
            ArqEvent::FaultDrop => {
                self.fault_drops.fetch_add(1, Ordering::Relaxed);
            }
            ArqEvent::FaultDuplicate => {
                self.fault_duplicates.fetch_add(1, Ordering::Relaxed);
            }
            ArqEvent::FaultDelay => {
                self.fault_delays.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_and_delta() {
        let c = ArqCounters::new();
        c.arq(0, 1, ArqEvent::Retransmit { bytes: 100 });
        c.arq(0, 1, ArqEvent::FaultDrop);
        c.arq(1, 0, ArqEvent::AckSent);
        let s1 = c.snapshot();
        assert_eq!(s1.retransmits, 1);
        assert_eq!(s1.retransmitted_bytes, 100);
        assert_eq!(s1.fault_drops, 1);
        assert_eq!(s1.acks_sent, 1);
        c.arq(0, 1, ArqEvent::FaultDrop);
        c.arq(0, 1, ArqEvent::DupDrop);
        let d = c.snapshot().delta(&s1);
        assert_eq!(d.fault_drops, 1);
        assert_eq!(d.dup_drops, 1);
        assert_eq!(d.retransmits, 0);
        assert!(!d.is_zero());
        assert!(s1.delta(&s1).is_zero());
    }
}
