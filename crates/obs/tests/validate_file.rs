//! Validates an on-disk Chrome trace file with the in-repo JSON checker.
//!
//! Driven by the CI `trace-validate` job: point `HG_TRACE_FILE` at a file
//! produced by `repro … --trace <path> observe` and the test parses it
//! end to end. Without the variable the test is a no-op, so plain
//! `cargo test` never depends on build artifacts.

use hybridgraph_obs::validate_json;

#[test]
fn validates_trace_file_from_env() {
    let Some(path) = std::env::var_os("HG_TRACE_FILE") else {
        eprintln!("HG_TRACE_FILE not set; skipping on-disk trace validation");
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.to_string_lossy()));
    validate_json(&text).unwrap_or_else(|e| {
        panic!("{} is not valid JSON: {e}", path.to_string_lossy());
    });
    assert!(
        text.contains("\"traceEvents\""),
        "file does not look like a Chrome trace"
    );
    println!(
        "validated {} ({} bytes)",
        path.to_string_lossy(),
        text.len()
    );
}
