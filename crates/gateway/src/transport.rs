//! The byte layer: one [`Transport`] trait, two implementations.
//!
//! * [`LoopbackTransport`] — a deterministic in-process pipe pair. Tests
//!   and benches run the full client/server/frame stack over it, so the
//!   repo's byte-identity and same-seed replay guarantees carry over to
//!   the gateway without touching a socket.
//! * [`TcpTransport`] — real `std::net` sockets with per-connection read
//!   timeouts. Same server code, same frames; only the bytes' carrier
//!   differs.
//!
//! Both sides of a connection implement [`Conn`]: blocking reads and
//! writes plus an optional read timeout (a stalled or hostile peer can
//! hold a connection open, never a server thread forever).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One side of an established connection.
pub trait Conn: Read + Write + Send {
    /// Caps how long a single `read` may block; `None` blocks forever.
    /// A timeout surfaces as [`io::ErrorKind::WouldBlock`] or
    /// [`io::ErrorKind::TimedOut`].
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;

    /// Human-readable peer label for logs.
    fn peer(&self) -> String;
}

/// A listener producing [`Conn`]s.
pub trait Transport: Send + Sync {
    /// Blocks for the next inbound connection.
    fn accept(&self) -> io::Result<Box<dyn Conn>>;

    /// Wakes a blocked [`Transport::accept`] for shutdown; subsequent
    /// accepts fail.
    fn unblock(&self);

    /// Human-readable bind label for logs.
    fn label(&self) -> String;
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// One direction of a loopback connection: a byte queue with EOF.
#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

impl Pipe {
    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "loopback peer closed",
            ));
        }
        st.buf.extend(data);
        self.cv.notify_all();
        Ok(data.len())
    }

    fn read(&self, out: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().unwrap();
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0); // EOF
            }
            match timeout {
                None => st = self.cv.wait(st).unwrap(),
                Some(t) => {
                    let (guard, res) = self.cv.wait_timeout(st, t).unwrap();
                    st = guard;
                    if res.timed_out() && st.buf.is_empty() && !st.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "loopback read timed out",
                        ));
                    }
                }
            }
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.cv.notify_all();
    }
}

/// One endpoint of an in-process connection. Dropping it closes both
/// directions, so the peer sees EOF (clean between frames, torn inside
/// one — exactly like a socket).
pub struct LoopbackConn {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    timeout: Option<Duration>,
    label: &'static str,
}

impl Read for LoopbackConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.rx.read(buf, self.timeout)
    }
}

impl Write for LoopbackConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for LoopbackConn {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        Ok(())
    }

    fn peer(&self) -> String {
        self.label.to_string()
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

#[derive(Default)]
struct LoopbackState {
    pending: VecDeque<LoopbackConn>,
    closed: bool,
}

/// The in-process transport: [`LoopbackTransport::connect`] hands one
/// end to the client and queues the other for [`Transport::accept`].
#[derive(Default)]
pub struct LoopbackTransport {
    state: Mutex<LoopbackState>,
    cv: Condvar,
}

impl LoopbackTransport {
    /// A fresh loopback listener.
    pub fn new() -> Arc<LoopbackTransport> {
        Arc::new(LoopbackTransport::default())
    }

    /// Establishes a connection; returns the client end.
    pub fn connect(&self) -> io::Result<Box<dyn Conn>> {
        let c2s = Arc::new(Pipe::default());
        let s2c = Arc::new(Pipe::default());
        let client = LoopbackConn {
            rx: Arc::clone(&s2c),
            tx: Arc::clone(&c2s),
            timeout: None,
            label: "loopback-server",
        };
        let server = LoopbackConn {
            rx: c2s,
            tx: s2c,
            timeout: None,
            label: "loopback-client",
        };
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "loopback transport closed",
            ));
        }
        st.pending.push_back(server);
        self.cv.notify_all();
        Ok(Box::new(client))
    }
}

impl Transport for LoopbackTransport {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(conn) = st.pending.pop_front() {
                return Ok(Box::new(conn));
            }
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "loopback transport closed",
                ));
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn unblock(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.cv.notify_all();
    }

    fn label(&self) -> String {
        "loopback".to_string()
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

struct TcpConn {
    stream: TcpStream,
    peer: String,
}

impl Read for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for TcpConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Conn for TcpConn {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Real sockets behind the same [`Transport`] trait. Bind with port 0
/// to let the OS pick; [`TcpTransport::local_addr`] reports the result.
pub struct TcpTransport {
    listener: TcpListener,
    addr: SocketAddr,
    closed: AtomicBool,
}

impl TcpTransport {
    /// Binds a listener.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpTransport {
            listener,
            addr,
            closed: AtomicBool::new(false),
        })
    }

    /// The bound address (the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connects a client end to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Box<dyn Conn>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string());
        Ok(Box::new(TcpConn { stream, peer }))
    }
}

impl Transport for TcpTransport {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        let (stream, peer) = self.listener.accept()?;
        if self.closed.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "tcp transport closed",
            ));
        }
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConn {
            stream,
            peer: peer.to_string(),
        }))
    }

    fn unblock(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake the blocked accept with a throwaway connection to
        // ourselves; accept() sees the flag and bails.
        let _ = TcpStream::connect(self.addr);
    }

    fn label(&self) -> String {
        self.addr.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_moves_bytes_both_ways() {
        let t = LoopbackTransport::new();
        let mut client = t.connect().unwrap();
        let mut server = t.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").unwrap();
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn loopback_drop_gives_peer_eof() {
        let t = LoopbackTransport::new();
        let client = t.connect().unwrap();
        let mut server = t.accept().unwrap();
        drop(client);
        let mut buf = [0u8; 1];
        assert_eq!(server.read(&mut buf).unwrap(), 0, "EOF after peer drop");
    }

    #[test]
    fn loopback_read_timeout_fires() {
        let t = LoopbackTransport::new();
        let _client = t.connect().unwrap();
        let mut server = t.accept().unwrap();
        server
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn unblock_aborts_accept() {
        let t = LoopbackTransport::new();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.accept().is_err());
        std::thread::sleep(Duration::from_millis(20));
        t.unblock();
        assert!(h.join().unwrap(), "accept must fail after unblock");
    }
}
