//! The [`GatewayServer`]: the full service surface over any
//! [`Transport`].
//!
//! One thread accepts connections; each connection gets a handler thread
//! that reads request frames in order and answers them. Jobs run on the
//! [`EnginePool`] exactly as an in-process caller would run them — the
//! gateway adds observation (a job table, progress events, counters) but
//! never touches the engine's modeled time or I/O accounting, so a job
//! through the gateway is byte-identical to the same job submitted
//! directly.
//!
//! Framing errors (bad magic, bad version, oversized or torn frames)
//! close the connection after a best-effort typed error frame; malformed
//! bodies inside a well-framed message answer with an error and keep the
//! connection. Every engine error crosses the wire as a stable
//! `(domain, code)` pair — see [`crate::proto::RemoteError`].

use crate::metrics::GatewayMetrics;
use crate::proto::{
    encode_values, ErrorDomain, GraphSource, JobOutcome, JobStatusInfo, ProgramSpec, ProgressEvent,
    RemoteError, Request, Response, SubmitReq, GW_SHUTTING_DOWN, GW_UNKNOWN_DATASET,
    GW_UNKNOWN_JOB,
};
use crate::transport::{Conn, Transport};
use crate::wire::{self, WireError, DEFAULT_MAX_FRAME};
use hybridgraph_algos::{Lpa, PageRank, Sa, Sssp, Wcc};
use hybridgraph_core::{encode_qt_audits, JobConfig, JobResult, Mode, ProgressSink, VertexProgram};
use hybridgraph_graph::{Dataset, VertexId};
use hybridgraph_obs::{export_chrome_trace, TraceSink};
use hybridgraph_service::{AdmissionError, EnginePool, GraphSpec, JobRequest};
use hybridgraph_storage::{decode_graph, Record};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Gateway-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Cap on inbound frame bodies (default 64 MiB).
    pub max_frame: u64,
    /// Per-connection read timeout between requests; `None` waits
    /// forever (the loopback default for deterministic tests).
    pub read_timeout: Option<Duration>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A job's current state in the gateway's table.
enum JobState {
    Running,
    Done(JobOutcome),
    Failed { code: u16, message: String },
}

struct JobCore {
    state: JobState,
    /// Progress events in arrival order; `Done`/`Failed` is appended
    /// last, so subscribers drain to a terminal event and stop.
    events: Vec<ProgressEvent>,
    supersteps_done: u64,
}

/// One tracked job: progress sink for the engine, event log for
/// subscribers, final outcome for `FetchResults`.
struct JobEntry {
    core: Mutex<JobCore>,
    cv: Condvar,
}

impl fmt::Debug for JobEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobEntry").finish()
    }
}

impl JobEntry {
    fn new() -> Arc<JobEntry> {
        Arc::new(JobEntry {
            core: Mutex::new(JobCore {
                state: JobState::Running,
                events: Vec::new(),
                supersteps_done: 0,
            }),
            cv: Condvar::new(),
        })
    }

    fn push_event(&self, ev: ProgressEvent) {
        let mut core = self.core.lock().unwrap();
        if let ProgressEvent::Superstep { superstep, .. } = &ev {
            core.supersteps_done = *superstep;
        }
        core.events.push(ev);
        self.cv.notify_all();
    }

    fn finish(&self, state: JobState, terminal: ProgressEvent) {
        let mut core = self.core.lock().unwrap();
        core.state = state;
        core.events.push(terminal);
        self.cv.notify_all();
    }

    fn status(&self) -> JobStatusInfo {
        let core = self.core.lock().unwrap();
        match &core.state {
            JobState::Running => JobStatusInfo::Running {
                supersteps_done: core.supersteps_done,
            },
            JobState::Done(_) => JobStatusInfo::Done,
            JobState::Failed { code, message } => JobStatusInfo::Failed {
                code: *code,
                message: message.clone(),
            },
        }
    }

    /// Blocks until terminal; returns the outcome or the failure.
    fn wait_outcome(&self) -> Result<JobOutcome, (u16, String)> {
        let mut core = self.core.lock().unwrap();
        loop {
            match &core.state {
                JobState::Done(o) => return Ok(o.clone()),
                JobState::Failed { code, message } => {
                    return Err((*code, message.clone()));
                }
                JobState::Running => core = self.cv.wait(core).unwrap(),
            }
        }
    }
}

impl ProgressSink for JobEntry {
    fn loaded(&self, modeled_secs: f64) {
        self.push_event(ProgressEvent::Loaded { modeled_secs });
    }

    fn superstep(&self, superstep: u64, mode: Mode, modeled_secs: f64) {
        self.push_event(ProgressEvent::Superstep {
            superstep,
            mode,
            modeled_secs,
        });
    }
}

struct Gw {
    pool: EnginePool,
    cfg: GatewayConfig,
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    next_job: AtomicU64,
    metrics: GatewayMetrics,
    stopping: AtomicBool,
    /// Result-waiter threads, reaped at `ServerHandle::join`.
    waiters: Mutex<Vec<JoinHandle<()>>>,
}

/// The gateway server: serve it over one or more transports via
/// [`GatewayServer::serve`].
#[derive(Clone)]
pub struct GatewayServer {
    inner: Arc<Gw>,
}

/// Join handle for one `serve` call: waits for the accept loop and
/// every connection handler it spawned.
pub struct ServerHandle {
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    gw: Arc<Gw>,
}

impl ServerHandle {
    /// Waits for the accept loop, all connection handlers, and all
    /// result-waiter threads to finish.
    pub fn join(self) {
        self.accept.join().expect("accept loop panicked");
        for h in self.conns.lock().unwrap().drain(..) {
            h.join().expect("connection handler panicked");
        }
        for h in self.gw.waiters.lock().unwrap().drain(..) {
            h.join().expect("result waiter panicked");
        }
    }
}

impl GatewayServer {
    /// A gateway over `pool` under `cfg`.
    pub fn new(pool: EnginePool, cfg: GatewayConfig) -> GatewayServer {
        GatewayServer {
            inner: Arc::new(Gw {
                pool,
                cfg,
                jobs: Mutex::new(HashMap::new()),
                next_job: AtomicU64::new(0),
                metrics: GatewayMetrics::default(),
                stopping: AtomicBool::new(false),
                waiters: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The engine pool (shared with the server; engines are thread-safe).
    pub fn pool(&self) -> &EnginePool {
        &self.inner.pool
    }

    /// The gateway's frame/byte counters.
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.inner.metrics
    }

    /// True once a `Shutdown` request was served.
    pub fn is_stopping(&self) -> bool {
        self.inner.stopping.load(Ordering::SeqCst)
    }

    /// Renders the Prometheus gauge exposition (frames, bytes, rejected
    /// frames, per-engine queue depths).
    pub fn prometheus(&self) -> String {
        self.inner.metrics.prometheus(&self.inner.pool)
    }

    /// Spawns the accept loop on `transport`. Call `Shutdown` over any
    /// connection (or [`GatewayServer::stop`]) to end it, then
    /// [`ServerHandle::join`].
    pub fn serve(&self, transport: Arc<dyn Transport>) -> ServerHandle {
        let gw = Arc::clone(&self.inner);
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conns2 = Arc::clone(&conns);
        let transport2 = Arc::clone(&transport);
        let accept = thread::spawn(move || loop {
            if gw.stopping.load(Ordering::SeqCst) {
                break;
            }
            match transport2.accept() {
                Ok(conn) => {
                    let gw2 = Arc::clone(&gw);
                    let tr = Arc::clone(&transport2);
                    conns2
                        .lock()
                        .unwrap()
                        .push(thread::spawn(move || handle_conn(gw2, tr, conn)));
                }
                Err(_) => break,
            }
        });
        ServerHandle {
            accept,
            conns,
            gw: Arc::clone(&self.inner),
        }
    }

    /// Stops the accept loop of every `serve` running on `transport`.
    pub fn stop(&self, transport: &dyn Transport) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        transport.unblock();
    }
}

fn admission_error(e: &AdmissionError) -> Response {
    Response::Error(RemoteError {
        domain: ErrorDomain::Admission,
        code: e.code(),
        message: e.to_string(),
    })
}

fn gateway_error(code: u16, message: impl Into<String>) -> Response {
    Response::Error(RemoteError {
        domain: ErrorDomain::Gateway,
        code,
        message: message.into(),
    })
}

/// Builds a finished job's wire outcome from the engine's result.
fn outcome_of<P: VertexProgram>(
    r: &JobResult<P>,
    kind: ProgramSpec,
    sink: Option<&TraceSink>,
) -> JobOutcome {
    JobOutcome {
        value_kind: kind.value_kind(),
        values: encode_values(&r.values),
        audits: encode_qt_audits(&r.metrics.qt_audit),
        trace: sink.map(export_chrome_trace),
        modeled_secs: r.metrics.modeled_total_secs(),
        physical_bytes: r.metrics.total_io_bytes(),
        logical_bytes: r.metrics.total_io_logical_bytes(),
        supersteps: r.metrics.supersteps(),
        switches: r
            .metrics
            .switches
            .iter()
            .map(|(t, from, to)| format!("{t}:{}->{}", from.label(), to.label()))
            .collect(),
    }
}

/// Submits one typed job and spawns its result waiter. `entry` is both
/// the job-table record and the engine's progress sink, so streamed
/// events and the final outcome land in one place. Gateway job ids are
/// assigned in submission order (the connection handler serves frames
/// sequentially), so they are deterministic for a deterministic client.
fn launch<P: VertexProgram>(
    gw: &Arc<Gw>,
    program: Arc<P>,
    req: &SubmitReq,
    cfg: JobConfig,
    sink: Option<Arc<TraceSink>>,
    entry: Arc<JobEntry>,
) -> Result<u64, AdmissionError>
where
    P::Value: Record,
{
    let ticket = gw
        .pool
        .submit(program, JobRequest::new(req.graph.clone(), cfg))?;
    let job_id = gw.next_job.fetch_add(1, Ordering::SeqCst);
    gw.jobs.lock().unwrap().insert(job_id, Arc::clone(&entry));
    let spec = req.program;
    let waiter = thread::spawn(move || match ticket.wait() {
        Ok(r) => {
            let outcome = outcome_of(&r, spec, sink.as_deref());
            entry.finish(JobState::Done(outcome), ProgressEvent::Done);
        }
        Err(e) => {
            let (code, message) = (e.code(), e.to_string());
            entry.finish(
                JobState::Failed {
                    code,
                    message: message.clone(),
                },
                ProgressEvent::Failed { code, message },
            );
        }
    });
    gw.waiters.lock().unwrap().push(waiter);
    Ok(job_id)
}

/// Builds the job config for one submission and dispatches on the
/// program spec. Returns the gateway job id.
fn submit_one(gw: &Arc<Gw>, req: &SubmitReq) -> Result<u64, Box<Response>> {
    let workers = gw.pool.workers_of(&req.graph).ok_or_else(|| {
        Box::new(admission_error(&AdmissionError::UnknownGraph(
            req.graph.clone(),
        )))
    })?;
    let mut cfg = JobConfig::new(req.options.mode, workers);
    if req.options.buffer_messages != u64::MAX {
        cfg = cfg.with_buffer(req.options.buffer_messages as usize);
    }
    if req.options.max_supersteps > 0 {
        cfg.max_supersteps = req.options.max_supersteps;
    }
    let sink = if req.options.trace {
        let s = Arc::new(TraceSink::new(workers));
        cfg = cfg.with_trace(Arc::clone(&s));
        Some(s)
    } else {
        None
    };
    let entry = JobEntry::new();
    cfg = cfg.with_progress(Arc::clone(&entry) as Arc<dyn ProgressSink>);
    let launched = match req.program {
        ProgramSpec::PageRank { supersteps } => launch(
            gw,
            Arc::new(PageRank::new(supersteps)),
            req,
            cfg,
            sink,
            entry,
        ),
        ProgramSpec::PageRankUntil { eps, cap } => launch(
            gw,
            Arc::new(PageRank::until(eps, cap)),
            req,
            cfg,
            sink,
            entry,
        ),
        ProgramSpec::Sssp { source } => launch(
            gw,
            Arc::new(Sssp::new(VertexId(source))),
            req,
            cfg,
            sink,
            entry,
        ),
        ProgramSpec::Lpa { supersteps } => {
            launch(gw, Arc::new(Lpa::new(supersteps)), req, cfg, sink, entry)
        }
        ProgramSpec::Wcc => launch(gw, Arc::new(Wcc::new()), req, cfg, sink, entry),
        ProgramSpec::Sa { ratio, seed } => {
            launch(gw, Arc::new(Sa::new(ratio, seed)), req, cfg, sink, entry)
        }
    };
    launched.map_err(|e| Box::new(admission_error(&e)))
}

/// Handles one connection: frames in, frames out, in order.
fn handle_conn(gw: Arc<Gw>, transport: Arc<dyn Transport>, mut conn: Box<dyn Conn>) {
    let _ = conn.set_read_timeout(gw.cfg.read_timeout);
    loop {
        let frame = match wire::read_frame(&mut *conn, gw.cfg.max_frame) {
            Ok((frame, nbytes)) => {
                gw.metrics.frame_in(nbytes);
                frame
            }
            Err(WireError::Closed) => break,
            Err(WireError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                gw.metrics.timeout();
                break;
            }
            Err(e) => {
                // Framing failure: best-effort typed error, then close.
                gw.metrics.reject();
                let resp = Response::Error(RemoteError {
                    domain: ErrorDomain::Protocol,
                    code: e.code(),
                    message: e.to_string(),
                });
                let (kind, body) = resp.encode();
                if let Ok(n) = wire::write_frame(&mut *conn, kind, &body) {
                    gw.metrics.frame_out(n);
                }
                break;
            }
        };
        let req = match Request::decode(frame.kind, &frame.body) {
            Ok(req) => req,
            Err(e) => {
                // Well-framed but malformed body: typed error, keep the
                // connection.
                gw.metrics.reject();
                let resp = Response::Error(RemoteError {
                    domain: ErrorDomain::Protocol,
                    code: e.code(),
                    message: e.to_string(),
                });
                if write_resp(&gw, &mut *conn, &resp).is_err() {
                    break;
                }
                continue;
            }
        };
        let shutdown = matches!(req, Request::Shutdown);
        let subscribe_id = match &req {
            Request::Subscribe { job_id } => Some(*job_id),
            _ => None,
        };
        if let Some(job_id) = subscribe_id {
            if stream_progress(&gw, &mut *conn, job_id).is_err() {
                break;
            }
            continue;
        }
        let resp = handle_request(&gw, &transport, req);
        if write_resp(&gw, &mut *conn, &resp).is_err() {
            break;
        }
        if shutdown {
            break;
        }
    }
}

fn write_resp(gw: &Gw, conn: &mut dyn Conn, resp: &Response) -> std::io::Result<()> {
    let (kind, body) = resp.encode();
    let n = wire::write_frame(conn, kind, &body)?;
    gw.metrics.frame_out(n);
    Ok(())
}

/// Streams a job's progress events until the terminal one, then the
/// final status frame.
fn stream_progress(gw: &Gw, conn: &mut dyn Conn, job_id: u64) -> std::io::Result<()> {
    let entry = gw.jobs.lock().unwrap().get(&job_id).cloned();
    let entry = match entry {
        Some(e) => e,
        None => {
            return write_resp(
                gw,
                conn,
                &gateway_error(GW_UNKNOWN_JOB, format!("no job {job_id}")),
            )
        }
    };
    let mut cursor = 0usize;
    loop {
        let batch: Vec<ProgressEvent> = {
            let mut core = entry.core.lock().unwrap();
            while core.events.len() == cursor {
                core = entry.cv.wait(core).unwrap();
            }
            core.events[cursor..].to_vec()
        };
        cursor += batch.len();
        let mut terminal = false;
        for ev in batch {
            terminal |= ev.is_terminal();
            write_resp(gw, conn, &Response::Progress(ev))?;
        }
        if terminal {
            return write_resp(gw, conn, &Response::Status(entry.status()));
        }
    }
}

fn handle_request(gw: &Arc<Gw>, transport: &Arc<dyn Transport>, req: Request) -> Response {
    if gw.stopping.load(Ordering::SeqCst) && !matches!(req, Request::Shutdown) {
        return gateway_error(GW_SHUTTING_DOWN, "gateway is shutting down");
    }
    match req {
        Request::RegisterGraph {
            name,
            workers,
            vblocks_per_worker,
            codec,
            source,
        } => {
            let graph = match source {
                GraphSource::Blob(b) => match decode_graph(&b) {
                    Ok(g) => g,
                    Err(e) => {
                        return Response::Error(RemoteError {
                            domain: ErrorDomain::Protocol,
                            code: WireError::Malformed(String::new()).code(),
                            message: format!("graph blob: {e}"),
                        })
                    }
                },
                GraphSource::Dataset { name: ds, scale } => {
                    match Dataset::ALL.iter().find(|d| d.name() == ds) {
                        Some(d) => d.build_scaled(scale as usize),
                        None => {
                            return gateway_error(
                                GW_UNKNOWN_DATASET,
                                format!("unknown dataset '{ds}'"),
                            )
                        }
                    }
                }
            };
            let spec = GraphSpec::new(workers as usize)
                .with_codec(codec)
                .with_vblocks(vblocks_per_worker as usize);
            match gw.pool.register_graph(&name, graph, spec) {
                Ok((engine, graph_id)) => Response::Registered {
                    engine: engine as u32,
                    graph_id,
                },
                Err(e) => Response::Error(RemoteError {
                    domain: ErrorDomain::Catalog,
                    code: e.code(),
                    message: e.to_string(),
                }),
            }
        }
        Request::Submit(req) => match submit_one(gw, &req) {
            Ok(job_id) => Response::Submitted {
                job_ids: vec![job_id],
            },
            Err(resp) => *resp,
        },
        Request::SubmitBatch(reqs) => {
            // Freeze every engine so the whole batch joins its cohorts
            // before any first grant: the cross-engine schedule becomes
            // a pure function of the batch and the pool seed.
            let pause = gw.pool.pause_all();
            let mut ids = Vec::with_capacity(reqs.len());
            for req in &reqs {
                match submit_one(gw, req) {
                    Ok(id) => ids.push(id),
                    Err(resp) => {
                        drop(pause);
                        return *resp;
                    }
                }
            }
            drop(pause);
            Response::Submitted { job_ids: ids }
        }
        Request::JobStatus { job_id } => match gw.jobs.lock().unwrap().get(&job_id) {
            Some(entry) => Response::Status(entry.status()),
            None => gateway_error(GW_UNKNOWN_JOB, format!("no job {job_id}")),
        },
        Request::Subscribe { .. } => unreachable!("handled by the connection loop"),
        Request::FetchResults { job_id } => {
            let entry = gw.jobs.lock().unwrap().get(&job_id).cloned();
            match entry {
                Some(entry) => match entry.wait_outcome() {
                    Ok(outcome) => Response::Results(outcome),
                    Err((code, message)) => Response::Error(RemoteError {
                        domain: ErrorDomain::Job,
                        code,
                        message,
                    }),
                },
                None => gateway_error(GW_UNKNOWN_JOB, format!("no job {job_id}")),
            }
        }
        Request::Evict { name } => match gw.pool.evict(&name) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Error(RemoteError {
                domain: ErrorDomain::Catalog,
                code: e.code(),
                message: e.to_string(),
            }),
        },
        Request::Metrics => Response::MetricsText(gw.metrics.prometheus(&gw.pool)),
        Request::Shutdown => {
            gw.stopping.store(true, Ordering::SeqCst);
            transport.unblock();
            Response::Ok
        }
    }
}
