//! The frame layer: length-prefixed, versioned binary frames.
//!
//! Every message on a gateway connection travels inside one frame:
//!
//! ```text
//! +-------+---------+------+--------------+------------+
//! | magic | version | kind | len (varint) | body bytes |
//! |  4 B  |   1 B   | 1 B  |   1..10 B    |   len B    |
//! +-------+---------+------+--------------+------------+
//! ```
//!
//! * `magic` is the constant `b"HGWP"` — a stray client speaking another
//!   protocol is rejected on its first four bytes.
//! * `version` is [`VERSION`]; a mismatch is a typed error, never a
//!   silent misparse.
//! * `kind` tags the message (see [`crate::proto`] for the assignments).
//! * `len` is the body length as the same LEB128 varint
//!   `hybridgraph-codec` uses on disk, capped by the receiver's
//!   `max_frame` before any allocation happens.
//!
//! Torn frames are rejected, not healed: a connection that dies mid-frame
//! surfaces [`WireError::Truncated`] and the connection is dropped. (The
//! WAL heals torn *tails* because a log is replayed; a live connection
//! has a peer to re-send.)

use hybridgraph_codec::varint;
use std::fmt;
use std::io::{self, Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HGWP";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Default cap on a frame's body length (64 MiB).
pub const DEFAULT_MAX_FRAME: u64 = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed cleanly before the first byte of a frame.
    Closed,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte did not match [`VERSION`].
    BadVersion(u8),
    /// The declared body length exceeds the receiver's cap.
    FrameTooLarge {
        /// Declared body length.
        len: u64,
        /// The receiver's cap.
        max: u64,
    },
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated(&'static str),
    /// The frame parsed but its body didn't decode as the tagged message.
    Malformed(String),
    /// An I/O error below the frame layer (includes read timeouts).
    Io(io::Error),
}

impl WireError {
    /// Stable numeric code for the wire (protocol error domain). Codes
    /// are append-only — never renumber.
    ///
    /// | code | variant         |
    /// |------|-----------------|
    /// | 1    | `Closed`        |
    /// | 2    | `BadMagic`      |
    /// | 3    | `BadVersion`    |
    /// | 4    | `FrameTooLarge` |
    /// | 5    | `Truncated`     |
    /// | 6    | `Malformed`     |
    /// | 7    | `Io`            |
    pub fn code(&self) -> u16 {
        match self {
            WireError::Closed => 1,
            WireError::BadMagic(_) => 2,
            WireError::BadVersion(_) => 3,
            WireError::FrameTooLarge { .. } => 4,
            WireError::Truncated(_) => 5,
            WireError::Malformed(_) => 6,
            WireError::Io(_) => 7,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (this side speaks {VERSION})")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated(what) => write!(f, "frame truncated reading {what}"),
            WireError::Malformed(e) => write!(f, "malformed frame body: {e}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One decoded frame: the kind tag and the raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind tag.
    pub kind: u8,
    /// Raw body bytes (decoded by [`crate::proto`]).
    pub body: Vec<u8>,
}

/// Encodes one frame into a fresh buffer.
pub fn encode_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 1 + 10 + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    varint::write_u64(&mut out, body.len() as u64);
    out.extend_from_slice(body);
    out
}

/// Writes one frame; returns the number of bytes put on the wire.
pub fn write_frame(w: &mut dyn Write, kind: u8, body: &[u8]) -> io::Result<usize> {
    let bytes = encode_frame(kind, body);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads exactly `buf.len()` bytes, mapping a mid-read EOF to
/// [`WireError::Truncated`] tagged with `what`.
fn read_exact_or(r: &mut dyn Read, buf: &mut [u8], what: &'static str) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated(what)
        } else {
            WireError::Io(e)
        }
    })
}

/// Reads one frame from a stream. Returns [`WireError::Closed`] on a
/// clean EOF *before* a frame starts, [`WireError::Truncated`] on an EOF
/// anywhere inside one. The body is only allocated after the declared
/// length passes the `max_frame` cap, so a hostile length prefix cannot
/// balloon memory. Also returns the total bytes consumed off the wire.
pub fn read_frame(r: &mut dyn Read, max_frame: u64) -> Result<(Frame, usize), WireError> {
    // First byte by hand: a clean close between frames is `Closed`, not
    // `Truncated` — the server treats one as normal and one as an error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(WireError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let mut magic = [0u8; 4];
    magic[0] = first[0];
    read_exact_or(r, &mut magic[1..], "magic")?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut vk = [0u8; 2];
    read_exact_or(r, &mut vk, "version/kind")?;
    if vk[0] != VERSION {
        return Err(WireError::BadVersion(vk[0]));
    }
    let kind = vk[1];
    // LEB128 length, one byte at a time (a stream has no lookahead).
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut len_bytes = 0usize;
    loop {
        let mut b = [0u8; 1];
        read_exact_or(r, &mut b, "length varint")?;
        len_bytes += 1;
        if shift >= 64 || (shift == 63 && b[0] & 0x7e != 0) {
            return Err(WireError::Malformed("length varint overflows u64".into()));
        }
        len |= ((b[0] & 0x7f) as u64) << shift;
        if b[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > max_frame {
        return Err(WireError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or(r, &mut body, "body")?;
    Ok((Frame { kind, body }, 4 + 2 + len_bytes + len as usize))
}

/// Decodes one frame from an in-memory buffer (the fuzz target): returns
/// the frame and the bytes consumed. Exactly the same acceptance rules
/// as [`read_frame`], with buffer exhaustion mapped to
/// [`WireError::Truncated`].
pub fn decode_frame(buf: &[u8], max_frame: u64) -> Result<(Frame, usize), WireError> {
    let mut cursor = io::Cursor::new(buf);
    match read_frame(&mut cursor, max_frame) {
        Ok(ok) => Ok(ok),
        // An in-memory buffer "closing" means it was empty — that is a
        // truncation from the decoder's point of view.
        Err(WireError::Closed) if buf.is_empty() => Err(WireError::Truncated("magic")),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let bytes = encode_frame(7, b"hello");
        let (f, used) = decode_frame(&bytes, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(f.kind, 7);
        assert_eq!(f.body, b"hello");
    }

    #[test]
    fn empty_body_roundtrip() {
        let bytes = encode_frame(0, b"");
        let (f, used) = decode_frame(&bytes, 0).unwrap();
        assert_eq!(used, bytes.len());
        assert!(f.body.is_empty());
    }

    #[test]
    fn oversized_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(1);
        hybridgraph_codec::varint::write_u64(&mut bytes, u64::MAX);
        match decode_frame(&bytes, 1024) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
