//! The message layer: typed requests and responses inside [`crate::wire`]
//! frames.
//!
//! Bodies are encoded with the storage crate's `PayloadWriter` /
//! `PayloadReader` (the same length-prefixed primitives the service WAL
//! uses), so every field is bounds-checked on decode and a malformed
//! body is a typed [`WireError::Malformed`], never a panic.
//!
//! Frame kind assignments (append-only — never renumber):
//!
//! | kind | direction | message         |
//! |------|-----------|-----------------|
//! | 1    | request   | `RegisterGraph` |
//! | 2    | request   | `Submit`        |
//! | 3    | request   | `SubmitBatch`   |
//! | 4    | request   | `JobStatus`     |
//! | 5    | request   | `Subscribe`     |
//! | 6    | request   | `FetchResults`  |
//! | 7    | request   | `Evict`         |
//! | 8    | request   | `Metrics`       |
//! | 9    | request   | `Shutdown`      |
//! | 64   | response  | `Ok`            |
//! | 65   | response  | `Registered`    |
//! | 66   | response  | `Submitted`     |
//! | 67   | response  | `Status`        |
//! | 68   | response  | `Progress`      |
//! | 69   | response  | `Results`       |
//! | 70   | response  | `MetricsText`   |
//! | 127  | response  | `Error`         |

use crate::wire::WireError;
use hybridgraph_core::Mode;
use hybridgraph_storage::{
    codec_from_tag, codec_tag, CodecChoice, PayloadReader, PayloadWriter, Record,
};
use std::fmt;
use std::io;

fn malformed(e: io::Error) -> WireError {
    WireError::Malformed(e.to_string())
}

/// Where a registered graph's bytes come from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// An inline graph blob (`hybridgraph_storage::encode_graph` bytes).
    Blob(Vec<u8>),
    /// A named generated dataset at `1/scale` of the paper's size,
    /// built server-side (`Dataset::build_scaled`).
    Dataset {
        /// Paper short name: `livej`, `wiki`, `orkut`, `twi`, `fri`, `uk`.
        name: String,
        /// Scale denominator.
        scale: u64,
    },
}

/// Which vertex program to run — the full shipped algorithm surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgramSpec {
    /// Fixed-length PageRank.
    PageRank {
        /// Supersteps to run.
        supersteps: u64,
    },
    /// Tolerance-terminated PageRank.
    PageRankUntil {
        /// L1 convergence threshold.
        eps: f64,
        /// Superstep cap.
        cap: u64,
    },
    /// Single-source shortest paths from `source`.
    Sssp {
        /// Source vertex id.
        source: u32,
    },
    /// Fixed-length label propagation.
    Lpa {
        /// Supersteps to run.
        supersteps: u64,
    },
    /// Weakly connected components (runs to convergence).
    Wcc,
    /// The paper's advertisement-simulation workload.
    Sa {
        /// One in `ratio` vertices starts as an advertiser.
        ratio: u32,
        /// Workload seed.
        seed: u64,
    },
}

impl ProgramSpec {
    fn encode(&self, w: &mut PayloadWriter) {
        match self {
            ProgramSpec::PageRank { supersteps } => {
                w.put_u8(1);
                w.put_u64(*supersteps);
            }
            ProgramSpec::PageRankUntil { eps, cap } => {
                w.put_u8(2);
                w.put_f64(*eps);
                w.put_u64(*cap);
            }
            ProgramSpec::Sssp { source } => {
                w.put_u8(3);
                w.put_u32(*source);
            }
            ProgramSpec::Lpa { supersteps } => {
                w.put_u8(4);
                w.put_u64(*supersteps);
            }
            ProgramSpec::Wcc => w.put_u8(5),
            ProgramSpec::Sa { ratio, seed } => {
                w.put_u8(6);
                w.put_u32(*ratio);
                w.put_u64(*seed);
            }
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<ProgramSpec, WireError> {
        Ok(match r.get_u8().map_err(malformed)? {
            1 => ProgramSpec::PageRank {
                supersteps: r.get_u64().map_err(malformed)?,
            },
            2 => ProgramSpec::PageRankUntil {
                eps: r.get_f64().map_err(malformed)?,
                cap: r.get_u64().map_err(malformed)?,
            },
            3 => ProgramSpec::Sssp {
                source: r.get_u32().map_err(malformed)?,
            },
            4 => ProgramSpec::Lpa {
                supersteps: r.get_u64().map_err(malformed)?,
            },
            5 => ProgramSpec::Wcc,
            6 => ProgramSpec::Sa {
                ratio: r.get_u32().map_err(malformed)?,
                seed: r.get_u64().map_err(malformed)?,
            },
            t => return Err(WireError::Malformed(format!("unknown program tag {t}"))),
        })
    }

    /// The [`ValueKind`] this program's per-vertex values decode as.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            ProgramSpec::PageRank { .. } | ProgramSpec::PageRankUntil { .. } => ValueKind::F64,
            ProgramSpec::Sssp { .. } => ValueKind::F32,
            ProgramSpec::Lpa { .. } | ProgramSpec::Wcc => ValueKind::U32,
            ProgramSpec::Sa { .. } => ValueKind::U64U32,
        }
    }
}

/// Wire tag of a job's per-vertex value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// `f64` (PageRank).
    F64 = 1,
    /// `f32` (SSSP).
    F32 = 2,
    /// `u32` (LPA, WCC).
    U32 = 3,
    /// `(u64, u32)` (SA).
    U64U32 = 4,
}

impl ValueKind {
    /// Decodes the tag.
    pub fn from_tag(t: u8) -> Result<ValueKind, WireError> {
        Ok(match t {
            1 => ValueKind::F64,
            2 => ValueKind::F32,
            3 => ValueKind::U32,
            4 => ValueKind::U64U32,
            _ => return Err(WireError::Malformed(format!("unknown value kind {t}"))),
        })
    }
}

/// Encodes per-vertex values generically: `count:u64` then fixed-width
/// [`Record`] bytes. This is the exact value encoding of `FetchResults`,
/// so byte-identity of two runs' values is byte-identity of these blobs.
pub fn encode_values<V: Record>(vals: &[V]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + vals.len() * V::BYTES);
    out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    for v in vals {
        v.append_to(&mut out);
    }
    out
}

/// Decodes a value blob produced by [`encode_values`].
pub fn decode_values<V: Record>(buf: &[u8]) -> Result<Vec<V>, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Malformed("value blob shorter than count".into()));
    }
    let count = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
    let need = count
        .checked_mul(V::BYTES)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| WireError::Malformed("value count overflows".into()))?;
    if buf.len() != need {
        return Err(WireError::Malformed(format!(
            "value blob is {} bytes, {count} records need {need}",
            buf.len()
        )));
    }
    Ok((0..count)
        .map(|i| V::read_from(&buf[8 + i * V::BYTES..8 + (i + 1) * V::BYTES]))
        .collect())
}

/// Per-job knobs a client may set; everything else stays at the
/// service's defaults (and the layout fields always come from the
/// registered spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOptions {
    /// Execution mode.
    pub mode: Mode,
    /// Per-worker message buffer; `u64::MAX` means ample memory.
    pub buffer_messages: u64,
    /// Collect a Chrome trace server-side (fetch it with the results).
    pub trace: bool,
    /// Superstep cap; `0` keeps the engine default.
    pub max_supersteps: u64,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            mode: Mode::Hybrid,
            buffer_messages: u64::MAX,
            trace: false,
            max_supersteps: 0,
        }
    }
}

impl JobOptions {
    fn encode(&self, w: &mut PayloadWriter) {
        w.put_str(self.mode.label());
        w.put_u64(self.buffer_messages);
        w.put_u8(self.trace as u8);
        w.put_u64(self.max_supersteps);
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<JobOptions, WireError> {
        let mode: Mode = r
            .get_str()
            .map_err(malformed)?
            .parse()
            .map_err(WireError::Malformed)?;
        Ok(JobOptions {
            mode,
            buffer_messages: r.get_u64().map_err(malformed)?,
            trace: r.get_u8().map_err(malformed)? != 0,
            max_supersteps: r.get_u64().map_err(malformed)?,
        })
    }
}

/// One job submission inside `Submit` / `SubmitBatch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReq {
    /// Registered graph name.
    pub graph: String,
    /// Program to run.
    pub program: ProgramSpec,
    /// Job knobs.
    pub options: JobOptions,
}

impl SubmitReq {
    fn encode(&self, w: &mut PayloadWriter) {
        w.put_str(&self.graph);
        self.program.encode(w);
        self.options.encode(w);
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<SubmitReq, WireError> {
        Ok(SubmitReq {
            graph: r.get_str().map_err(malformed)?,
            program: ProgramSpec::decode(r)?,
            options: JobOptions::decode(r)?,
        })
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a graph under a name; its home engine is the placement
    /// hash of the name.
    RegisterGraph {
        /// Catalog name.
        name: String,
        /// Worker (computational-node) count to build stores for.
        workers: u32,
        /// Vblocks per worker.
        vblocks_per_worker: u32,
        /// On-disk codec for the stores.
        codec: CodecChoice,
        /// The graph bytes (inline blob or server-side dataset build).
        source: GraphSource,
    },
    /// Submit one job.
    Submit(SubmitReq),
    /// Submit a batch atomically: every engine's scheduler is frozen
    /// until the whole batch has joined, so the cross-job schedule is a
    /// pure function of the batch and the pool seed.
    SubmitBatch(Vec<SubmitReq>),
    /// Snapshot a job's state (non-blocking).
    JobStatus {
        /// Gateway job id.
        job_id: u64,
    },
    /// Stream progress events until the job reaches a terminal state.
    Subscribe {
        /// Gateway job id.
        job_id: u64,
    },
    /// Block until the job finishes and return its full outcome.
    FetchResults {
        /// Gateway job id.
        job_id: u64,
    },
    /// Evict a registered graph from its home engine.
    Evict {
        /// Catalog name.
        name: String,
    },
    /// Fetch the gateway's Prometheus gauge exposition.
    Metrics,
    /// Stop accepting connections; in-flight jobs finish.
    Shutdown,
}

impl Request {
    /// Encodes into `(frame kind, body)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = PayloadWriter::new();
        let kind = match self {
            Request::RegisterGraph {
                name,
                workers,
                vblocks_per_worker,
                codec,
                source,
            } => {
                w.put_str(name);
                w.put_u32(*workers);
                w.put_u32(*vblocks_per_worker);
                w.put_u8(codec_tag(*codec));
                match source {
                    GraphSource::Blob(b) => {
                        w.put_u8(0);
                        w.put_bytes(b);
                    }
                    GraphSource::Dataset { name, scale } => {
                        w.put_u8(1);
                        w.put_str(name);
                        w.put_u64(*scale);
                    }
                }
                1
            }
            Request::Submit(req) => {
                req.encode(&mut w);
                2
            }
            Request::SubmitBatch(reqs) => {
                w.put_u32(reqs.len() as u32);
                for r in reqs {
                    r.encode(&mut w);
                }
                3
            }
            Request::JobStatus { job_id } => {
                w.put_u64(*job_id);
                4
            }
            Request::Subscribe { job_id } => {
                w.put_u64(*job_id);
                5
            }
            Request::FetchResults { job_id } => {
                w.put_u64(*job_id);
                6
            }
            Request::Evict { name } => {
                w.put_str(name);
                7
            }
            Request::Metrics => 8,
            Request::Shutdown => 9,
        };
        (kind, w.into_bytes())
    }

    /// Decodes a request frame. The whole body must be consumed —
    /// trailing garbage is malformed.
    pub fn decode(kind: u8, body: &[u8]) -> Result<Request, WireError> {
        let mut r = PayloadReader::new(body);
        let req = match kind {
            1 => {
                let name = r.get_str().map_err(malformed)?;
                let workers = r.get_u32().map_err(malformed)?;
                let vblocks_per_worker = r.get_u32().map_err(malformed)?;
                let codec = codec_from_tag(r.get_u8().map_err(malformed)?).map_err(malformed)?;
                let source = match r.get_u8().map_err(malformed)? {
                    0 => GraphSource::Blob(r.get_bytes().map_err(malformed)?),
                    1 => GraphSource::Dataset {
                        name: r.get_str().map_err(malformed)?,
                        scale: r.get_u64().map_err(malformed)?,
                    },
                    t => return Err(WireError::Malformed(format!("unknown graph source {t}"))),
                };
                Request::RegisterGraph {
                    name,
                    workers,
                    vblocks_per_worker,
                    codec,
                    source,
                }
            }
            2 => Request::Submit(SubmitReq::decode(&mut r)?),
            3 => {
                let n = r.get_u32().map_err(malformed)?;
                let mut reqs = Vec::new();
                for _ in 0..n {
                    reqs.push(SubmitReq::decode(&mut r)?);
                }
                Request::SubmitBatch(reqs)
            }
            4 => Request::JobStatus {
                job_id: r.get_u64().map_err(malformed)?,
            },
            5 => Request::Subscribe {
                job_id: r.get_u64().map_err(malformed)?,
            },
            6 => Request::FetchResults {
                job_id: r.get_u64().map_err(malformed)?,
            },
            7 => Request::Evict {
                name: r.get_str().map_err(malformed)?,
            },
            8 => Request::Metrics,
            9 => Request::Shutdown,
            k => return Err(WireError::Malformed(format!("unknown request kind {k}"))),
        };
        if !r.done() {
            return Err(WireError::Malformed("trailing bytes after request".into()));
        }
        Ok(req)
    }
}

/// Which subsystem produced a [`RemoteError`]'s code. Tags are
/// append-only — never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorDomain {
    /// [`WireError::code`] values.
    Protocol = 1,
    /// `AdmissionError::code` values.
    Admission = 2,
    /// `JobError::code` values.
    Job = 3,
    /// `CatalogError::code` values.
    Catalog = 4,
    /// Gateway-level codes: 1 = unknown job id, 2 = shutting down,
    /// 3 = unknown dataset name.
    Gateway = 5,
}

impl ErrorDomain {
    fn from_tag(t: u8) -> Result<ErrorDomain, WireError> {
        Ok(match t {
            1 => ErrorDomain::Protocol,
            2 => ErrorDomain::Admission,
            3 => ErrorDomain::Job,
            4 => ErrorDomain::Catalog,
            5 => ErrorDomain::Gateway,
            _ => return Err(WireError::Malformed(format!("unknown error domain {t}"))),
        })
    }
}

/// Gateway-domain code: the job id is not (and never was) registered.
pub const GW_UNKNOWN_JOB: u16 = 1;
/// Gateway-domain code: the server is shutting down.
pub const GW_SHUTTING_DOWN: u16 = 2;
/// Gateway-domain code: `GraphSource::Dataset` named an unknown dataset.
pub const GW_UNKNOWN_DATASET: u16 = 3;

/// A typed error sent over the wire: clients match on `(domain, code)` —
/// both stable — and keep `message` for humans only.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteError {
    /// Which error table `code` indexes.
    pub domain: ErrorDomain,
    /// The stable numeric code within the domain.
    pub code: u16,
    /// Human-readable rendering (never match on this).
    pub message: String,
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} error {} from the gateway: {}",
            self.domain, self.code, self.message
        )
    }
}

impl std::error::Error for RemoteError {}

/// One progress event of a running job, in event order.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The load phase finished.
    Loaded {
        /// Modeled load seconds.
        modeled_secs: f64,
    },
    /// A superstep barrier completed.
    Superstep {
        /// The superstep number (1-based, as the engine counts).
        superstep: u64,
        /// The mode the step ran under.
        mode: Mode,
        /// The step's modeled seconds.
        modeled_secs: f64,
    },
    /// Terminal: the job finished; fetch its results.
    Done,
    /// Terminal: the job failed with a `JobError` code.
    Failed {
        /// `JobError::code` value.
        code: u16,
        /// Human-readable rendering.
        message: String,
    },
}

impl ProgressEvent {
    fn encode(&self, w: &mut PayloadWriter) {
        match self {
            ProgressEvent::Loaded { modeled_secs } => {
                w.put_u8(1);
                w.put_f64(*modeled_secs);
            }
            ProgressEvent::Superstep {
                superstep,
                mode,
                modeled_secs,
            } => {
                w.put_u8(2);
                w.put_u64(*superstep);
                w.put_str(mode.label());
                w.put_f64(*modeled_secs);
            }
            ProgressEvent::Done => w.put_u8(3),
            ProgressEvent::Failed { code, message } => {
                w.put_u8(4);
                w.put_u32(*code as u32);
                w.put_str(message);
            }
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<ProgressEvent, WireError> {
        Ok(match r.get_u8().map_err(malformed)? {
            1 => ProgressEvent::Loaded {
                modeled_secs: r.get_f64().map_err(malformed)?,
            },
            2 => ProgressEvent::Superstep {
                superstep: r.get_u64().map_err(malformed)?,
                mode: r
                    .get_str()
                    .map_err(malformed)?
                    .parse()
                    .map_err(WireError::Malformed)?,
                modeled_secs: r.get_f64().map_err(malformed)?,
            },
            3 => ProgressEvent::Done,
            4 => ProgressEvent::Failed {
                code: r.get_u32().map_err(malformed)? as u16,
                message: r.get_str().map_err(malformed)?,
            },
            t => return Err(WireError::Malformed(format!("unknown progress tag {t}"))),
        })
    }

    /// True for `Done` / `Failed`.
    pub fn is_terminal(&self) -> bool {
        matches!(self, ProgressEvent::Done | ProgressEvent::Failed { .. })
    }
}

/// A job-state snapshot (`JobStatus` response).
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatusInfo {
    /// Admitted; the engine has not completed a superstep yet.
    Running {
        /// Superstep barriers completed so far.
        supersteps_done: u64,
    },
    /// Finished; results are fetchable.
    Done,
    /// Failed with a `JobError` code.
    Failed {
        /// `JobError::code` value.
        code: u16,
        /// Human-readable rendering.
        message: String,
    },
}

impl JobStatusInfo {
    fn encode(&self, w: &mut PayloadWriter) {
        match self {
            JobStatusInfo::Running { supersteps_done } => {
                w.put_u8(1);
                w.put_u64(*supersteps_done);
            }
            JobStatusInfo::Done => w.put_u8(2),
            JobStatusInfo::Failed { code, message } => {
                w.put_u8(3);
                w.put_u32(*code as u32);
                w.put_str(message);
            }
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<JobStatusInfo, WireError> {
        Ok(match r.get_u8().map_err(malformed)? {
            1 => JobStatusInfo::Running {
                supersteps_done: r.get_u64().map_err(malformed)?,
            },
            2 => JobStatusInfo::Done,
            3 => JobStatusInfo::Failed {
                code: r.get_u32().map_err(malformed)? as u16,
                message: r.get_str().map_err(malformed)?,
            },
            t => return Err(WireError::Malformed(format!("unknown status tag {t}"))),
        })
    }
}

/// A finished job's full outcome (`FetchResults` response). The value,
/// audit and trace bytes are exactly what the engine produced — the
/// byte-identity guarantees compare these blobs directly.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Tag of the per-vertex value type.
    pub value_kind: ValueKind,
    /// [`encode_values`] blob of the final per-vertex values.
    pub values: Vec<u8>,
    /// `encode_qt_audits` blob of the job's `Q_t` decision records.
    pub audits: Vec<u8>,
    /// Chrome trace JSON, when the submission asked for tracing.
    pub trace: Option<String>,
    /// Modeled seconds, load included.
    pub modeled_secs: f64,
    /// Physical I/O bytes.
    pub physical_bytes: u64,
    /// Logical I/O bytes.
    pub logical_bytes: u64,
    /// Supersteps executed.
    pub supersteps: u64,
    /// Mode switches as `"t:from->to"` strings, superstep order.
    pub switches: Vec<String>,
}

impl JobOutcome {
    /// The values as `f64` (PageRank jobs).
    pub fn values_f64(&self) -> Result<Vec<f64>, WireError> {
        decode_values(&self.values)
    }

    /// The values as `f32` (SSSP jobs).
    pub fn values_f32(&self) -> Result<Vec<f32>, WireError> {
        decode_values(&self.values)
    }

    /// The values as `u32` (LPA / WCC jobs).
    pub fn values_u32(&self) -> Result<Vec<u32>, WireError> {
        decode_values(&self.values)
    }

    fn encode(&self, w: &mut PayloadWriter) {
        w.put_u8(self.value_kind as u8);
        w.put_bytes(&self.values);
        w.put_bytes(&self.audits);
        match &self.trace {
            Some(t) => {
                w.put_u8(1);
                w.put_str(t);
            }
            None => w.put_u8(0),
        }
        w.put_f64(self.modeled_secs);
        w.put_u64(self.physical_bytes);
        w.put_u64(self.logical_bytes);
        w.put_u64(self.supersteps);
        w.put_u32(self.switches.len() as u32);
        for s in &self.switches {
            w.put_str(s);
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<JobOutcome, WireError> {
        let value_kind = ValueKind::from_tag(r.get_u8().map_err(malformed)?)?;
        let values = r.get_bytes().map_err(malformed)?;
        let audits = r.get_bytes().map_err(malformed)?;
        let trace = match r.get_u8().map_err(malformed)? {
            0 => None,
            _ => Some(r.get_str().map_err(malformed)?),
        };
        let modeled_secs = r.get_f64().map_err(malformed)?;
        let physical_bytes = r.get_u64().map_err(malformed)?;
        let logical_bytes = r.get_u64().map_err(malformed)?;
        let supersteps = r.get_u64().map_err(malformed)?;
        let n = r.get_u32().map_err(malformed)?;
        let mut switches = Vec::new();
        for _ in 0..n {
            switches.push(r.get_str().map_err(malformed)?);
        }
        Ok(JobOutcome {
            value_kind,
            values,
            audits,
            trace,
            modeled_secs,
            physical_bytes,
            logical_bytes,
            supersteps,
            switches,
        })
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with nothing to return (`Evict`, `Shutdown`).
    Ok,
    /// `RegisterGraph` succeeded.
    Registered {
        /// The engine the graph was placed on.
        engine: u32,
        /// The engine-local graph id.
        graph_id: u32,
    },
    /// `Submit` / `SubmitBatch` succeeded; one id per request, in order.
    Submitted {
        /// Gateway job ids.
        job_ids: Vec<u64>,
    },
    /// `JobStatus` snapshot, also the terminal frame of a `Subscribe`
    /// stream.
    Status(JobStatusInfo),
    /// One streamed `Subscribe` event.
    Progress(ProgressEvent),
    /// `FetchResults` payload.
    Results(JobOutcome),
    /// `Metrics` exposition text.
    MetricsText(String),
    /// Typed failure.
    Error(RemoteError),
}

impl Response {
    /// Encodes into `(frame kind, body)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = PayloadWriter::new();
        let kind = match self {
            Response::Ok => 64,
            Response::Registered { engine, graph_id } => {
                w.put_u32(*engine);
                w.put_u32(*graph_id);
                65
            }
            Response::Submitted { job_ids } => {
                w.put_u32(job_ids.len() as u32);
                for id in job_ids {
                    w.put_u64(*id);
                }
                66
            }
            Response::Status(s) => {
                s.encode(&mut w);
                67
            }
            Response::Progress(p) => {
                p.encode(&mut w);
                68
            }
            Response::Results(o) => {
                o.encode(&mut w);
                69
            }
            Response::MetricsText(t) => {
                w.put_str(t);
                70
            }
            Response::Error(e) => {
                w.put_u8(e.domain as u8);
                w.put_u32(e.code as u32);
                w.put_str(&e.message);
                127
            }
        };
        (kind, w.into_bytes())
    }

    /// Decodes a response frame; the whole body must be consumed.
    pub fn decode(kind: u8, body: &[u8]) -> Result<Response, WireError> {
        let mut r = PayloadReader::new(body);
        let resp = match kind {
            64 => Response::Ok,
            65 => Response::Registered {
                engine: r.get_u32().map_err(malformed)?,
                graph_id: r.get_u32().map_err(malformed)?,
            },
            66 => {
                let n = r.get_u32().map_err(malformed)?;
                let mut job_ids = Vec::new();
                for _ in 0..n {
                    job_ids.push(r.get_u64().map_err(malformed)?);
                }
                Response::Submitted { job_ids }
            }
            67 => Response::Status(JobStatusInfo::decode(&mut r)?),
            68 => Response::Progress(ProgressEvent::decode(&mut r)?),
            69 => Response::Results(JobOutcome::decode(&mut r)?),
            70 => Response::MetricsText(r.get_str().map_err(malformed)?),
            127 => Response::Error(RemoteError {
                domain: ErrorDomain::from_tag(r.get_u8().map_err(malformed)?)?,
                code: r.get_u32().map_err(malformed)? as u16,
                message: r.get_str().map_err(malformed)?,
            }),
            k => return Err(WireError::Malformed(format!("unknown response kind {k}"))),
        };
        if !r.done() {
            return Err(WireError::Malformed("trailing bytes after response".into()));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let (kind, body) = req.encode();
        assert_eq!(Request::decode(kind, &body).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let (kind, body) = resp.encode();
        assert_eq!(Response::decode(kind, &body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::RegisterGraph {
            name: "g".into(),
            workers: 4,
            vblocks_per_worker: 2,
            codec: CodecChoice::None,
            source: GraphSource::Blob(vec![1, 2, 3]),
        });
        roundtrip_req(Request::RegisterGraph {
            name: "d".into(),
            workers: 2,
            vblocks_per_worker: 1,
            codec: CodecChoice::None,
            source: GraphSource::Dataset {
                name: "livej".into(),
                scale: 20_000,
            },
        });
        roundtrip_req(Request::Submit(SubmitReq {
            graph: "g".into(),
            program: ProgramSpec::PageRank { supersteps: 5 },
            options: JobOptions::default(),
        }));
        roundtrip_req(Request::SubmitBatch(vec![
            SubmitReq {
                graph: "a".into(),
                program: ProgramSpec::Wcc,
                options: JobOptions {
                    mode: Mode::Push,
                    buffer_messages: 1000,
                    trace: true,
                    max_supersteps: 30,
                },
            },
            SubmitReq {
                graph: "b".into(),
                program: ProgramSpec::Sa { ratio: 8, seed: 7 },
                options: JobOptions::default(),
            },
        ]));
        roundtrip_req(Request::JobStatus { job_id: 9 });
        roundtrip_req(Request::Subscribe { job_id: 10 });
        roundtrip_req(Request::FetchResults { job_id: 11 });
        roundtrip_req(Request::Evict { name: "g".into() });
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Registered {
            engine: 3,
            graph_id: 1,
        });
        roundtrip_resp(Response::Submitted {
            job_ids: vec![0, 1, 2],
        });
        roundtrip_resp(Response::Status(JobStatusInfo::Running {
            supersteps_done: 4,
        }));
        roundtrip_resp(Response::Status(JobStatusInfo::Failed {
            code: 2,
            message: "budget".into(),
        }));
        roundtrip_resp(Response::Progress(ProgressEvent::Superstep {
            superstep: 3,
            mode: Mode::BPull,
            modeled_secs: 1.5,
        }));
        roundtrip_resp(Response::Results(JobOutcome {
            value_kind: ValueKind::F64,
            values: encode_values(&[1.0f64, 2.0]),
            audits: vec![9, 9],
            trace: Some("{}".into()),
            modeled_secs: 2.25,
            physical_bytes: 100,
            logical_bytes: 80,
            supersteps: 5,
            switches: vec!["2:push->b-pull".into()],
        }));
        roundtrip_resp(Response::MetricsText("# TYPE x gauge\n".into()));
        roundtrip_resp(Response::Error(RemoteError {
            domain: ErrorDomain::Admission,
            code: 1,
            message: "no graph named 'x'".into(),
        }));
    }

    #[test]
    fn values_roundtrip_and_reject_mismatch() {
        let blob = encode_values(&[1.0f64, 2.5, -3.0]);
        assert_eq!(decode_values::<f64>(&blob).unwrap(), vec![1.0, 2.5, -3.0]);
        assert!(decode_values::<f32>(&blob).is_err());
        assert!(decode_values::<f64>(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let (kind, mut body) = Request::Shutdown.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(kind, &body),
            Err(WireError::Malformed(_))
        ));
    }
}
