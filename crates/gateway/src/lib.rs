//! Network front door for the HybridGraph service.
//!
//! This crate turns the in-process [`GraphService`] engine into a
//! networked system without giving up any of the repo's determinism
//! guarantees:
//!
//! * [`wire`] — a length-prefixed, versioned binary frame layer
//!   (`HGWP` magic, LEB128 varint lengths reusing `hybridgraph-codec`,
//!   torn-frame rejection, max-frame caps checked before allocation).
//! * [`proto`] — the request/response messages those frames carry:
//!   RegisterGraph (spec or inline blob), Submit / SubmitBatch,
//!   JobStatus, Subscribe (streamed superstep progress), FetchResults,
//!   Evict, Metrics, Shutdown. Every engine error crosses the wire as a
//!   stable `(domain, code)` pair.
//! * [`transport`] — one [`Transport`] trait, two carriers: a
//!   deterministic in-process loopback and real TCP with read timeouts.
//! * [`server`] — [`GatewayServer`]: accept loop, per-connection
//!   handler threads, dispatch into an [`EnginePool`] of N independent
//!   engines with deterministic hash placement.
//! * [`client`] — [`GatewayClient`]: the typed client library used by
//!   the `repro client` CLI, tests, and benches.
//! * [`metrics`] — frame/byte counters and per-engine queue depths,
//!   exported in Prometheus text format via `hybridgraph-obs`.
//!
//! Determinism: progress streaming is observation-only (events are
//! emitted after the engine's virtual-time pacer has already released
//! each superstep), and engine 0 of a pool keeps the base seed, so a
//! job submitted through the gateway over loopback produces values,
//! audit records, and traces byte-identical to calling
//! `GraphService::submit` directly.
//!
//! [`GraphService`]: hybridgraph_service::GraphService
//! [`EnginePool`]: hybridgraph_service::EnginePool
//! [`Transport`]: transport::Transport
//! [`GatewayServer`]: server::GatewayServer
//! [`GatewayClient`]: client::GatewayClient

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{ClientError, GatewayClient};
pub use metrics::GatewayMetrics;
pub use proto::{
    ErrorDomain, GraphSource, JobOptions, JobOutcome, JobStatusInfo, ProgramSpec, ProgressEvent,
    RemoteError, Request, Response, SubmitReq, ValueKind,
};
pub use server::{GatewayConfig, GatewayServer, ServerHandle};
pub use transport::{Conn, LoopbackTransport, TcpTransport, Transport};
pub use wire::{Frame, WireError, DEFAULT_MAX_FRAME, MAGIC, VERSION};
