//! Gateway observability: frame/byte counters plus per-engine queue
//! depths, rendered through `hybridgraph-obs`'s Prometheus exposition.

use hybridgraph_obs::{export_prometheus_gauges, ExtraMetric};
use hybridgraph_service::EnginePool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of one gateway's wire activity. All updates are
/// relaxed atomics off the hot path (one bump per frame).
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    rejected_frames: AtomicU64,
    timeouts: AtomicU64,
}

impl GatewayMetrics {
    /// Records one inbound frame of `nbytes` wire bytes.
    pub fn frame_in(&self, nbytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(nbytes as u64, Ordering::Relaxed);
    }

    /// Records one outbound frame of `nbytes` wire bytes.
    pub fn frame_out(&self, nbytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(nbytes as u64, Ordering::Relaxed);
    }

    /// Records one rejected frame (framing or body decode failure).
    pub fn reject(&self) {
        self.rejected_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection closed by read timeout.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Inbound frame count.
    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    /// Outbound frame count.
    pub fn frames_out(&self) -> u64 {
        self.frames_out.load(Ordering::Relaxed)
    }

    /// Inbound wire bytes.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Outbound wire bytes.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Rejected frames.
    pub fn rejected_frames(&self) -> u64 {
        self.rejected_frames.load(Ordering::Relaxed)
    }

    /// The counters plus `pool`'s per-engine queue depths as exposition
    /// gauges.
    pub fn extras(&self, pool: &EnginePool) -> Vec<ExtraMetric> {
        let mut extras = vec![
            ExtraMetric::new("gateway_frames_in_total", self.frames_in() as f64),
            ExtraMetric::new("gateway_frames_out_total", self.frames_out() as f64),
            ExtraMetric::new("gateway_bytes_in_total", self.bytes_in() as f64),
            ExtraMetric::new("gateway_bytes_out_total", self.bytes_out() as f64),
            ExtraMetric::new(
                "gateway_rejected_frames_total",
                self.rejected_frames() as f64,
            ),
            ExtraMetric::new(
                "gateway_read_timeouts_total",
                self.timeouts.load(Ordering::Relaxed) as f64,
            ),
            ExtraMetric::new("gateway_engines", pool.engines() as f64),
        ];
        for (i, (resident, queued)) in pool.queue_depths().into_iter().enumerate() {
            extras.push(
                ExtraMetric::new("gateway_engine_resident_jobs", resident as f64)
                    .label("engine", i.to_string()),
            );
            extras.push(
                ExtraMetric::new("gateway_engine_queued_jobs", queued as f64)
                    .label("engine", i.to_string()),
            );
        }
        extras
    }

    /// Prometheus text exposition of [`GatewayMetrics::extras`].
    pub fn prometheus(&self, pool: &EnginePool) -> String {
        export_prometheus_gauges(&self.extras(pool))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_service::ServiceConfig;

    #[test]
    fn exposition_has_counters_and_per_engine_gauges() {
        let pool = EnginePool::new(ServiceConfig::default(), 2);
        let m = GatewayMetrics::default();
        m.frame_in(10);
        m.frame_out(20);
        m.reject();
        let text = m.prometheus(&pool);
        assert!(text.contains("hybridgraph_gateway_frames_in_total 1"));
        assert!(text.contains("hybridgraph_gateway_bytes_out_total 20"));
        assert!(text.contains("hybridgraph_gateway_rejected_frames_total 1"));
        assert!(text.contains("hybridgraph_gateway_engine_queued_jobs{engine=\"0\"} 0"));
        assert!(text.contains("hybridgraph_gateway_engine_queued_jobs{engine=\"1\"} 0"));
    }
}
