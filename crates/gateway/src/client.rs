//! The [`GatewayClient`] library: a typed façade over one connection.
//!
//! One client owns one [`Conn`] and issues requests in order; every
//! engine-side failure comes back as a typed
//! [`RemoteError`](crate::proto::RemoteError) whose `(domain, code)`
//! pair round-trips the server's `AdmissionError` / `JobError` /
//! `CatalogError` codes — match on those, never on message strings.

use crate::proto::{
    GraphSource, JobOptions, JobOutcome, JobStatusInfo, ProgramSpec, ProgressEvent, RemoteError,
    Request, Response, SubmitReq,
};
use crate::transport::{Conn, LoopbackTransport, TcpTransport};
use crate::wire::{self, WireError, DEFAULT_MAX_FRAME};
use hybridgraph_graph::Graph;
use hybridgraph_storage::{encode_graph, CodecChoice};
use std::fmt;
use std::io;
use std::net::ToSocketAddrs;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection or frame layer failed.
    Wire(WireError),
    /// The server answered with a typed error.
    Remote(RemoteError),
    /// The server answered with a response of the wrong shape.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(e) => write!(f, "{e}"),
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response (wanted {what})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            ClientError::Remote(e) => Some(e),
            ClientError::Unexpected(_) => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// The remote `(domain, code)` pair, if this is a typed remote
    /// failure.
    pub fn remote_code(&self) -> Option<(crate::proto::ErrorDomain, u16)> {
        match self {
            ClientError::Remote(e) => Some((e.domain, e.code)),
            _ => None,
        }
    }
}

/// A typed client over one gateway connection.
pub struct GatewayClient {
    conn: Box<dyn Conn>,
    max_frame: u64,
}

impl GatewayClient {
    /// Wraps an established connection.
    pub fn new(conn: Box<dyn Conn>) -> GatewayClient {
        GatewayClient {
            conn,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Connects over an in-process loopback transport.
    pub fn connect_loopback(transport: &LoopbackTransport) -> io::Result<GatewayClient> {
        Ok(GatewayClient::new(transport.connect()?))
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<GatewayClient> {
        Ok(GatewayClient::new(TcpTransport::connect(addr)?))
    }

    /// Caps response frame bodies (mirror of the server-side cap).
    pub fn with_max_frame(mut self, max: u64) -> GatewayClient {
        self.max_frame = max;
        self
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let (kind, body) = req.encode();
        wire::write_frame(&mut *self.conn, kind, &body).map_err(WireError::Io)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let (frame, _) = wire::read_frame(&mut *self.conn, self.max_frame)?;
        let resp = Response::decode(frame.kind, &frame.body)?;
        if let Response::Error(e) = resp {
            return Err(ClientError::Remote(e));
        }
        Ok(resp)
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Registers `graph` under `name`, shipping it as an inline blob.
    /// Returns `(engine index, engine-local graph id)`.
    pub fn register_graph(
        &mut self,
        name: &str,
        graph: &Graph,
        workers: usize,
        vblocks_per_worker: usize,
        codec: CodecChoice,
    ) -> Result<(u32, u32), ClientError> {
        self.register(
            name,
            workers,
            vblocks_per_worker,
            codec,
            GraphSource::Blob(encode_graph(graph)),
        )
    }

    /// Registers a server-side generated dataset (`livej`, `wiki`,
    /// `orkut`, `twi`, `fri`, `uk`) at `1/scale` of the paper's size.
    pub fn register_dataset(
        &mut self,
        name: &str,
        dataset: &str,
        scale: u64,
        workers: usize,
        vblocks_per_worker: usize,
        codec: CodecChoice,
    ) -> Result<(u32, u32), ClientError> {
        self.register(
            name,
            workers,
            vblocks_per_worker,
            codec,
            GraphSource::Dataset {
                name: dataset.to_string(),
                scale,
            },
        )
    }

    fn register(
        &mut self,
        name: &str,
        workers: usize,
        vblocks_per_worker: usize,
        codec: CodecChoice,
        source: GraphSource,
    ) -> Result<(u32, u32), ClientError> {
        match self.call(&Request::RegisterGraph {
            name: name.to_string(),
            workers: workers as u32,
            vblocks_per_worker: vblocks_per_worker as u32,
            codec,
            source,
        })? {
            Response::Registered { engine, graph_id } => Ok((engine, graph_id)),
            _ => Err(ClientError::Unexpected("Registered")),
        }
    }

    /// Submits one job; returns its gateway job id.
    pub fn submit(
        &mut self,
        graph: &str,
        program: ProgramSpec,
        options: JobOptions,
    ) -> Result<u64, ClientError> {
        match self.call(&Request::Submit(SubmitReq {
            graph: graph.to_string(),
            program,
            options,
        }))? {
            Response::Submitted { job_ids } if job_ids.len() == 1 => Ok(job_ids[0]),
            _ => Err(ClientError::Unexpected("Submitted")),
        }
    }

    /// Submits a batch atomically: every engine's scheduler is frozen
    /// until the whole batch has joined, so the cross-job schedule is
    /// deterministic. Returns one job id per request, in order.
    pub fn submit_batch(&mut self, reqs: Vec<SubmitReq>) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::SubmitBatch(reqs))? {
            Response::Submitted { job_ids } => Ok(job_ids),
            _ => Err(ClientError::Unexpected("Submitted")),
        }
    }

    /// Snapshots a job's state (non-blocking).
    pub fn status(&mut self, job_id: u64) -> Result<JobStatusInfo, ClientError> {
        match self.call(&Request::JobStatus { job_id })? {
            Response::Status(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Status")),
        }
    }

    /// Streams a job's progress events into `on_event` until the job
    /// reaches a terminal state; returns the final status.
    pub fn subscribe(
        &mut self,
        job_id: u64,
        mut on_event: impl FnMut(&ProgressEvent),
    ) -> Result<JobStatusInfo, ClientError> {
        self.send(&Request::Subscribe { job_id })?;
        loop {
            match self.recv()? {
                Response::Progress(ev) => on_event(&ev),
                Response::Status(s) => return Ok(s),
                _ => return Err(ClientError::Unexpected("Progress/Status")),
            }
        }
    }

    /// Blocks until the job finishes and returns its full outcome. A
    /// failed job surfaces as `ClientError::Remote` in the `Job` domain
    /// with the engine's stable `JobError` code.
    pub fn fetch(&mut self, job_id: u64) -> Result<JobOutcome, ClientError> {
        match self.call(&Request::FetchResults { job_id })? {
            Response::Results(o) => Ok(o),
            _ => Err(ClientError::Unexpected("Results")),
        }
    }

    /// Evicts a registered graph from its home engine.
    pub fn evict(&mut self, name: &str) -> Result<(), ClientError> {
        match self.call(&Request::Evict {
            name: name.to_string(),
        })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("Ok")),
        }
    }

    /// Fetches the gateway's Prometheus gauge exposition.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsText(t) => Ok(t),
            _ => Err(ClientError::Unexpected("MetricsText")),
        }
    }

    /// Asks the server to stop accepting connections (in-flight jobs
    /// finish).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("Ok")),
        }
    }
}
