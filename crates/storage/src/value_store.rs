//! Disk-resident vertex-value segment.
//!
//! The paper assumes graph data (vertices and edges) reside on disk (§3).
//! Vertex values are stored as fixed-width records in vertex-id order, so a
//! Vblock's values form one contiguous run: block reads/writes are
//! sequential, while the svertex lookups Pull-Respond performs while
//! scanning fragments are random reads (the paper's `IO(V^t_rr)` term).

use crate::record::{decode_slice, encode_slice, Record};
use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_graph::VertexId;
use std::io;
use std::marker::PhantomData;
use std::ops::Range;

/// Fixed-width vertex values for one worker's contiguous vertex range.
pub struct ValueStore<V: Record> {
    file: VfsFile,
    /// First vertex id owned by this store.
    base: u32,
    /// Number of vertices in the store.
    count: usize,
    _marker: PhantomData<V>,
}

impl<V: Record> ValueStore<V> {
    /// Creates the store for vertices `base..base + values.len()` and
    /// writes the initial values sequentially.
    pub fn create(vfs: &dyn Vfs, name: &str, base: u32, values: &[V]) -> io::Result<ValueStore<V>> {
        let file = vfs.create(name)?;
        file.append(AccessClass::SeqWrite, &encode_slice(values))?;
        Ok(ValueStore {
            file,
            base,
            count: values.len(),
            _marker: PhantomData,
        })
    }

    /// First vertex id owned.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the store holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes per value record (`S_v`).
    pub fn value_bytes(&self) -> u64 {
        V::BYTES as u64
    }

    /// Bytes a whole-store pass touches.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * V::BYTES as u64
    }

    #[inline]
    fn offset_of(&self, v: VertexId) -> u64 {
        debug_assert!(
            v.0 >= self.base && ((v.0 - self.base) as usize) < self.count,
            "vertex {v} outside store range"
        );
        (v.0 - self.base) as u64 * V::BYTES as u64
    }

    /// Sequentially reads values of the contiguous vertex range.
    pub fn read_range(&self, range: Range<u32>) -> io::Result<Vec<V>> {
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let off = self.offset_of(VertexId(range.start));
        let len = range.len() * V::BYTES;
        let bytes = self.file.read_vec(AccessClass::SeqRead, off, len)?;
        Ok(decode_slice(&bytes))
    }

    /// Sequentially writes values of the contiguous vertex range.
    pub fn write_range(&self, range: Range<u32>, values: &[V]) -> io::Result<()> {
        assert_eq!(range.len(), values.len(), "range/value length mismatch");
        if range.is_empty() {
            return Ok(());
        }
        let off = self.offset_of(VertexId(range.start));
        self.file
            .write_at(AccessClass::SeqWrite, off, &encode_slice(values))
    }

    /// Randomly reads one value (Pull-Respond's svertex lookup).
    pub fn read_one(&self, v: VertexId) -> io::Result<V> {
        let bytes = self
            .file
            .read_vec(AccessClass::RandRead, self.offset_of(v), V::BYTES)?;
        Ok(V::read_from(&bytes))
    }

    /// Randomly writes one value.
    pub fn write_one(&self, v: VertexId, value: &V) -> io::Result<()> {
        let mut buf = vec![0u8; V::BYTES];
        value.write_to(&mut buf);
        self.file
            .write_at(AccessClass::RandWrite, self.offset_of(v), &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn store(vfs: &MemVfs) -> ValueStore<f64> {
        let vals: Vec<f64> = (0..10).map(|i| i as f64).collect();
        ValueStore::create(vfs, "vals", 100, &vals).unwrap()
    }

    #[test]
    fn create_and_point_reads() {
        let vfs = MemVfs::new();
        let s = store(&vfs);
        assert_eq!(s.len(), 10);
        assert_eq!(s.base(), 100);
        assert_eq!(s.read_one(VertexId(100)).unwrap(), 0.0);
        assert_eq!(s.read_one(VertexId(109)).unwrap(), 9.0);
    }

    #[test]
    fn range_roundtrip() {
        let vfs = MemVfs::new();
        let s = store(&vfs);
        assert_eq!(s.read_range(102..105).unwrap(), vec![2.0, 3.0, 4.0]);
        s.write_range(102..104, &[20.0, 30.0]).unwrap();
        assert_eq!(s.read_range(101..105).unwrap(), vec![1.0, 20.0, 30.0, 4.0]);
    }

    #[test]
    fn point_write() {
        let vfs = MemVfs::new();
        let s = store(&vfs);
        s.write_one(VertexId(105), &55.5).unwrap();
        assert_eq!(s.read_one(VertexId(105)).unwrap(), 55.5);
    }

    #[test]
    fn accounting_classes() {
        let vfs = MemVfs::new();
        let s = store(&vfs);
        let before = vfs.stats().snapshot();
        s.read_range(100..110).unwrap();
        s.read_one(VertexId(100)).unwrap();
        s.write_one(VertexId(100), &1.0).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.seq_read_bytes, 80);
        assert_eq!(d.rand_read_bytes, 8);
        assert_eq!(d.rand_write_bytes, 8);
        // Creation wrote the initial values sequentially.
        assert_eq!(before.seq_write_bytes, 80);
    }

    #[test]
    fn empty_range_is_free() {
        let vfs = MemVfs::new();
        let s = store(&vfs);
        let before = vfs.stats().snapshot();
        assert!(s.read_range(105..105).unwrap().is_empty());
        s.write_range(105..105, &[]).unwrap();
        assert_eq!(vfs.stats().snapshot(), before);
    }

    #[test]
    fn total_bytes() {
        let vfs = MemVfs::new();
        let s = store(&vfs);
        assert_eq!(s.total_bytes(), 80);
        assert_eq!(s.value_bytes(), 8);
    }
}
