//! Destination-grouped edge store for the per-vertex pull baseline.
//!
//! The disk-extended GraphLab PowerGraph analogue gathers along in-edges:
//! when a destination vertex `v` is pulled, the worker hosting edges
//! `(u → v)` reads `v`'s local in-edge fragment and then each source
//! vertex `u`'s value. Fragments are keyed by destination and accessed in
//! whatever order requests arrive — point lookups, i.e. random reads. This
//! access pattern (together with per-source random value reads through the
//! LRU cache) is what makes the `pull` baseline I/O-hostile on disk, the
//! effect Table 5 and Fig. 10 quantify.

use crate::record::Record;
use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_codec::{decode_extent, encode_extent, CodecChoice, ExtentKind};
use hybridgraph_graph::{Edge, Graph, VertexId};
use std::collections::HashMap;
use std::io;
use std::ops::Range;

/// Byte cost of one fragment's auxiliary data: destination id + edge count.
const AUX_BYTES: u64 = 8;

/// One worker's out-edges regrouped by destination vertex.
pub struct GatherStore {
    file: VfsFile,
    /// Destination vertex → `(offset, edge count, stored bytes)` of its
    /// fragment. Without a codec, stored bytes equal the logical fragment
    /// size `AUX_BYTES + count · 8`. Arc-shared so cross-job views are
    /// cheap.
    index: std::sync::Arc<HashMap<u32, (u64, u32, u32)>>,
    codec: CodecChoice,
    /// Offset of the last fragment read. Requests that sweep the file in
    /// ascending order (a dense gather, e.g. PageRank's every-vertex
    /// superstep) amount to one sequential pass — the paper's ext-edge
    /// observation that "edges are read only once per superstep" — while
    /// backward jumps are genuine seeks. Atomic only so the store is
    /// `Sync` for cross-job sharing; each job's view has its own cursor
    /// and each view is read by one worker thread at a time.
    cursor: std::sync::atomic::AtomicU64,
}

/// An in-edge as seen from the destination: the source and the weight.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct InEdge {
    /// The source vertex (always local to the store's worker).
    pub src: VertexId,
    /// The edge weight.
    pub weight: f32,
}

impl GatherStore {
    /// Builds the store without compression; see
    /// [`GatherStore::build_with`].
    pub fn build(
        vfs: &dyn Vfs,
        name: &str,
        graph: &Graph,
        local: Range<u32>,
    ) -> io::Result<GatherStore> {
        GatherStore::build_with(vfs, name, graph, local, CodecChoice::None)
    }

    /// Builds the store from the out-edges of the vertices in `local`,
    /// regrouped by destination and written sequentially. With a codec,
    /// each fragment is one coded extent (sources within a fragment are
    /// ascending, so delta-gap coding applies).
    pub fn build_with(
        vfs: &dyn Vfs,
        name: &str,
        graph: &Graph,
        local: Range<u32>,
        codec: CodecChoice,
    ) -> io::Result<GatherStore> {
        // Collect (dst, src, weight) triples for local sources.
        let mut triples: Vec<(u32, u32, f32)> = Vec::new();
        for u in local.clone() {
            for e in graph.out_edges(VertexId(u)) {
                triples.push((e.dst.0, u, e.weight));
            }
        }
        triples.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());

        let file = vfs.create(name)?;
        let mut index = HashMap::new();
        let mut buf = Vec::new();
        let mut i = 0usize;
        let mut offset = 0u64;
        while i < triples.len() {
            let dst = triples[i].0;
            let mut end = i + 1;
            while end < triples.len() && triples[end].0 == dst {
                end += 1;
            }
            buf.clear();
            buf.extend_from_slice(&dst.to_le_bytes());
            buf.extend_from_slice(&((end - i) as u32).to_le_bytes());
            for &(_, src, w) in &triples[i..end] {
                buf.extend_from_slice(&src.to_le_bytes());
                buf.extend_from_slice(&w.to_le_bytes());
            }
            let stored = if codec.is_none() {
                file.append(AccessClass::SeqWrite, &buf)?;
                buf.len() as u64
            } else {
                let coded = encode_extent(codec, ExtentKind::Fragments, &buf);
                file.append_coded(AccessClass::SeqWrite, &coded, buf.len() as u64)?;
                coded.len() as u64
            };
            index.insert(dst, (offset, (end - i) as u32, stored as u32));
            offset += stored;
            i = end;
        }
        Ok(GatherStore {
            file,
            index: std::sync::Arc::new(index),
            codec,
            cursor: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// A read-only view over the same on-disk bytes whose I/O is recorded
    /// into `stats` instead of the builder's sink. The fragment index is
    /// Arc-shared; the sweep cursor is per-view (each job tracks its own
    /// sequential/seek classification).
    pub fn share_view(&self, stats: std::sync::Arc<crate::stats::IoStats>) -> GatherStore {
        GatherStore {
            file: self.file.with_stats(stats),
            index: std::sync::Arc::clone(&self.index),
            codec: self.codec,
            cursor: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of destinations with at least one local in-edge.
    pub fn num_destinations(&self) -> usize {
        self.index.len()
    }

    /// True if this worker hosts in-edges of `dst` (no I/O).
    pub fn has_in_edges(&self, dst: VertexId) -> bool {
        self.index.contains_key(&dst.0)
    }

    /// In-memory footprint of the fragment index.
    pub fn index_memory_bytes(&self) -> u64 {
        self.index.len() as u64 * 20
    }

    /// Randomly reads the in-edge fragment of `dst`; empty if none.
    pub fn in_edges_of(&self, dst: VertexId) -> io::Result<Vec<InEdge>> {
        let Some(&(offset, count, stored)) = self.index.get(&dst.0) else {
            return Ok(Vec::new());
        };
        let len = AUX_BYTES as usize + count as usize * Edge::BYTES;
        // Forward reads continue a sweep (sequential); backward jumps are
        // scattered seeks charged at sector granularity (on the physical
        // bytes the device actually moves).
        let forward = offset >= self.cursor.load(std::sync::atomic::Ordering::Relaxed);
        let class = if forward {
            AccessClass::SeqRead
        } else {
            AccessClass::RandRead
        };
        let bytes = if self.codec.is_none() {
            self.file.read_vec(class, offset, len)?
        } else {
            let coded = self
                .file
                .read_vec_coded(class, offset, stored as usize, len as u64)?;
            decode_extent(ExtentKind::Fragments, &coded, len)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        };
        if !forward {
            self.file.charge(
                AccessClass::RandRead,
                crate::stats::seek_pad(u64::from(stored)),
            );
        }
        self.cursor.store(
            offset + u64::from(stored),
            std::sync::atomic::Ordering::Relaxed,
        );
        let mut out = Vec::with_capacity(count as usize);
        let mut at = AUX_BYTES as usize;
        for _ in 0..count {
            let src = VertexId(u32::read_from(&bytes[at..at + 4]));
            let weight = f32::read_from(&bytes[at + 4..at + 8]);
            out.push(InEdge { src, weight });
            at += 8;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use hybridgraph_graph::gen;

    #[test]
    fn fragments_match_reverse_graph() {
        let g = gen::uniform(30, 200, 8);
        let rev = g.reverse();
        let vfs = MemVfs::new();
        let s = GatherStore::build(&vfs, "gather", &g, 0..30).unwrap();
        for v in g.vertices() {
            let mut got: Vec<u32> = s
                .in_edges_of(v)
                .unwrap()
                .iter()
                .map(|ie| ie.src.0)
                .collect();
            got.sort();
            let mut want: Vec<u32> = rev.out_edges(v).iter().map(|e| e.dst.0).collect();
            want.sort();
            assert_eq!(got, want, "in-edges of {v}");
        }
    }

    #[test]
    fn partial_range_only_local_sources() {
        let g = gen::uniform(20, 100, 3);
        let vfs = MemVfs::new();
        let s = GatherStore::build(&vfs, "gather", &g, 0..10).unwrap();
        for v in g.vertices() {
            for ie in s.in_edges_of(v).unwrap() {
                assert!(ie.src.0 < 10, "source must be local");
            }
        }
    }

    #[test]
    fn ascending_reads_are_sequential_backward_jumps_seek() {
        let g = gen::uniform(40, 300, 4);
        let vfs = MemVfs::new();
        let s = GatherStore::build(&vfs, "gather", &g, 0..40).unwrap();
        // An ascending sweep over all destinations: only sequential reads.
        let before = vfs.stats().snapshot();
        for v in 0..40u32 {
            s.in_edges_of(VertexId(v)).unwrap();
        }
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.rand_read_bytes, 0, "ascending sweep must be sequential");
        assert!(d.seq_read_bytes > 0);
        // A backward jump is a seek, padded to a sector.
        let lo = (0..40u32).find(|&v| s.has_in_edges(VertexId(v))).unwrap();
        let before = vfs.stats().snapshot();
        let edges = s.in_edges_of(VertexId(lo)).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        let payload = 8 + edges.len() as u64 * 8;
        assert_eq!(d.rand_read_bytes, payload.max(crate::stats::SECTOR_BYTES));
    }

    #[test]
    fn missing_destination_is_free() {
        let g = gen::chain(5); // edges i -> i+1 only
        let vfs = MemVfs::new();
        let s = GatherStore::build(&vfs, "gather", &g, 0..5).unwrap();
        assert!(!s.has_in_edges(VertexId(0)));
        assert!(s.has_in_edges(VertexId(1)));
        let before = vfs.stats().snapshot();
        assert!(s.in_edges_of(VertexId(0)).unwrap().is_empty());
        assert_eq!(vfs.stats().snapshot(), before);
    }

    #[test]
    fn coded_store_reads_back_identically() {
        let g = gen::uniform(50, 700, 6);
        let vfs = MemVfs::new();
        let plain = GatherStore::build(&vfs, "gather", &g, 0..50).unwrap();
        for codec in [CodecChoice::Gaps, CodecChoice::Block, CodecChoice::Auto] {
            let cvfs = MemVfs::new();
            let s = GatherStore::build_with(&cvfs, "gather", &g, 0..50, codec).unwrap();
            assert_eq!(s.num_destinations(), plain.num_destinations());
            for v in g.vertices() {
                assert_eq!(
                    s.in_edges_of(v).unwrap(),
                    plain.in_edges_of(v).unwrap(),
                    "{codec:?} dst {v}"
                );
            }
        }
        // Gaps shrinks the file; logical accounting still sees raw bytes.
        let cvfs = MemVfs::new();
        GatherStore::build_with(&cvfs, "gather", &g, 0..50, CodecChoice::Gaps).unwrap();
        let snap = cvfs.stats().snapshot();
        assert!(snap.seq_write_bytes < snap.seq_write_logical_bytes);
    }

    #[test]
    fn weights_preserved() {
        let g = gen::randomize_weights(&gen::cycle(6), 2.0, 3.0, 1);
        let vfs = MemVfs::new();
        let s = GatherStore::build(&vfs, "gather", &g, 0..6).unwrap();
        let ie = s.in_edges_of(VertexId(1)).unwrap();
        assert_eq!(ie.len(), 1);
        assert_eq!(ie[0].src, VertexId(0));
        assert!((2.0..3.0).contains(&ie[0].weight));
    }
}
