//! Device throughput profiles (paper Table 3).
//!
//! The paper benchmarks its two clusters with `fio` (mixed 50/50
//! random/sequential read-write pattern) and `iperf`, and plugs the
//! resulting MB/s numbers directly into the switching metric `Q_t`
//! (Eq. 11). The same numbers drive this reproduction's modeled time.

const MB: f64 = 1024.0 * 1024.0;

/// Throughputs of one cluster's disk and network, in MB/s.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Random-read throughput (`s_rr`).
    pub srr: f64,
    /// Random-write throughput (`s_rw`).
    pub srw: f64,
    /// Sequential-read throughput (`s_sr`).
    pub ssr: f64,
    /// Sequential-write throughput. Table 3 does not list it separately;
    /// the presets reuse the sequential-read number.
    pub ssw: f64,
    /// Network throughput (`s_net`).
    pub snet: f64,
}

impl DeviceProfile {
    /// The paper's local cluster: 7,200 RPM HDDs, Gigabit Ethernet.
    /// `s_rr/s_rw/s_sr = 1.177/1.182/2.358 MB/s`, `s_net = 112 MB/s`.
    pub fn local_hdd() -> Self {
        DeviceProfile {
            srr: 1.177,
            srw: 1.182,
            ssr: 2.358,
            ssw: 2.358,
            snet: 112.0,
        }
    }

    /// The paper's amazon cluster: SSDs.
    /// `s_rr/s_rw/s_sr = 18.177/18.194/18.270 MB/s`, `s_net = 116 MB/s`.
    pub fn amazon_ssd() -> Self {
        DeviceProfile {
            srr: 18.177,
            srw: 18.194,
            ssr: 18.270,
            ssw: 18.270,
            snet: 116.0,
        }
    }

    /// An idealized all-in-memory profile (effectively no I/O cost); used
    /// by the "sufficient memory" experiments where runtime is dominated
    /// by network and compute.
    pub fn memory() -> Self {
        DeviceProfile {
            srr: 4096.0,
            srw: 4096.0,
            ssr: 8192.0,
            ssw: 8192.0,
            snet: 112.0,
        }
    }

    /// Seconds to randomly read `bytes` bytes.
    #[inline]
    pub fn rand_read_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.srr * MB)
    }

    /// Seconds to randomly write `bytes` bytes.
    #[inline]
    pub fn rand_write_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.srw * MB)
    }

    /// Seconds to sequentially read `bytes` bytes.
    #[inline]
    pub fn seq_read_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.ssr * MB)
    }

    /// Seconds to sequentially write `bytes` bytes.
    #[inline]
    pub fn seq_write_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.ssw * MB)
    }

    /// Seconds to transfer `bytes` bytes over the network.
    #[inline]
    pub fn net_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.snet * MB)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::local_hdd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let hdd = DeviceProfile::local_hdd();
        assert_eq!(hdd.srr, 1.177);
        assert_eq!(hdd.srw, 1.182);
        assert_eq!(hdd.ssr, 2.358);
        assert_eq!(hdd.snet, 112.0);
        let ssd = DeviceProfile::amazon_ssd();
        assert_eq!(ssd.srr, 18.177);
        assert_eq!(ssd.snet, 116.0);
    }

    #[test]
    fn ssd_faster_random_io_than_hdd() {
        let hdd = DeviceProfile::local_hdd();
        let ssd = DeviceProfile::amazon_ssd();
        let b = 100 * 1024 * 1024;
        assert!(ssd.rand_read_secs(b) < hdd.rand_read_secs(b));
        assert!(ssd.rand_write_secs(b) < hdd.rand_write_secs(b));
    }

    #[test]
    fn time_scales_linearly() {
        let p = DeviceProfile::local_hdd();
        let one = p.seq_read_secs(1024 * 1024);
        let ten = p.seq_read_secs(10 * 1024 * 1024);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_random_much_slower_than_sequential() {
        let p = DeviceProfile::local_hdd();
        assert!(p.rand_read_secs(1 << 20) > 1.9 * p.seq_read_secs(1 << 20));
    }
}
