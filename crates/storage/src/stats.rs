//! Per-access-class I/O accounting.
//!
//! Every byte a store moves is recorded here under one of four access
//! classes. The engine snapshots the counters around each superstep to
//! obtain the per-superstep I/O quantities the paper's cost model needs
//! (Eqs. 7, 8 and 11), and converts byte totals to *modeled seconds* with a
//! [`DeviceProfile`](crate::profile::DeviceProfile).

use crate::profile::DeviceProfile;
use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest unit a *scattered* random access moves on a real disk.
///
/// Byte-exact accounting would under-charge point lookups of tiny records
/// (a 4-byte label read still seeks and transfers a sector). Stores whose
/// random accesses have no locality (the pull baseline's gather fragments
/// and its LRU misses/evictions) pad each access to one sector via
/// [`seek_pad`]. VE-BLOCK's svertex reads are *not* padded: fragments are
/// written in svertex order, so Pull-Respond sweeps each Vblock in
/// ascending offsets — the clustering §4.1 is about.
pub const SECTOR_BYTES: u64 = 512;

/// The extra bytes a scattered access of `bytes` payload is charged.
pub fn seek_pad(bytes: u64) -> u64 {
    SECTOR_BYTES.saturating_sub(bytes)
}

/// The full charged size of a scattered access of `bytes` payload.
pub fn scattered_cost(bytes: u64) -> u64 {
    bytes.max(SECTOR_BYTES)
}

/// How an access hits the device.
///
/// Classification is done by the caller (the store), which knows whether it
/// is scanning or seeking; the VFS backends do not guess.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessClass {
    /// Sequential read (scan).
    SeqRead,
    /// Sequential write (append/rewrite).
    SeqWrite,
    /// Random read (point lookup / seek).
    RandRead,
    /// Random write (scattered update).
    RandWrite,
}

impl AccessClass {
    /// All four classes.
    pub const ALL: [AccessClass; 4] = [
        AccessClass::SeqRead,
        AccessClass::SeqWrite,
        AccessClass::RandRead,
        AccessClass::RandWrite,
    ];

    /// Stable short name, used to label per-class trace events and
    /// metrics series (`vfs.seq_read` etc.).
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::SeqRead => "seq_read",
            AccessClass::SeqWrite => "seq_write",
            AccessClass::RandRead => "rand_read",
            AccessClass::RandWrite => "rand_write",
        }
    }
}

/// Thread-safe I/O counters: bytes and operation counts per access class.
///
/// Each class keeps *two* byte counters. The **physical** counter is the
/// bytes that actually crossed the (simulated) device — what the cost
/// model (`modeled_secs`) and the `Q_t` switch inputs consume. The
/// **logical** counter is the uncompressed application bytes the access
/// represents. Without a codec they track each other (every access
/// records both equal), so physical counters are byte-for-byte what they
/// were before compression existed; with a codec the gap between them is
/// the compression win.
#[derive(Debug, Default)]
pub struct IoStats {
    seq_read_bytes: AtomicU64,
    seq_write_bytes: AtomicU64,
    rand_read_bytes: AtomicU64,
    rand_write_bytes: AtomicU64,
    seq_read_logical_bytes: AtomicU64,
    seq_write_logical_bytes: AtomicU64,
    rand_read_logical_bytes: AtomicU64,
    rand_write_logical_bytes: AtomicU64,
    seq_read_ops: AtomicU64,
    seq_write_ops: AtomicU64,
    rand_read_ops: AtomicU64,
    rand_write_ops: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    #[inline]
    fn counters(&self, class: AccessClass) -> (&AtomicU64, &AtomicU64, &AtomicU64) {
        match class {
            AccessClass::SeqRead => (
                &self.seq_read_bytes,
                &self.seq_read_logical_bytes,
                &self.seq_read_ops,
            ),
            AccessClass::SeqWrite => (
                &self.seq_write_bytes,
                &self.seq_write_logical_bytes,
                &self.seq_write_ops,
            ),
            AccessClass::RandRead => (
                &self.rand_read_bytes,
                &self.rand_read_logical_bytes,
                &self.rand_read_ops,
            ),
            AccessClass::RandWrite => (
                &self.rand_write_bytes,
                &self.rand_write_logical_bytes,
                &self.rand_write_ops,
            ),
        }
    }

    /// Records one uncoded access of `bytes` bytes in `class`
    /// (physical == logical).
    #[inline]
    pub fn record(&self, class: AccessClass, bytes: u64) {
        self.record_coded(class, bytes, bytes);
    }

    /// Records one coded access: `physical` bytes crossed the device for
    /// `logical` application bytes.
    #[inline]
    pub fn record_coded(&self, class: AccessClass, physical: u64, logical: u64) {
        let (b, l, o) = self.counters(class);
        b.fetch_add(physical, Ordering::Relaxed);
        l.fetch_add(logical, Ordering::Relaxed);
        o.fetch_add(1, Ordering::Relaxed);
    }

    /// Records modeled device bytes that carry no application data (seek
    /// padding for scattered accesses): physical only, no logical bytes.
    #[inline]
    pub fn record_physical(&self, class: AccessClass, bytes: u64) {
        let (b, _, o) = self.counters(class);
        b.fetch_add(bytes, Ordering::Relaxed);
        o.fetch_add(1, Ordering::Relaxed);
    }

    /// Tops up the logical byte count of an access already recorded (no
    /// extra op, no physical bytes). Used when the logical size only
    /// becomes known after a coded payload is read back and decoded.
    #[inline]
    pub fn record_logical(&self, class: AccessClass, bytes: u64) {
        let (_, l, _) = self.counters(class);
        l.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            seq_read_bytes: self.seq_read_bytes.load(Ordering::Relaxed),
            seq_write_bytes: self.seq_write_bytes.load(Ordering::Relaxed),
            rand_read_bytes: self.rand_read_bytes.load(Ordering::Relaxed),
            rand_write_bytes: self.rand_write_bytes.load(Ordering::Relaxed),
            seq_read_logical_bytes: self.seq_read_logical_bytes.load(Ordering::Relaxed),
            seq_write_logical_bytes: self.seq_write_logical_bytes.load(Ordering::Relaxed),
            rand_read_logical_bytes: self.rand_read_logical_bytes.load(Ordering::Relaxed),
            rand_write_logical_bytes: self.rand_write_logical_bytes.load(Ordering::Relaxed),
            seq_read_ops: self.seq_read_ops.load(Ordering::Relaxed),
            seq_write_ops: self.seq_write_ops.load(Ordering::Relaxed),
            rand_read_ops: self.rand_read_ops.load(Ordering::Relaxed),
            rand_write_ops: self.rand_write_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.seq_read_bytes.store(0, Ordering::Relaxed);
        self.seq_write_bytes.store(0, Ordering::Relaxed);
        self.rand_read_bytes.store(0, Ordering::Relaxed);
        self.rand_write_bytes.store(0, Ordering::Relaxed);
        self.seq_read_logical_bytes.store(0, Ordering::Relaxed);
        self.seq_write_logical_bytes.store(0, Ordering::Relaxed);
        self.rand_read_logical_bytes.store(0, Ordering::Relaxed);
        self.rand_write_logical_bytes.store(0, Ordering::Relaxed);
        self.seq_read_ops.store(0, Ordering::Relaxed);
        self.seq_write_ops.store(0, Ordering::Relaxed);
        self.rand_read_ops.store(0, Ordering::Relaxed);
        self.rand_write_ops.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of [`IoStats`] counters; supports deltas.
///
/// The unqualified `*_bytes` fields are **physical** (on-device) bytes —
/// the quantity [`IoSnapshot::modeled_secs`] and the `Q_t` inputs use.
/// The `*_logical_bytes` fields are the uncompressed application bytes
/// behind those accesses; `physical / logical` is the compression ratio.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub seq_read_bytes: u64,
    pub seq_write_bytes: u64,
    pub rand_read_bytes: u64,
    pub rand_write_bytes: u64,
    pub seq_read_logical_bytes: u64,
    pub seq_write_logical_bytes: u64,
    pub rand_read_logical_bytes: u64,
    pub rand_write_logical_bytes: u64,
    pub seq_read_ops: u64,
    pub seq_write_ops: u64,
    pub rand_read_ops: u64,
    pub rand_write_ops: u64,
}

impl IoSnapshot {
    /// Physical (on-device) bytes in `class`.
    pub fn bytes(&self, class: AccessClass) -> u64 {
        match class {
            AccessClass::SeqRead => self.seq_read_bytes,
            AccessClass::SeqWrite => self.seq_write_bytes,
            AccessClass::RandRead => self.rand_read_bytes,
            AccessClass::RandWrite => self.rand_write_bytes,
        }
    }

    /// Logical (uncompressed application) bytes in `class`.
    pub fn logical_bytes(&self, class: AccessClass) -> u64 {
        match class {
            AccessClass::SeqRead => self.seq_read_logical_bytes,
            AccessClass::SeqWrite => self.seq_write_logical_bytes,
            AccessClass::RandRead => self.rand_read_logical_bytes,
            AccessClass::RandWrite => self.rand_write_logical_bytes,
        }
    }

    /// Operation count in `class`.
    pub fn ops(&self, class: AccessClass) -> u64 {
        match class {
            AccessClass::SeqRead => self.seq_read_ops,
            AccessClass::SeqWrite => self.seq_write_ops,
            AccessClass::RandRead => self.rand_read_ops,
            AccessClass::RandWrite => self.rand_write_ops,
        }
    }

    /// Total physical bytes across all classes (what Fig. 10 reports).
    pub fn total_bytes(&self) -> u64 {
        self.seq_read_bytes + self.seq_write_bytes + self.rand_read_bytes + self.rand_write_bytes
    }

    /// Total logical bytes across all classes.
    pub fn total_logical_bytes(&self) -> u64 {
        self.seq_read_logical_bytes
            + self.seq_write_logical_bytes
            + self.rand_read_logical_bytes
            + self.rand_write_logical_bytes
    }

    /// Counter-wise difference `self - earlier`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is not actually earlier.
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        debug_assert!(self.seq_read_bytes >= earlier.seq_read_bytes);
        IoSnapshot {
            seq_read_bytes: self.seq_read_bytes - earlier.seq_read_bytes,
            seq_write_bytes: self.seq_write_bytes - earlier.seq_write_bytes,
            rand_read_bytes: self.rand_read_bytes - earlier.rand_read_bytes,
            rand_write_bytes: self.rand_write_bytes - earlier.rand_write_bytes,
            seq_read_logical_bytes: self.seq_read_logical_bytes - earlier.seq_read_logical_bytes,
            seq_write_logical_bytes: self.seq_write_logical_bytes - earlier.seq_write_logical_bytes,
            rand_read_logical_bytes: self.rand_read_logical_bytes - earlier.rand_read_logical_bytes,
            rand_write_logical_bytes: self.rand_write_logical_bytes
                - earlier.rand_write_logical_bytes,
            seq_read_ops: self.seq_read_ops - earlier.seq_read_ops,
            seq_write_ops: self.seq_write_ops - earlier.seq_write_ops,
            rand_read_ops: self.rand_read_ops - earlier.rand_read_ops,
            rand_write_ops: self.rand_write_ops - earlier.rand_write_ops,
        }
    }

    /// Counter-wise sum.
    pub fn plus(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_read_bytes: self.seq_read_bytes + other.seq_read_bytes,
            seq_write_bytes: self.seq_write_bytes + other.seq_write_bytes,
            rand_read_bytes: self.rand_read_bytes + other.rand_read_bytes,
            rand_write_bytes: self.rand_write_bytes + other.rand_write_bytes,
            seq_read_logical_bytes: self.seq_read_logical_bytes + other.seq_read_logical_bytes,
            seq_write_logical_bytes: self.seq_write_logical_bytes + other.seq_write_logical_bytes,
            rand_read_logical_bytes: self.rand_read_logical_bytes + other.rand_read_logical_bytes,
            rand_write_logical_bytes: self.rand_write_logical_bytes
                + other.rand_write_logical_bytes,
            seq_read_ops: self.seq_read_ops + other.seq_read_ops,
            seq_write_ops: self.seq_write_ops + other.seq_write_ops,
            rand_read_ops: self.rand_read_ops + other.rand_read_ops,
            rand_write_ops: self.rand_write_ops + other.rand_write_ops,
        }
    }

    /// Modeled elapsed seconds for these bytes on `profile` (Eq. 4's `C_io`
    /// term, converted from bytes to time).
    pub fn modeled_secs(&self, profile: &DeviceProfile) -> f64 {
        profile.seq_read_secs(self.seq_read_bytes)
            + profile.seq_write_secs(self.seq_write_bytes)
            + profile.rand_read_secs(self.rand_read_bytes)
            + profile.rand_write_secs(self.rand_write_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::new();
        s.record(AccessClass::SeqRead, 100);
        s.record(AccessClass::SeqRead, 50);
        s.record(AccessClass::RandWrite, 7);
        let snap = s.snapshot();
        assert_eq!(snap.seq_read_bytes, 150);
        assert_eq!(snap.seq_read_ops, 2);
        assert_eq!(snap.rand_write_bytes, 7);
        assert_eq!(snap.rand_write_ops, 1);
        assert_eq!(snap.total_bytes(), 157);
    }

    #[test]
    fn uncoded_record_keeps_logical_equal_to_physical() {
        let s = IoStats::new();
        s.record(AccessClass::SeqRead, 100);
        s.record(AccessClass::RandWrite, 7);
        let snap = s.snapshot();
        for c in AccessClass::ALL {
            assert_eq!(snap.bytes(c), snap.logical_bytes(c), "{}", c.label());
        }
        assert_eq!(snap.total_logical_bytes(), snap.total_bytes());
    }

    #[test]
    fn coded_record_splits_physical_and_logical() {
        let s = IoStats::new();
        s.record_coded(AccessClass::SeqRead, 30, 100);
        s.record_physical(AccessClass::RandRead, 512);
        let snap = s.snapshot();
        assert_eq!(snap.seq_read_bytes, 30);
        assert_eq!(snap.seq_read_logical_bytes, 100);
        assert_eq!(snap.seq_read_ops, 1);
        assert_eq!(snap.rand_read_bytes, 512);
        assert_eq!(snap.rand_read_logical_bytes, 0);
        assert_eq!(snap.rand_read_ops, 1);
        let d = snap.delta(&IoSnapshot::default());
        assert_eq!(d, snap);
        let sum = snap.plus(&snap);
        assert_eq!(sum.seq_read_logical_bytes, 200);
        assert_eq!(sum.rand_read_bytes, 1024);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn delta_subtracts() {
        let s = IoStats::new();
        s.record(AccessClass::SeqWrite, 10);
        let a = s.snapshot();
        s.record(AccessClass::SeqWrite, 30);
        s.record(AccessClass::RandRead, 5);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.seq_write_bytes, 30);
        assert_eq!(d.rand_read_bytes, 5);
        assert_eq!(d.seq_write_ops, 1);
    }

    #[test]
    fn plus_adds() {
        let a = IoSnapshot {
            seq_read_bytes: 1,
            rand_read_bytes: 2,
            ..Default::default()
        };
        let b = IoSnapshot {
            seq_read_bytes: 10,
            seq_write_ops: 3,
            ..Default::default()
        };
        let c = a.plus(&b);
        assert_eq!(c.seq_read_bytes, 11);
        assert_eq!(c.rand_read_bytes, 2);
        assert_eq!(c.seq_write_ops, 3);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.record(AccessClass::RandRead, 42);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn modeled_secs_uses_class_throughputs() {
        let p = DeviceProfile::local_hdd();
        let snap = IoSnapshot {
            rand_read_bytes: 1177 * 1024, // ~1.177 MB/s worth -> ~1 s at 1.177 MB/s... scaled
            ..Default::default()
        };
        let secs = snap.modeled_secs(&p);
        let expect = (1177.0 * 1024.0) / (1.177 * 1024.0 * 1024.0);
        assert!((secs - expect).abs() < 1e-9);
    }

    #[test]
    fn class_accessors() {
        let snap = IoSnapshot {
            seq_read_bytes: 1,
            seq_write_bytes: 2,
            rand_read_bytes: 3,
            rand_write_bytes: 4,
            ..Default::default()
        };
        let got: Vec<u64> = AccessClass::ALL.iter().map(|&c| snap.bytes(c)).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record(AccessClass::SeqRead, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().seq_read_bytes, 8000);
        assert_eq!(s.snapshot().seq_read_ops, 8000);
    }
}
