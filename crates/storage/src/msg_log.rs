//! Sender-side outgoing-message logs for confined recovery.
//!
//! Pregel's confined recovery ("Pregel: a system for large-scale graph
//! processing", §4.2) avoids rolling the whole cluster back to a
//! checkpoint by having every worker *log its outgoing messages* at the
//! end of each superstep. When a worker dies, only that worker reloads
//! its checkpoint; the survivors keep their state and merely re-serve
//! the logged messages while the respawned worker recomputes its own
//! partition. For an out-of-core engine this is exactly the right
//! trade: the log costs one **classified sequential write** per
//! superstep (cheap, append-only, I/O-accounted like everything else),
//! and recovery avoids re-doing every survivor's compute and disk I/O.
//!
//! A log *segment* is one file per `(worker, superstep)` holding the
//! packets that worker sent to **remote** peers during that superstep,
//! in send order. This crate stores them opaquely as
//! `(destination, byte-blob)` entries — the wire format of the blobs
//! belongs to the network layer, which sits above storage. The framing
//! mirrors [`crate::checkpoint`]:
//!
//! ```text
//! magic u32 | version u32 | superstep u64 | count u64
//! | (dest u32, len u64, bytes...)*  | total-length trailer u64
//! ```
//!
//! The trailer lets recovery distinguish a *committed-but-empty*
//! segment (the superstep genuinely produced no remote traffic —
//! possible, e.g. push supersteps with no active vertices) from a
//! *truncated or missing* one, in which case confined recovery is
//! impossible and the engine falls back to a global rollback.
//!
//! Segments at or below a checkpointed superstep can never be replayed
//! (recovery always restarts *after* a checkpoint) and are pruned when
//! the checkpoint commits.

use crate::stats::AccessClass;
use crate::vfs::Vfs;
use hybridgraph_codec::{decode_blob_frame, encode_blob_frame, CodecChoice};
use std::io;

/// File magic: `HGML` little-endian.
pub const MSG_LOG_MAGIC: u32 = 0x4c4d_4748;
/// Format version for plain (uncompressed) segments.
pub const MSG_LOG_VERSION: u32 = 1;
/// Format version when the entry body is wrapped in one codec blob frame.
pub const MSG_LOG_VERSION_CODED: u32 = 2;

const HEADER_BYTES: usize = 4 + 4 + 8 + 8;

/// The VFS file name of the log segment for `superstep`.
pub fn msg_log_file_name(superstep: u64) -> String {
    format!("msglog_{superstep:012}")
}

/// True if a committed log segment for `superstep` exists in `vfs`.
pub fn has_log_segment(vfs: &dyn Vfs, superstep: u64) -> bool {
    vfs.exists(&msg_log_file_name(superstep))
}

/// Removes the log segment for `superstep`, if present (pruned once a
/// checkpoint at or after it commits).
pub fn remove_log_segment(vfs: &dyn Vfs, superstep: u64) -> io::Result<()> {
    vfs.remove(&msg_log_file_name(superstep))
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt message log: {what}"),
    )
}

/// Accumulates one superstep's outgoing remote packets and commits them
/// as a single classified sequential write.
pub struct MsgLogWriter {
    superstep: u64,
    count: u64,
    buf: Vec<u8>,
}

impl MsgLogWriter {
    /// A writer for the log segment of `superstep`.
    pub fn new(superstep: u64) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MSG_LOG_MAGIC.to_le_bytes());
        buf.extend_from_slice(&MSG_LOG_VERSION.to_le_bytes());
        buf.extend_from_slice(&superstep.to_le_bytes());
        // Entry count: patched at commit.
        buf.extend_from_slice(&0u64.to_le_bytes());
        MsgLogWriter {
            superstep,
            count: 0,
            buf,
        }
    }

    /// Appends one logged packet: its destination worker and its
    /// network-layer encoding.
    pub fn push(&mut self, dest: u32, blob: &[u8]) {
        self.count += 1;
        self.buf.extend_from_slice(&dest.to_le_bytes());
        self.buf
            .extend_from_slice(&(blob.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(blob);
    }

    /// Entries appended so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if nothing has been appended. An empty segment is still
    /// worth committing: its presence proves the superstep produced no
    /// remote traffic.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Writes the segment to `vfs` as one sequential write and returns
    /// the total bytes written. Any prior segment for the same
    /// superstep is truncated (re-execution after a rollback regenerates
    /// bit-identical traffic, so overwriting is safe).
    pub fn commit(self, vfs: &dyn Vfs) -> io::Result<u64> {
        self.commit_with(vfs, CodecChoice::None)
    }

    /// Like [`MsgLogWriter::commit`], but with a codec the entry body is
    /// wrapped in one blob frame (format version 2) and the write is
    /// accounted physical-vs-logical. Returns the physical bytes written.
    pub fn commit_with(mut self, vfs: &dyn Vfs, codec: CodecChoice) -> io::Result<u64> {
        self.buf[16..24].copy_from_slice(&self.count.to_le_bytes());
        let file = vfs.create(&msg_log_file_name(self.superstep))?;
        if codec.is_none() {
            let total = self.buf.len() as u64 + 8;
            self.buf.extend_from_slice(&total.to_le_bytes());
            file.append(AccessClass::SeqWrite, &self.buf)?;
            return Ok(total);
        }
        let logical = self.buf.len() as u64 + 8; // what version 1 would write
        let body = &self.buf[HEADER_BYTES..];
        let mut out = Vec::with_capacity(HEADER_BYTES + body.len() / 2 + 16);
        out.extend_from_slice(&MSG_LOG_MAGIC.to_le_bytes());
        out.extend_from_slice(&MSG_LOG_VERSION_CODED.to_le_bytes());
        out.extend_from_slice(&self.superstep.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&encode_blob_frame(codec, body));
        let total = out.len() as u64 + 8;
        out.extend_from_slice(&total.to_le_bytes());
        file.append_coded(AccessClass::SeqWrite, &out, logical)?;
        Ok(total)
    }
}

/// Reads back a committed log segment, verifying framing as it goes.
/// Accepts both plain (v1) and coded (v2) segments — the file itself
/// says which, so replay needs no codec configuration.
pub struct MsgLogReader {
    body: Vec<u8>,
    pos: usize,
    remaining: u64,
    superstep: u64,
}

impl MsgLogReader {
    /// Opens and validates the log segment for `superstep` (one
    /// sequential read of the whole file). Fails on any framing damage,
    /// which recovery treats as "confined recovery unavailable".
    pub fn open(vfs: &dyn Vfs, superstep: u64) -> io::Result<Self> {
        let file = vfs.open(&msg_log_file_name(superstep))?;
        let data = file.read_all(AccessClass::SeqRead)?;
        if data.len() < HEADER_BYTES + 8 {
            return Err(corrupt("file shorter than header"));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != MSG_LOG_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != MSG_LOG_VERSION && version != MSG_LOG_VERSION_CODED {
            return Err(corrupt("unsupported version"));
        }
        let ss = u64::from_le_bytes(data[8..16].try_into().unwrap());
        if ss != superstep {
            return Err(corrupt("superstep mismatch"));
        }
        let count = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let trailer = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
        if trailer != data.len() as u64 {
            return Err(corrupt("length trailer mismatch (truncated write?)"));
        }
        let body = if version == MSG_LOG_VERSION {
            data[HEADER_BYTES..data.len() - 8].to_vec()
        } else {
            let mut pos = HEADER_BYTES;
            let raw = decode_blob_frame(&data[..data.len() - 8], &mut pos)
                .map_err(|e| corrupt(&e.to_string()))?;
            if pos != data.len() - 8 {
                return Err(corrupt("coded body length mismatch"));
            }
            // The whole-file read above charged logical == physical; top
            // up to the decoded (v1-equivalent) logical size.
            let logical = (HEADER_BYTES + raw.len() + 8) as u64;
            vfs.stats().record_logical(
                AccessClass::SeqRead,
                logical.saturating_sub(data.len() as u64),
            );
            raw
        };
        Ok(MsgLogReader {
            body,
            pos: 0,
            remaining: count,
            superstep,
        })
    }

    /// The superstep this segment logged.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// Entries not yet read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next `(destination, blob)` entry, or `None` after the
    /// last one. Errors on framing damage mid-file.
    #[allow(clippy::type_complexity)]
    pub fn next_entry(&mut self) -> io::Result<Option<(u32, Vec<u8>)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let end = self.body.len();
        if self.pos + 12 > end {
            return Err(corrupt("entry header past end"));
        }
        let dest = u32::from_le_bytes(self.body[self.pos..self.pos + 4].try_into().unwrap());
        let len =
            u64::from_le_bytes(self.body[self.pos + 4..self.pos + 12].try_into().unwrap()) as usize;
        self.pos += 12;
        // `len` comes from on-disk data: compare without `pos + len`,
        // which a corrupt length near `usize::MAX` would overflow.
        if len > end - self.pos {
            return Err(corrupt("entry body past end"));
        }
        let blob = self.body[self.pos..self.pos + len].to_vec();
        self.pos += len;
        self.remaining -= 1;
        Ok(Some((dest, blob)))
    }

    /// Reads every remaining entry.
    #[allow(clippy::type_complexity)]
    pub fn read_all_entries(&mut self) -> io::Result<Vec<(u32, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.remaining as usize);
        while let Some(e) = self.next_entry()? {
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn roundtrip_in_order() {
        let vfs = MemVfs::new();
        let mut w = MsgLogWriter::new(5);
        assert!(w.is_empty());
        w.push(2, b"alpha");
        w.push(0, b"");
        w.push(2, b"beta");
        assert_eq!(w.len(), 3);
        let bytes = w.commit(&vfs).unwrap();
        assert!(has_log_segment(&vfs, 5));
        assert!(!has_log_segment(&vfs, 6));

        let mut r = MsgLogReader::open(&vfs, 5).unwrap();
        assert_eq!(r.superstep(), 5);
        assert_eq!(r.remaining(), 3);
        let all = r.read_all_entries().unwrap();
        assert_eq!(
            all,
            vec![
                (2, b"alpha".to_vec()),
                (0, Vec::new()),
                (2, b"beta".to_vec())
            ]
        );
        assert!(r.next_entry().unwrap().is_none());
        // One classified sequential write, mirrored by one read.
        let snap = vfs.stats().snapshot();
        assert_eq!(snap.seq_write_bytes, bytes);
        assert_eq!(snap.seq_write_ops, 1);
        assert_eq!(snap.seq_read_bytes, bytes);
    }

    #[test]
    fn empty_segment_is_committed_and_distinct_from_missing() {
        let vfs = MemVfs::new();
        MsgLogWriter::new(9).commit(&vfs).unwrap();
        assert!(has_log_segment(&vfs, 9));
        let mut r = MsgLogReader::open(&vfs, 9).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_entry().unwrap().is_none());
        // A missing segment is an error, not an empty iterator.
        assert!(MsgLogReader::open(&vfs, 10).is_err());
    }

    #[test]
    fn truncated_segment_rejected() {
        let vfs = MemVfs::new();
        let mut w = MsgLogWriter::new(2);
        w.push(1, &[7u8; 100]);
        w.commit(&vfs).unwrap();
        let full = vfs
            .open(&msg_log_file_name(2))
            .unwrap()
            .read_all(AccessClass::SeqRead)
            .unwrap();
        let f = vfs.create(&msg_log_file_name(2)).unwrap();
        f.append(AccessClass::SeqWrite, &full[..full.len() - 9])
            .unwrap();
        assert!(MsgLogReader::open(&vfs, 2).is_err());
    }

    #[test]
    fn superstep_mismatch_rejected() {
        let vfs = MemVfs::new();
        MsgLogWriter::new(4).commit(&vfs).unwrap();
        let data = vfs
            .open(&msg_log_file_name(4))
            .unwrap()
            .read_all(AccessClass::SeqRead)
            .unwrap();
        vfs.create(&msg_log_file_name(6))
            .unwrap()
            .append(AccessClass::SeqWrite, &data)
            .unwrap();
        assert!(MsgLogReader::open(&vfs, 6).is_err());
    }

    #[test]
    fn coded_segment_roundtrips_and_accounts_both_sides() {
        for codec in [CodecChoice::Gaps, CodecChoice::Block, CodecChoice::Auto] {
            let vfs = MemVfs::new();
            let mut w = MsgLogWriter::new(7);
            for i in 0..40u32 {
                w.push(i % 3, &[b'x'; 200]);
            }
            let physical = w.commit_with(&vfs, codec).unwrap();
            let wsnap = vfs.stats().snapshot();
            // Gaps is structure-aware only: its blob frames stay raw.
            if !matches!(codec, CodecChoice::Gaps) {
                assert!(physical < wsnap.seq_write_logical_bytes, "{codec:?}");
            }
            assert_eq!(wsnap.seq_write_bytes, physical);

            let mut r = MsgLogReader::open(&vfs, 7).unwrap();
            assert_eq!(r.remaining(), 40);
            let all = r.read_all_entries().unwrap();
            assert_eq!(all.len(), 40);
            for (i, (dest, blob)) in all.iter().enumerate() {
                assert_eq!(*dest, i as u32 % 3);
                assert_eq!(blob, &vec![b'x'; 200]);
            }
            let rsnap = vfs.stats().snapshot();
            assert_eq!(rsnap.seq_read_bytes, physical);
            // Read logical is max(physical, v1 size): the whole-file read
            // charges logical == physical up front, then tops up.
            assert_eq!(
                rsnap.seq_read_logical_bytes,
                wsnap.seq_write_logical_bytes.max(physical)
            );
        }
    }

    #[test]
    fn coded_empty_segment_still_committed() {
        let vfs = MemVfs::new();
        MsgLogWriter::new(9)
            .commit_with(&vfs, CodecChoice::Auto)
            .unwrap();
        let mut r = MsgLogReader::open(&vfs, 9).unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(r.next_entry().unwrap().is_none());
    }

    #[test]
    fn prune_is_idempotent() {
        let vfs = MemVfs::new();
        MsgLogWriter::new(1).commit(&vfs).unwrap();
        remove_log_segment(&vfs, 1).unwrap();
        assert!(!has_log_segment(&vfs, 1));
        remove_log_segment(&vfs, 1).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_segment() {
        let vfs = MemVfs::new();
        let mut w = MsgLogWriter::new(3);
        w.push(0, b"old");
        w.commit(&vfs).unwrap();
        let mut w = MsgLogWriter::new(3);
        w.push(1, b"new");
        w.commit(&vfs).unwrap();
        let all = MsgLogReader::open(&vfs, 3)
            .unwrap()
            .read_all_entries()
            .unwrap();
        assert_eq!(all, vec![(1, b"new".to_vec())]);
    }
}
