//! LRU vertex-value cache.
//!
//! The paper extends GraphLab PowerGraph to disk residency by caching at
//! most `B_i` vertices in memory under LRU replacement (§6 and Appendix F).
//! The per-vertex `pull` baseline in this reproduction uses the same
//! scheme: a hit is free, a miss costs one random value read, and evicting
//! a dirty entry costs one random value write.
//!
//! Capacity is expressed as an abstract *weight* budget. The classic
//! entry-count cache is the weight-1 special case ([`LruCache::insert`]);
//! callers that know their payload sizes charge actual bytes per entry
//! through [`LruCache::insert_weighted`], so a byte budget is honored
//! regardless of how large individual entries are.

use std::collections::HashMap;
use std::hash::Hash;

/// Entry index inside the slab; `NONE` marks list ends.
const NONE: usize = usize::MAX;

/// A fixed-capacity LRU map with dirty tracking and weighted entries.
pub struct LruCache<K: Eq + Hash + Copy, V> {
    map: HashMap<K, usize>,
    /// Slot payloads; `None` for free slots.
    entries: Vec<Option<(K, V, bool)>>,
    /// Weight charged per occupied slot.
    weights: Vec<usize>,
    /// `(prev, next)` recency links per slot.
    links: Vec<(usize, usize)>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    used: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Copy, V> LruCache<K, V> {
    /// A cache holding entries of at most `capacity` total weight
    /// (entries, with [`Self::insert`]; bytes, with
    /// [`Self::insert_weighted`] and byte weights).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::new(),
            entries: Vec::new(),
            weights: Vec::new(),
            links: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
            used: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in total weight.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight of the cached entries.
    pub fn used_weight(&self) -> usize {
        self.used
    }

    /// Cache hits observed by [`Self::get`] / [`Self::get_mut`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed by [`Self::get`] / [`Self::get_mut`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = self.links[idx];
        if prev != NONE {
            self.links[prev].1 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.links[next].0 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.links[idx] = (NONE, self.head);
        if self.head != NONE {
            self.links[self.head].0 = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                self.entries[idx].as_ref().map(|(_, v, _)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Mutable lookup; marks the entry dirty and promotes it.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                let entry = self.entries[idx].as_mut().unwrap();
                entry.2 = true;
                Some(&mut entry.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True if `key` is cached (does not touch recency or counters).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value` at weight 1, evicting the LRU entry if full.
    ///
    /// Returns the evicted `(key, value, dirty)` if an eviction happened —
    /// a dirty eviction is the caller's signal to write the value back.
    /// (With uniform weight 1 at most one entry can ever be displaced.)
    pub fn insert(&mut self, key: K, value: V, dirty: bool) -> Option<(K, V, bool)> {
        self.insert_weighted(key, value, dirty, 1).pop()
    }

    fn evict_tail(&mut self) -> (K, V, bool) {
        let idx = self.tail;
        debug_assert_ne!(idx, NONE);
        self.detach(idx);
        let entry = self.entries[idx].take().unwrap();
        self.used -= self.weights[idx];
        self.map.remove(&entry.0);
        self.free.push(idx);
        entry
    }

    /// Inserts `key → value` charged at `weight`, evicting LRU entries
    /// until the total weight fits `capacity`. Evictions are returned
    /// LRU-first; dirty ones are the caller's signal to write back.
    ///
    /// An entry heavier than the whole capacity still goes in (after
    /// evicting everything else) — refusing it would make the hot vertex
    /// uncacheable, which is worse than a transient overshoot.
    pub fn insert_weighted(
        &mut self,
        key: K,
        value: V,
        dirty: bool,
        weight: usize,
    ) -> Vec<(K, V, bool)> {
        let mut evicted = Vec::new();
        if let Some(&idx) = self.map.get(&key) {
            // Replace in place; dirtiness is sticky.
            self.detach(idx);
            self.attach_front(idx);
            let entry = self.entries[idx].as_mut().unwrap();
            entry.1 = value;
            entry.2 = entry.2 || dirty;
            self.used = self.used - self.weights[idx] + weight;
            self.weights[idx] = weight;
            // A heavier replacement may push others out (never itself —
            // it is the head now).
            while self.used > self.capacity && self.tail != idx {
                evicted.push(self.evict_tail());
            }
            return evicted;
        }
        while self.used + weight > self.capacity && self.tail != NONE {
            evicted.push(self.evict_tail());
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx] = Some((key, value, dirty));
                self.weights[idx] = weight;
                idx
            }
            None => {
                self.entries.push(Some((key, value, dirty)));
                self.weights.push(weight);
                self.links.push((NONE, NONE));
                self.entries.len() - 1
            }
        };
        self.used += weight;
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// A non-destructive copy of every entry as `(key, value, dirty,
    /// weight)` in most-recently-used-first order. Unlike
    /// [`Self::drain`], the weights come along, so a caller can rebuild
    /// an exact replica of the cache (recency order *and* byte budget) —
    /// the service log's cache snapshot path.
    pub fn snapshot_mru(&self) -> Vec<(K, V, bool, usize)>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NONE {
            let (k, v, dirty) = self.entries[idx].as_ref().unwrap();
            out.push((*k, v.clone(), *dirty, self.weights[idx]));
            idx = self.links[idx].1;
        }
        out
    }

    /// Overwrites the hit/miss counters — used when an exact replica of a
    /// cache is rebuilt from a snapshot and its observability counters
    /// must carry over too.
    pub fn set_counters(&mut self, hits: u64, misses: u64) {
        self.hits = hits;
        self.misses = misses;
    }

    /// Drains every entry, returning `(key, value, dirty)` triples in
    /// most-recently-used-first order (used to flush dirty values).
    pub fn drain(&mut self) -> Vec<(K, V, bool)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NONE {
            let next = self.links[idx].1;
            out.push(self.entries[idx].take().unwrap());
            idx = next;
        }
        self.map.clear();
        self.entries.clear();
        self.weights.clear();
        self.links.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
        self.used = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut c: LruCache<u32, f64> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.insert(1, 1.0, false);
        assert_eq!(c.get(&1), Some(&1.0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10, false);
        c.insert(2, 20, false);
        c.get(&1); // 2 becomes LRU
        let evicted = c.insert(3, 30, false).unwrap();
        assert_eq!(evicted, (2, 20, false));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert!(!c.contains(&2));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10, false);
        *c.get_mut(&1).unwrap() = 11;
        let (k, v, dirty) = c.insert(2, 20, false).unwrap();
        assert_eq!((k, v), (1, 11));
        assert!(dirty);
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10, false);
        assert!(c.insert(1, 11, true).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn dirtiness_is_sticky_on_replace() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10, true);
        c.insert(1, 11, false);
        let (_, _, dirty) = c.insert(2, 20, false).unwrap();
        assert!(dirty, "earlier dirty flag must survive replacement");
    }

    #[test]
    fn drain_returns_everything_mru_first() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10, false);
        c.insert(2, 20, true);
        c.insert(3, 30, false);
        let all = c.drain();
        assert_eq!(all, vec![(3, 30, false), (2, 20, true), (1, 10, false)]);
        assert!(c.is_empty());
        // Cache is reusable after drain.
        c.insert(4, 40, false);
        assert_eq!(c.get(&4), Some(&40));
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c: LruCache<u32, u32> = LruCache::new(16);
        for i in 0..1000u32 {
            c.insert(i % 64, i, i % 3 == 0);
            if i % 5 == 0 {
                c.get(&(i % 16));
            }
            assert!(c.len() <= 16);
        }
        assert_eq!(c.len(), 16);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c: LruCache<u32, String> = LruCache::new(2);
        c.insert(1, "a".into(), false);
        c.insert(2, "b".into(), false);
        c.insert(3, "c".into(), false); // evicts 1, frees a slot
        c.insert(4, "d".into(), false); // evicts 2, reuses slot
        assert_eq!(c.get(&3), Some(&"c".to_string()));
        assert_eq!(c.get(&4), Some(&"d".to_string()));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: LruCache<u32, u32> = LruCache::new(0);
    }

    #[test]
    fn byte_weights_bound_total_not_count() {
        let mut c: LruCache<u32, Vec<u8>> = LruCache::new(100);
        assert!(c.insert_weighted(1, vec![0; 40], false, 40).is_empty());
        assert!(c.insert_weighted(2, vec![0; 40], false, 40).is_empty());
        assert_eq!(c.used_weight(), 80);
        // 40 more does not fit: the LRU entry (1) goes.
        let ev = c.insert_weighted(3, vec![0; 40], true, 40);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].0, 1);
        assert_eq!(c.used_weight(), 80);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn one_heavy_insert_evicts_many() {
        let mut c: LruCache<u32, u32> = LruCache::new(10);
        for i in 0..5 {
            c.insert_weighted(i, i, i % 2 == 0, 2);
        }
        assert_eq!(c.used_weight(), 10);
        let ev = c.insert_weighted(9, 90, false, 9);
        // LRU-first: 0, 1, 2, 3 must go (8 weight freed) plus 4.
        let keys: Vec<u32> = ev.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.used_weight(), 9);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entry_still_cached_after_clearing() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert_weighted(1, 10, false, 2);
        let ev = c.insert_weighted(2, 20, false, 100);
        assert_eq!(ev.len(), 1);
        assert!(c.contains(&2));
        assert_eq!(c.used_weight(), 100);
        // Next insert displaces the oversized one again.
        let ev = c.insert_weighted(3, 30, false, 1);
        assert_eq!(ev[0].0, 2);
        assert_eq!(c.used_weight(), 1);
    }

    #[test]
    fn reweighting_replacement_shrinks_others() {
        let mut c: LruCache<u32, u32> = LruCache::new(10);
        c.insert_weighted(1, 10, false, 4);
        c.insert_weighted(2, 20, false, 4);
        // Re-inserting 2 at a heavier weight pushes 1 out, never itself.
        let ev = c.insert_weighted(2, 21, false, 9);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].0, 1);
        assert_eq!(c.get(&2), Some(&21));
        assert_eq!(c.used_weight(), 9);
    }

    #[test]
    fn hit_miss_counters_survive_weighted_use() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        c.insert_weighted(1, 1, false, 3);
        c.get(&1);
        c.get(&2);
        c.insert_weighted(2, 2, false, 5);
        c.get_mut(&2);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.used_weight(), 8);
    }
}
