//! Simulated-disk substrate for HybridGraph.
//!
//! The paper's evaluation runs on two clusters whose disks differ only in
//! the four throughput numbers of Table 3 (random-read, random-write and
//! sequential-read MB/s, plus network MB/s). Its entire analysis — Eqs. 7,
//! 8 and the switching metric `Q_t` of Eq. 11 — is expressed in *bytes per
//! access class* divided by those throughputs.
//!
//! This crate therefore reproduces the disk as an accounting substrate:
//!
//! * [`profile`] — device throughput profiles (Table 3 presets),
//! * [`stats`] — atomic byte/op counters per access class and the modeled
//!   elapsed-time computation,
//! * [`vfs`] — a minimal virtual file system (in-memory and real-directory
//!   backends) through which every store routes its bytes,
//! * [`record`] — fixed-size value/message serialization,
//! * [`value_store`] — the per-worker vertex-value segment,
//! * [`adjacency`] — the push-side adjacency-list layout,
//! * [`veblock`] — the paper's VE-BLOCK layout (Vblocks, Eblocks,
//!   fragments, per-block metadata `X_j`),
//! * [`msg_store`] — the push receiver-side message buffer with spill,
//! * [`lru`] — the LRU vertex cache used by the per-vertex pull baseline,
//! * [`checkpoint`] — superstep-boundary checkpoint framing for the
//!   engine's fault-tolerance subsystem (classified sequential I/O like
//!   everything else),
//! * [`msg_log`] — sender-side outgoing-message log segments enabling
//!   Pregel-style confined recovery (one classified sequential write per
//!   superstep),
//! * [`shared_cache`] — the cross-job byte-weighted edge-extent cache for
//!   the multi-tenant service, with per-requesting-job attribution,
//! * [`service_log`] — the append-only write-ahead log the durable
//!   service persists its control-plane state through (commit-marker
//!   framing, torn-tail healing, codec-aware).

pub mod adjacency;
pub mod checkpoint;
pub mod gather;
pub mod lru;
pub mod msg_log;
pub mod msg_store;
pub mod profile;
pub mod record;
pub mod service_log;
pub mod shared_cache;
pub mod stats;
pub mod stream;
pub mod value_store;
pub mod veblock;
pub mod vfs;

pub use checkpoint::{CheckpointReader, CheckpointWriter};
pub use hybridgraph_codec::{
    decode_extent, encode_extent, Codec, CodecChoice, CodecError, ExtentKind,
};
pub use msg_log::{MsgLogReader, MsgLogWriter};
pub use profile::DeviceProfile;
pub use record::Record;
pub use service_log::{
    codec_from_tag, codec_tag, decode_graph, encode_graph, LogRecord, PayloadReader, PayloadWriter,
    ServiceLog,
};
pub use shared_cache::{
    CacheSnapshot, ShardSnapshot, SharedCacheStats, SharedEdgeCache, CACHE_ENTRY_OVERHEAD,
};
pub use stats::{AccessClass, IoSnapshot, IoStats};
pub use vfs::{DirVfs, MemVfs, PrefixVfs, Vfs, VfsFile};
