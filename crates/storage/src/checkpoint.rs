//! Superstep-boundary checkpoint serialization.
//!
//! Pregel-lineage BSP engines recover from worker failures by replaying
//! from the last *consistent cut*, and in a BSP engine the per-superstep
//! barrier is exactly such a cut (GraphHP's hybrid-BSP analysis makes the
//! same observation). Because HybridGraph's graph and message state are
//! already disk-resident and byte-accounted through the [`Vfs`], a
//! checkpoint is just one more classified sequential write: the engine
//! serializes each worker's recoverable state into a single buffer and
//! appends it to the worker's VFS in one [`AccessClass::SeqWrite`], so
//! checkpoint I/O shows up in `IoStats` — and therefore in modeled time —
//! like every other byte the system moves.
//!
//! The format is a small versioned binary framing (the workspace carries
//! no serde *format* crate, and the engine's records are fixed-width
//! anyway, in the spirit of [`crate::record`]):
//!
//! ```text
//! magic u32 | version u32 | superstep u64 | fields...
//! ```
//!
//! Field encoding is caller-driven via the typed `put_*`/`get_*` pairs of
//! [`CheckpointWriter`] and [`CheckpointReader`]; both sides must agree on
//! the field sequence (the engine's `Worker::write_checkpoint` /
//! `Worker::restore_checkpoint` are the two sides). A trailing length
//! word lets the reader detect truncated files.

use crate::stats::AccessClass;
use crate::vfs::Vfs;
use hybridgraph_codec::{decode_blob_frame, encode_blob_frame, CodecChoice};
use std::io;

/// File magic: `HGCK` little-endian.
pub const CHECKPOINT_MAGIC: u32 = 0x4b43_4748;
/// Format version for plain (uncompressed) checkpoints.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Format version when the field body is wrapped in one codec blob frame.
pub const CHECKPOINT_VERSION_CODED: u32 = 2;

const HEADER_BYTES: usize = 4 + 4 + 8;

/// The VFS file name of the checkpoint taken after `superstep`.
pub fn checkpoint_file_name(superstep: u64) -> String {
    format!("ckpt_{superstep:012}")
}

/// True if a checkpoint for `superstep` exists in `vfs`.
pub fn has_checkpoint(vfs: &dyn Vfs, superstep: u64) -> bool {
    vfs.exists(&checkpoint_file_name(superstep))
}

/// Removes the checkpoint for `superstep`, if present (retention pruning).
pub fn remove_checkpoint(vfs: &dyn Vfs, superstep: u64) -> io::Result<()> {
    vfs.remove(&checkpoint_file_name(superstep))
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt checkpoint: {what}"),
    )
}

/// Accumulates one worker's recoverable state and commits it as a single
/// classified sequential write.
pub struct CheckpointWriter {
    superstep: u64,
    buf: Vec<u8>,
}

impl CheckpointWriter {
    /// A writer for the checkpoint taken after `superstep`.
    pub fn new(superstep: u64) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        buf.extend_from_slice(&superstep.to_le_bytes());
        CheckpointWriter { superstep, buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (bit-exact restore).
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Appends a length-prefixed byte run.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_u64(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Appends a length-prefixed `u64` word run (bitset contents).
    pub fn put_words(&mut self, words: &[u64]) {
        self.put_u64(words.len() as u64);
        for &w in words {
            self.put_u64(w);
        }
    }

    /// Bytes accumulated so far (header included).
    pub fn payload_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Writes the checkpoint to `vfs` as one sequential write and returns
    /// the total bytes written. Any prior checkpoint for the same
    /// superstep is truncated.
    pub fn commit(self, vfs: &dyn Vfs) -> io::Result<u64> {
        self.commit_with(vfs, CodecChoice::None)
    }

    /// Like [`CheckpointWriter::commit`], but with a codec the field body
    /// is wrapped in one blob frame (format version 2) and the write is
    /// accounted physical-vs-logical. Returns the physical bytes written.
    pub fn commit_with(mut self, vfs: &dyn Vfs, codec: CodecChoice) -> io::Result<u64> {
        let file = vfs.create(&checkpoint_file_name(self.superstep))?;
        if codec.is_none() {
            // Trailing length word: lets the reader detect truncation.
            let total = self.buf.len() as u64 + 8;
            self.buf.extend_from_slice(&total.to_le_bytes());
            file.append(AccessClass::SeqWrite, &self.buf)?;
            return Ok(total);
        }
        let logical = self.buf.len() as u64 + 8; // what version 1 would write
        let body = &self.buf[HEADER_BYTES..];
        let mut out = Vec::with_capacity(HEADER_BYTES + body.len() / 2 + 16);
        out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        out.extend_from_slice(&CHECKPOINT_VERSION_CODED.to_le_bytes());
        out.extend_from_slice(&self.superstep.to_le_bytes());
        out.extend_from_slice(&encode_blob_frame(codec, body));
        let total = out.len() as u64 + 8;
        out.extend_from_slice(&total.to_le_bytes());
        file.append_coded(AccessClass::SeqWrite, &out, logical)?;
        Ok(total)
    }
}

/// Reads back a committed checkpoint, verifying framing as it goes.
/// Accepts both plain (v1) and coded (v2) files — the file itself says
/// which, so no codec configuration is needed to restore.
pub struct CheckpointReader {
    body: Vec<u8>,
    pos: usize,
    superstep: u64,
}

impl CheckpointReader {
    /// Opens and validates the checkpoint for `superstep` (one sequential
    /// read of the whole file).
    pub fn open(vfs: &dyn Vfs, superstep: u64) -> io::Result<Self> {
        let file = vfs.open(&checkpoint_file_name(superstep))?;
        let data = file.read_all(AccessClass::SeqRead)?;
        if data.len() < HEADER_BYTES + 8 {
            return Err(corrupt("file shorter than header"));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != CHECKPOINT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != CHECKPOINT_VERSION && version != CHECKPOINT_VERSION_CODED {
            return Err(corrupt("unsupported version"));
        }
        let ss = u64::from_le_bytes(data[8..16].try_into().unwrap());
        if ss != superstep {
            return Err(corrupt("superstep mismatch"));
        }
        let trailer = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
        if trailer != data.len() as u64 {
            return Err(corrupt("length trailer mismatch (truncated write?)"));
        }
        let body = if version == CHECKPOINT_VERSION {
            data[HEADER_BYTES..data.len() - 8].to_vec()
        } else {
            let mut pos = HEADER_BYTES;
            let raw = decode_blob_frame(&data[..data.len() - 8], &mut pos)
                .map_err(|e| corrupt(&e.to_string()))?;
            if pos != data.len() - 8 {
                return Err(corrupt("coded body length mismatch"));
            }
            // The whole-file read above charged logical == physical; top
            // up to the decoded (v1-equivalent) logical size.
            let logical = (HEADER_BYTES + raw.len() + 8) as u64;
            vfs.stats().record_logical(
                AccessClass::SeqRead,
                logical.saturating_sub(data.len() as u64),
            );
            raw
        };
        Ok(CheckpointReader {
            body,
            pos: 0,
            superstep,
        })
    }

    /// The superstep this checkpoint was taken after.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        // `n` comes from on-disk data: compare without `pos + n`, which a
        // corrupt length near `usize::MAX` would overflow.
        if n > self.body.len() - self.pos {
            return Err(corrupt("field past end"));
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte run.
    pub fn get_bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.get_u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed `u64` word run.
    pub fn get_words(&mut self) -> io::Result<Vec<u64>> {
        let n = self.get_u64()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn roundtrip_all_field_kinds() {
        let vfs = MemVfs::new();
        let mut w = CheckpointWriter::new(7);
        w.put_u8(3);
        w.put_u32(1234);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.1);
        w.put_bytes(b"hello");
        w.put_words(&[1, 2, 3]);
        let bytes = w.commit(&vfs).unwrap();
        assert!(has_checkpoint(&vfs, 7));
        assert!(!has_checkpoint(&vfs, 8));

        let mut r = CheckpointReader::open(&vfs, 7).unwrap();
        assert_eq!(r.superstep(), 7);
        assert_eq!(r.get_u8().unwrap(), 3);
        assert_eq!(r.get_u32().unwrap(), 1234);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -0.1);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_words().unwrap(), vec![1, 2, 3]);
        // Trailer guards against over-reads.
        assert!(r.get_u64().is_err());
        // Everything went through one accounted sequential write.
        assert_eq!(vfs.stats().snapshot().seq_write_bytes, bytes);
        assert_eq!(vfs.stats().snapshot().seq_write_ops, 1);
    }

    #[test]
    fn checkpoint_io_is_classified_sequential() {
        let vfs = MemVfs::new();
        let mut w = CheckpointWriter::new(1);
        w.put_bytes(&[0u8; 1000]);
        let total = w.commit(&vfs).unwrap();
        let snap = vfs.stats().snapshot();
        assert_eq!(snap.seq_write_bytes, total);
        assert_eq!(snap.rand_write_bytes, 0);
        CheckpointReader::open(&vfs, 1).unwrap();
        assert_eq!(vfs.stats().snapshot().seq_read_bytes, total);
    }

    #[test]
    fn superstep_mismatch_rejected() {
        let vfs = MemVfs::new();
        CheckpointWriter::new(4).commit(&vfs).unwrap();
        assert!(CheckpointReader::open(&vfs, 4).is_ok());
        // Renaming by rewriting under a different name: header disagrees.
        let data = vfs
            .open(&checkpoint_file_name(4))
            .unwrap()
            .read_all(AccessClass::SeqRead)
            .unwrap();
        vfs.create(&checkpoint_file_name(5))
            .unwrap()
            .append(AccessClass::SeqWrite, &data)
            .unwrap();
        assert!(CheckpointReader::open(&vfs, 5).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let vfs = MemVfs::new();
        let mut w = CheckpointWriter::new(2);
        w.put_bytes(&[7u8; 64]);
        w.commit(&vfs).unwrap();
        let full = vfs
            .open(&checkpoint_file_name(2))
            .unwrap()
            .read_all(AccessClass::SeqRead)
            .unwrap();
        let f = vfs.create(&checkpoint_file_name(2)).unwrap();
        f.append(AccessClass::SeqWrite, &full[..full.len() - 10])
            .unwrap();
        assert!(CheckpointReader::open(&vfs, 2).is_err());
    }

    #[test]
    fn coded_commit_roundtrips_and_accounts_both_sides() {
        for codec in [CodecChoice::Gaps, CodecChoice::Block, CodecChoice::Auto] {
            let vfs = MemVfs::new();
            let mut w = CheckpointWriter::new(11);
            w.put_u8(9);
            w.put_f64(2.5);
            w.put_bytes(&[42u8; 4096]); // highly compressible body
            w.put_words(&[5; 100]);
            let logical = w.payload_bytes() + 8;
            let physical = w.commit_with(&vfs, codec).unwrap();
            // Gaps is structure-aware only: its blob frames stay raw.
            if !matches!(codec, CodecChoice::Gaps) {
                assert!(physical < logical, "{codec:?} must shrink this body");
            }
            let wsnap = vfs.stats().snapshot();
            assert_eq!(wsnap.seq_write_bytes, physical);
            assert_eq!(wsnap.seq_write_logical_bytes, logical);

            let mut r = CheckpointReader::open(&vfs, 11).unwrap();
            assert_eq!(r.get_u8().unwrap(), 9);
            assert_eq!(r.get_f64().unwrap(), 2.5);
            assert_eq!(r.get_bytes().unwrap(), vec![42u8; 4096]);
            assert_eq!(r.get_words().unwrap(), vec![5; 100]);
            assert!(r.get_u8().is_err(), "no fields past the body");
            let rsnap = vfs.stats().snapshot();
            assert_eq!(rsnap.seq_read_bytes, physical);
            // The whole-file read charges logical == physical up front,
            // then tops up — so read logical is max(physical, v1 size).
            assert_eq!(rsnap.seq_read_logical_bytes, logical.max(physical));
        }
    }

    #[test]
    fn coded_truncated_file_rejected() {
        let vfs = MemVfs::new();
        let mut w = CheckpointWriter::new(8);
        w.put_bytes(&[1u8; 500]);
        w.commit_with(&vfs, CodecChoice::Block).unwrap();
        let full = vfs
            .open(&checkpoint_file_name(8))
            .unwrap()
            .read_all(AccessClass::SeqRead)
            .unwrap();
        let f = vfs.create(&checkpoint_file_name(8)).unwrap();
        f.append(AccessClass::SeqWrite, &full[..full.len() - 12])
            .unwrap();
        assert!(CheckpointReader::open(&vfs, 8).is_err());
    }

    #[test]
    fn missing_checkpoint_is_not_found() {
        let vfs = MemVfs::new();
        assert!(CheckpointReader::open(&vfs, 3).is_err());
        remove_checkpoint(&vfs, 3).unwrap(); // idempotent
    }

    #[test]
    fn remove_prunes_retention() {
        let vfs = MemVfs::new();
        CheckpointWriter::new(3).commit(&vfs).unwrap();
        CheckpointWriter::new(6).commit(&vfs).unwrap();
        remove_checkpoint(&vfs, 3).unwrap();
        assert!(!has_checkpoint(&vfs, 3));
        assert!(has_checkpoint(&vfs, 6));
    }
}
