//! The VE-BLOCK on-disk graph layout (paper §4.1).
//!
//! VE-BLOCK separates a worker's graph into:
//!
//! * **Vblocks** — fixed-size ranges of vertices (values live in the
//!   [`ValueStore`](crate::value_store::ValueStore), block-aligned),
//! * **Eblocks** `g_{j,i}` — for each local source block `b_j` and each
//!   *global* destination block `b_i`, the edges from `b_j` into `b_i`,
//!   clustered per source vertex into **fragments**
//!   `(svertex id, edge count, edges…)`,
//! * **metadata `X_j`** — per source block: vertex count, total in/out
//!   degree, a bitmap over destination blocks (bit `i` set iff `g_{j,i}` is
//!   non-empty) and the dynamic responding indicator `res` maintained by
//!   the engine.
//!
//! Answering a pull request for block `b_i` reads each non-empty `g_{j,i}`
//! sequentially (edge bytes + per-fragment auxiliary bytes — the paper's
//! `IO(E^t)` and `IO(F^t)`) plus one random svertex-value read per
//! responding fragment (`IO(V^t_rr)`).

use crate::record::Record;
use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_codec::{decode_extent, encode_extent, CodecChoice, ExtentKind};
use hybridgraph_graph::{BlockId, BlockLayout, Edge, Graph, VertexId, WorkerId};
use std::io;

/// Byte cost of one fragment's auxiliary data: svertex id + edge count.
pub const FRAGMENT_AUX_BYTES: u64 = 8;

/// Static per-Vblock metadata (the paper's `X_j`, minus the dynamic `res`
/// flag, which the engine owns because it changes every superstep).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Number of vertices in the block (`#`).
    pub vertex_count: u32,
    /// Total in-degree of the block's vertices (`ind`).
    pub in_degree: u64,
    /// Total out-degree of the block's vertices (`outd`).
    pub out_degree: u64,
    /// Bit `i` set iff there are edges from this block to global block `i`.
    bitmap: Vec<u64>,
}

impl BlockMeta {
    fn new(vertex_count: u32, num_blocks: usize) -> Self {
        BlockMeta {
            vertex_count,
            in_degree: 0,
            out_degree: 0,
            bitmap: vec![0; num_blocks.div_ceil(64)],
        }
    }

    fn set_bit(&mut self, i: BlockId) {
        self.bitmap[i.index() / 64] |= 1 << (i.index() % 64);
    }

    /// True if the block has at least one edge into global block `i`.
    pub fn has_edges_to(&self, i: BlockId) -> bool {
        (self.bitmap[i.index() / 64] >> (i.index() % 64)) & 1 == 1
    }

    /// In-memory footprint of this metadata entry in bytes (counted toward
    /// the memory-usage curves of Fig. 14(d) and Fig. 23).
    pub fn memory_bytes(&self) -> u64 {
        4 + 8 + 8 + self.bitmap.len() as u64 * 8 + 1 // fields + res flag
    }
}

/// Index entry for one Eblock `g_{j,i}` inside its block file.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EblockInfo {
    /// Byte offset of the Eblock inside the local block's edge file.
    pub offset: u64,
    /// Total *logical* Eblock bytes (edges + fragment auxiliary data,
    /// uncompressed).
    pub bytes: u64,
    /// Logical auxiliary bytes: `fragments * FRAGMENT_AUX_BYTES`.
    pub aux_bytes: u64,
    /// Logical edge payload bytes.
    pub edge_bytes: u64,
    /// *Physical* bytes the Eblock occupies on disk. Equal to `bytes`
    /// when the store was built without a codec.
    pub stored_bytes: u64,
    /// Number of fragments.
    pub fragments: u32,
}

impl EblockInfo {
    /// Splits the physical extent into (edge, aux) shares proportional to
    /// the logical split, for cost-model terms that want the two
    /// separately (`IO(E^t)` vs `IO(F^t)`). The shares always sum to
    /// `stored_bytes`.
    pub fn stored_split(&self) -> (u64, u64) {
        if self.bytes == 0 {
            return (0, 0);
        }
        let aux = self.stored_bytes * self.aux_bytes / self.bytes;
        (self.stored_bytes - aux, aux)
    }
}

/// One decoded fragment: a source vertex and its clustered edges into the
/// requested destination block.
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment {
    /// The source vertex.
    pub src: VertexId,
    /// Its edges into the destination block.
    pub edges: Vec<Edge>,
}

/// The VE-BLOCK store for one worker's local blocks.
pub struct VeBlockStore {
    /// One edge file per local block, holding its `V` Eblocks back to back.
    files: Vec<VfsFile>,
    /// `index[j_local][i_global]` — extent of `g_{j,i}`. Arc-shared so
    /// cross-job views are cheap.
    index: std::sync::Arc<Vec<Vec<EblockInfo>>>,
    /// `meta[j_local]` — `X_j`.
    meta: std::sync::Arc<Vec<BlockMeta>>,
    /// Global id of local block 0 (a worker's blocks are contiguous).
    first_block: u32,
    /// First vertex id covered by the local blocks.
    base_vertex: u32,
    /// `fragment_counts[v - base_vertex]` — how many fragments vertex `v`
    /// appears in (its out-edges span that many Eblocks). Used to estimate
    /// `IO(V^t_rr)` for the hybrid predictor without running b-pull.
    fragment_counts: std::sync::Arc<Vec<u32>>,
    total_fragments: u64,
    total_edge_bytes: u64,
    /// The codec every Eblock extent was written (and is read) with.
    codec: CodecChoice,
}

impl VeBlockStore {
    /// Builds the VE-BLOCK layout for `worker`'s blocks of `layout` over
    /// `graph` without compression; see [`VeBlockStore::build_with`].
    pub fn build(
        vfs: &dyn Vfs,
        graph: &Graph,
        layout: &BlockLayout,
        worker: WorkerId,
    ) -> io::Result<VeBlockStore> {
        VeBlockStore::build_with(vfs, graph, layout, worker, CodecChoice::None)
    }

    /// Builds the VE-BLOCK layout for `worker`'s blocks of `layout` over
    /// `graph`. Edge and auxiliary bytes are written sequentially (this is
    /// the `VE-BLOCK` loading path measured in Fig. 16). With a codec,
    /// each Eblock is stored as one coded extent (fragment svertex ids and
    /// per-fragment neighbour ids are ascending, so delta-gap coding
    /// applies); logical byte accounting still sees the uncompressed
    /// sizes.
    pub fn build_with(
        vfs: &dyn Vfs,
        graph: &Graph,
        layout: &BlockLayout,
        worker: WorkerId,
        codec: CodecChoice,
    ) -> io::Result<VeBlockStore> {
        let num_blocks = layout.num_blocks();
        let local_blocks: Vec<BlockId> = layout.blocks_of_worker(worker).collect();
        let first_block = local_blocks.first().map_or(0, |b| b.0);
        let base_vertex = local_blocks
            .first()
            .map_or(0, |&b| layout.block_range(b).start);
        let local_vertices = local_blocks
            .iter()
            .map(|&b| layout.block_range(b).len())
            .sum::<usize>();
        let in_degrees = graph.in_degrees();

        let mut files = Vec::with_capacity(local_blocks.len());
        let mut index = Vec::with_capacity(local_blocks.len());
        let mut meta = Vec::with_capacity(local_blocks.len());
        let mut fragment_counts = vec![0u32; local_vertices];
        let mut total_fragments = 0u64;
        let mut total_edge_bytes = 0u64;

        for &bj in &local_blocks {
            let range = layout.block_range(bj);
            let mut m = BlockMeta::new(range.len() as u32, num_blocks);
            // Accumulate per-destination-block fragment buffers.
            let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); num_blocks];
            let mut frag_counts = vec![0u32; num_blocks];
            for v in range.clone() {
                let v = VertexId(v);
                m.in_degree += in_degrees[v.index()] as u64;
                let row = graph.out_edges(v);
                m.out_degree += row.len() as u64;
                // CSR rows are sorted by destination, so destination blocks
                // appear in ascending runs: one pass emits each fragment,
                // with one block lookup per run (not per edge).
                let mut k = 0;
                while k < row.len() {
                    let bi = layout.block_of(row[k].dst);
                    let block_end = layout.block_range(bi).end;
                    let mut end = k + 1;
                    while end < row.len() && row[end].dst.0 < block_end {
                        end += 1;
                    }
                    let buf = &mut bufs[bi.index()];
                    v.0.append_to_vec(buf);
                    ((end - k) as u32).append_to_vec(buf);
                    for e in &row[k..end] {
                        e.append_to(buf);
                    }
                    frag_counts[bi.index()] += 1;
                    fragment_counts[(v.0 - base_vertex) as usize] += 1;
                    m.set_bit(bi);
                    k = end;
                }
            }
            // Concatenate the Eblocks into this block's file.
            let file = vfs.create(&format!("eblk_{}", bj.0))?;
            let mut block_index = Vec::with_capacity(num_blocks);
            let mut offset = 0u64;
            for (i, buf) in bufs.iter().enumerate() {
                let aux = frag_counts[i] as u64 * FRAGMENT_AUX_BYTES;
                let stored_bytes = if buf.is_empty() {
                    0
                } else if codec.is_none() {
                    file.append(AccessClass::SeqWrite, buf)?;
                    buf.len() as u64
                } else {
                    let coded = encode_extent(codec, ExtentKind::Fragments, buf);
                    file.append_coded(AccessClass::SeqWrite, &coded, buf.len() as u64)?;
                    coded.len() as u64
                };
                let info = EblockInfo {
                    offset,
                    bytes: buf.len() as u64,
                    aux_bytes: aux,
                    edge_bytes: buf.len() as u64 - aux,
                    stored_bytes,
                    fragments: frag_counts[i],
                };
                offset += stored_bytes;
                total_fragments += frag_counts[i] as u64;
                total_edge_bytes += info.edge_bytes;
                block_index.push(info);
            }
            files.push(file);
            index.push(block_index);
            meta.push(m);
        }

        Ok(VeBlockStore {
            files,
            index: std::sync::Arc::new(index),
            meta: std::sync::Arc::new(meta),
            first_block,
            base_vertex,
            fragment_counts: std::sync::Arc::new(fragment_counts),
            total_fragments,
            total_edge_bytes,
            codec,
        })
    }

    /// A read-only view over the same Eblock files whose I/O is recorded
    /// into `stats` instead of the builder's sink. Index, metadata and
    /// fragment counts are Arc-shared; the files are immutable after
    /// [`VeBlockStore::build_with`] (vertex *values* live in the per-job
    /// [`ValueStore`](crate::value_store::ValueStore), never here), so
    /// concurrent views from different jobs are safe.
    pub fn share_view(&self, stats: std::sync::Arc<crate::stats::IoStats>) -> VeBlockStore {
        VeBlockStore {
            files: self
                .files
                .iter()
                .map(|f| f.with_stats(std::sync::Arc::clone(&stats)))
                .collect(),
            index: std::sync::Arc::clone(&self.index),
            meta: std::sync::Arc::clone(&self.meta),
            first_block: self.first_block,
            base_vertex: self.base_vertex,
            fragment_counts: std::sync::Arc::clone(&self.fragment_counts),
            total_fragments: self.total_fragments,
            total_edge_bytes: self.total_edge_bytes,
            codec: self.codec,
        }
    }

    /// How many fragments local vertex `v` appears in (no I/O).
    pub fn fragments_of(&self, v: VertexId) -> u32 {
        let i = (v.0 - self.base_vertex) as usize;
        debug_assert!(i < self.fragment_counts.len(), "vertex {v} not local");
        self.fragment_counts[i]
    }

    /// Total *logical* Eblock bytes a pull request touching local block
    /// `j` scans: `(edge bytes, auxiliary bytes)` summed over all
    /// destinations.
    pub fn block_scan_bytes(&self, j: BlockId) -> (u64, u64) {
        let per = &self.index[self.local_of(j)];
        let edge = per.iter().map(|i| i.edge_bytes).sum();
        let aux = per.iter().map(|i| i.aux_bytes).sum();
        (edge, aux)
    }

    /// Like [`VeBlockStore::block_scan_bytes`] but in *physical* stored
    /// bytes — what the device actually moves, and therefore what the
    /// `Q_t` predictor should charge for a b-pull scan of block `j`.
    pub fn block_scan_stored_bytes(&self, j: BlockId) -> (u64, u64) {
        let per = &self.index[self.local_of(j)];
        let mut edge = 0;
        let mut aux = 0;
        for info in per {
            let (e, a) = info.stored_split();
            edge += e;
            aux += a;
        }
        (edge, aux)
    }

    /// Number of local blocks.
    pub fn local_blocks(&self) -> usize {
        self.meta.len()
    }

    /// Global id of the first local block.
    pub fn first_block(&self) -> BlockId {
        BlockId(self.first_block)
    }

    #[inline]
    fn local_of(&self, b: BlockId) -> usize {
        let j = (b.0 - self.first_block) as usize;
        debug_assert!(j < self.meta.len(), "block {b} is not local");
        j
    }

    /// Metadata `X_j` of local block `b`.
    pub fn meta(&self, b: BlockId) -> &BlockMeta {
        &self.meta[self.local_of(b)]
    }

    /// Extent info of Eblock `g_{j,i}`.
    pub fn eblock_info(&self, j: BlockId, i: BlockId) -> &EblockInfo {
        &self.index[self.local_of(j)][i.index()]
    }

    /// Total fragments across the store (the paper's `f`, used by
    /// Theorem 2's bound `B⊥ = |E|/2 − f`).
    pub fn total_fragments(&self) -> u64 {
        self.total_fragments
    }

    /// Total logical edge payload bytes in the store.
    pub fn total_edge_bytes(&self) -> u64 {
        self.total_edge_bytes
    }

    /// Total physical bytes the store's Eblock files occupy.
    pub fn total_stored_bytes(&self) -> u64 {
        self.index
            .iter()
            .flat_map(|per| per.iter())
            .map(|i| i.stored_bytes)
            .sum()
    }

    /// The codec the store was built with.
    pub fn codec(&self) -> CodecChoice {
        self.codec
    }

    /// In-memory footprint of the `X_j` metadata (what the paper's memory
    /// curves count: `#`, `ind`, `outd`, bitmap, `res` — Fig. 23's
    /// "metadata in VE-BLOCK").
    pub fn metadata_memory_bytes(&self) -> u64 {
        self.meta.iter().map(|m| m.memory_bytes()).sum()
    }

    /// In-memory footprint of the Eblock extent index (an implementation
    /// detail of this store, reported separately).
    pub fn index_memory_bytes(&self) -> u64 {
        self.index.iter().map(|per| per.len() as u64 * 44).sum()
    }

    /// Sequentially reads and decodes Eblock `g_{j,i}`.
    ///
    /// Returns the fragments in svertex order. Accounts the whole Eblock
    /// extent (edges + auxiliary data) as a sequential read — physical
    /// stored bytes on the device, logical uncompressed bytes beside them;
    /// the caller is responsible for the random svertex value reads.
    pub fn scan_eblock(&self, j: BlockId, i: BlockId) -> io::Result<Vec<Fragment>> {
        let jl = self.local_of(j);
        let info = self.index[jl][i.index()];
        if info.bytes == 0 {
            return Ok(Vec::new());
        }
        let bytes = if self.codec.is_none() {
            self.files[jl].read_vec(AccessClass::SeqRead, info.offset, info.bytes as usize)?
        } else {
            let coded = self.files[jl].read_vec_coded(
                AccessClass::SeqRead,
                info.offset,
                info.stored_bytes as usize,
                info.bytes,
            )?;
            decode_extent(ExtentKind::Fragments, &coded, info.bytes as usize)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        };
        let mut fragments = Vec::with_capacity(info.fragments as usize);
        let mut at = 0usize;
        while at < bytes.len() {
            let src = VertexId(u32::read_from(&bytes[at..at + 4]));
            let count = u32::read_from(&bytes[at + 4..at + 8]) as usize;
            at += 8;
            let mut edges = Vec::with_capacity(count);
            for _ in 0..count {
                edges.push(Edge::read_from(&bytes[at..at + 8]));
                at += 8;
            }
            fragments.push(Fragment { src, edges });
        }
        debug_assert_eq!(fragments.len(), info.fragments as usize);
        Ok(fragments)
    }
}

/// Little helper so `u32` values can append themselves like [`Record`]s.
trait AppendTo {
    fn append_to_vec(&self, out: &mut Vec<u8>);
}

impl AppendTo for u32 {
    #[inline]
    fn append_to_vec(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use hybridgraph_graph::{gen, Partition};

    fn layout(n: usize, workers: usize, per_worker: usize) -> (Partition, BlockLayout) {
        let p = Partition::range(n, workers);
        let l = BlockLayout::uniform(&p, per_worker);
        (p, l)
    }

    #[test]
    fn fragments_cover_all_edges() {
        let g = gen::uniform(60, 400, 7);
        let (_, l) = layout(60, 3, 2);
        let vfs = MemVfs::new();
        let mut total_edges = 0usize;
        for w in 0..3 {
            let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(w)).unwrap();
            for j in l.blocks_of_worker(WorkerId(w)) {
                for i in l.block_ids() {
                    for frag in s.scan_eblock(j, i).unwrap() {
                        // Fragment src belongs to block j, dsts to block i.
                        assert_eq!(l.block_of(frag.src), j);
                        for e in &frag.edges {
                            assert_eq!(l.block_of(e.dst), i);
                        }
                        total_edges += frag.edges.len();
                    }
                }
            }
        }
        assert_eq!(total_edges, g.num_edges());
    }

    #[test]
    fn metadata_matches_graph() {
        let g = gen::uniform(40, 200, 1);
        let (_, l) = layout(40, 2, 2);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(0)).unwrap();
        let ind = g.in_degrees();
        for j in l.blocks_of_worker(WorkerId(0)) {
            let m = s.meta(j);
            let r = l.block_range(j);
            assert_eq!(m.vertex_count, r.len() as u32);
            let want_out: u64 = r.clone().map(|v| g.out_degree(VertexId(v)) as u64).sum();
            let want_in: u64 = r.clone().map(|v| ind[v as usize] as u64).sum();
            assert_eq!(m.out_degree, want_out);
            assert_eq!(m.in_degree, want_in);
        }
    }

    #[test]
    fn bitmap_matches_eblock_contents() {
        let g = gen::uniform(50, 300, 9);
        let (_, l) = layout(50, 2, 3);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(1)).unwrap();
        for j in l.blocks_of_worker(WorkerId(1)) {
            for i in l.block_ids() {
                let has = s.eblock_info(j, i).fragments > 0;
                assert_eq!(s.meta(j).has_edges_to(i), has, "g_{{{j},{i}}}");
            }
        }
    }

    #[test]
    fn fragment_clustering_groups_per_source() {
        // star: all edges come from vertex 0 -> exactly one fragment per
        // non-empty destination block.
        let g = gen::star(32);
        let (_, l) = layout(32, 1, 4);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(0)).unwrap();
        let b0 = BlockId(0);
        for i in l.block_ids() {
            let info = s.eblock_info(b0, i);
            if info.fragments > 0 {
                assert_eq!(info.fragments, 1, "one fragment per dst block");
            }
        }
        assert_eq!(s.total_fragments(), 4); // vertex 0 reaches all 4 blocks
    }

    #[test]
    fn aux_and_edge_bytes_split() {
        let g = gen::uniform(30, 120, 4);
        let (_, l) = layout(30, 1, 3);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(0)).unwrap();
        let mut edge_bytes = 0;
        let mut aux_bytes = 0;
        for j in l.block_ids() {
            for i in l.block_ids() {
                let info = s.eblock_info(j, i);
                assert_eq!(info.bytes, info.edge_bytes + info.aux_bytes);
                assert_eq!(info.aux_bytes, info.fragments as u64 * FRAGMENT_AUX_BYTES);
                edge_bytes += info.edge_bytes;
                aux_bytes += info.aux_bytes;
            }
        }
        assert_eq!(edge_bytes, g.num_edges() as u64 * 8);
        assert_eq!(aux_bytes, s.total_fragments() * FRAGMENT_AUX_BYTES);
        assert_eq!(s.total_edge_bytes(), edge_bytes);
    }

    #[test]
    fn scan_accounts_sequential_read() {
        let g = gen::uniform(30, 120, 4);
        let (_, l) = layout(30, 1, 2);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(0)).unwrap();
        let before = vfs.stats().snapshot();
        let info = *s.eblock_info(BlockId(0), BlockId(1));
        s.scan_eblock(BlockId(0), BlockId(1)).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.seq_read_bytes, info.bytes);
        assert_eq!(d.rand_read_bytes, 0);
    }

    #[test]
    fn theorem1_fragments_grow_with_block_count() {
        // Theorem 1: E[#fragments] is proportional to (monotone in) V.
        let g = gen::rmat(256, 4096, gen::RmatParams::default(), 5);
        let mut prev = 0u64;
        for per_worker in [1usize, 2, 4, 8, 16] {
            let (_, l) = layout(256, 2, per_worker);
            let vfs = MemVfs::new();
            let mut frags = 0;
            for w in 0..2 {
                frags += VeBlockStore::build(&vfs, &g, &l, WorkerId(w))
                    .unwrap()
                    .total_fragments();
            }
            assert!(
                frags >= prev,
                "fragments must grow with V: {frags} < {prev}"
            );
            prev = frags;
        }
        // And it is bounded by |E|.
        assert!(prev <= g.num_edges() as u64);
    }

    #[test]
    fn per_vertex_fragment_counts() {
        let g = gen::uniform(40, 200, 6);
        let (_, l) = layout(40, 2, 2);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(0)).unwrap();
        // Sum of per-vertex counts equals total fragments.
        let sum: u64 = (0..20u32).map(|v| s.fragments_of(VertexId(v)) as u64).sum();
        assert_eq!(sum, s.total_fragments());
        // A vertex's fragment count is bounded by min(out-degree, V).
        for v in 0..20u32 {
            let fc = s.fragments_of(VertexId(v)) as usize;
            assert!(fc <= g.out_degree(VertexId(v)).min(l.num_blocks()));
        }
    }

    #[test]
    fn block_scan_totals() {
        let g = gen::uniform(30, 150, 2);
        let (_, l) = layout(30, 1, 3);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(0)).unwrap();
        for j in l.block_ids() {
            let (edge, aux) = s.block_scan_bytes(j);
            let want_edge: u64 = l.block_ids().map(|i| s.eblock_info(j, i).edge_bytes).sum();
            let want_aux: u64 = l.block_ids().map(|i| s.eblock_info(j, i).aux_bytes).sum();
            assert_eq!((edge, aux), (want_edge, want_aux));
        }
    }

    #[test]
    fn coded_store_decodes_identically_and_shrinks() {
        let g = gen::uniform(120, 2000, 11);
        let (_, l) = layout(120, 2, 3);
        let base_vfs = MemVfs::new();
        let base = VeBlockStore::build(&base_vfs, &g, &l, WorkerId(0)).unwrap();
        for codec in [
            CodecChoice::Gaps,
            CodecChoice::Block,
            CodecChoice::Bv,
            CodecChoice::Auto,
        ] {
            let vfs = MemVfs::new();
            let s = VeBlockStore::build_with(&vfs, &g, &l, WorkerId(0), codec).unwrap();
            assert_eq!(s.total_edge_bytes(), base.total_edge_bytes());
            assert_eq!(s.total_fragments(), base.total_fragments());
            for j in l.blocks_of_worker(WorkerId(0)) {
                assert_eq!(s.block_scan_bytes(j), base.block_scan_bytes(j));
                for i in l.block_ids() {
                    assert_eq!(
                        s.scan_eblock(j, i).unwrap(),
                        base.scan_eblock(j, i).unwrap(),
                        "{codec:?} g_{{{j},{i}}}"
                    );
                }
            }
        }
        // Gaps must clearly beat raw on sorted uniform-graph eblocks.
        let vfs = MemVfs::new();
        let s = VeBlockStore::build_with(&vfs, &g, &l, WorkerId(0), CodecChoice::Gaps).unwrap();
        let logical: u64 = l
            .blocks_of_worker(WorkerId(0))
            .map(|j| {
                let (e, a) = s.block_scan_bytes(j);
                e + a
            })
            .sum();
        assert!(
            s.total_stored_bytes() * 2 < logical,
            "gaps should at least halve eblock bytes: {} vs {logical}",
            s.total_stored_bytes()
        );
        // And the BV tier must beat gaps on the same eblocks — its
        // bit-granular codes are the whole point of format v3.
        let bvfs = MemVfs::new();
        let b = VeBlockStore::build_with(&bvfs, &g, &l, WorkerId(0), CodecChoice::Bv).unwrap();
        assert!(
            b.total_stored_bytes() < s.total_stored_bytes(),
            "bv {} not under gaps {}",
            b.total_stored_bytes(),
            s.total_stored_bytes()
        );
    }

    #[test]
    fn coded_scan_accounts_physical_and_logical() {
        let g = gen::uniform(60, 600, 3);
        let (_, l) = layout(60, 1, 2);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build_with(&vfs, &g, &l, WorkerId(0), CodecChoice::Gaps).unwrap();
        let info = *s.eblock_info(BlockId(0), BlockId(1));
        assert!(info.stored_bytes < info.bytes);
        let (se, sa) = info.stored_split();
        assert_eq!(se + sa, info.stored_bytes);
        let before = vfs.stats().snapshot();
        s.scan_eblock(BlockId(0), BlockId(1)).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.seq_read_bytes, info.stored_bytes);
        assert_eq!(d.seq_read_logical_bytes, info.bytes);
    }

    #[test]
    fn empty_worker_store() {
        let g = gen::uniform(16, 32, 2);
        let p = Partition::range(16, 20); // workers 16..19 own nothing
        let l = BlockLayout::uniform(&p, 1);
        let vfs = MemVfs::new();
        let s = VeBlockStore::build(&vfs, &g, &l, WorkerId(17)).unwrap();
        assert_eq!(s.local_blocks(), 0);
        assert_eq!(s.total_fragments(), 0);
    }
}
