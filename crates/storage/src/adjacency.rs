//! Push-side on-disk adjacency layout.
//!
//! Giraph-style systems keep the graph as an adjacency list on disk and
//! read each vertex's out-edges when it computes (paper §3, §5.2 — edges
//! are "organized in an adjacency list, like Giraph, and used in push").
//! Per-vertex edge offsets are kept in memory (as Hama does), so a
//! superstep that computes only a subset of vertices reads only those
//! vertices' edge bytes — this is the paper's `IO(Ē^t)` term, which shrinks
//! with the active set for traversal algorithms.

use crate::record::Record;
use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_codec::ef::EliasFano;
use hybridgraph_codec::{decode_extent, encode_extent, CodecChoice, ExtentKind};
use hybridgraph_graph::{Edge, Graph, VertexId};
use std::io;
use std::ops::Range;
use std::sync::Arc;

/// The per-vertex extent directory: cumulative physical byte offsets,
/// `n + 1` entries. Under [`CodecChoice::Bv`] the flat 8-bytes-per-entry
/// vector is replaced by an Elias-Fano sequence (~2 bytes/entry) with
/// O(1)-ish random access — the piece that keeps 100M+ vertex indices
/// resident.
#[derive(Clone)]
enum OffsetDir {
    Flat(Arc<Vec<u64>>),
    Ef(Arc<EliasFano>),
}

impl OffsetDir {
    fn from_flat(offsets: Vec<u64>, codec: CodecChoice) -> OffsetDir {
        if codec == CodecChoice::Bv {
            let ef = EliasFano::build(&offsets).expect("cumulative offsets are monotone");
            OffsetDir::Ef(Arc::new(ef))
        } else {
            OffsetDir::Flat(Arc::new(offsets))
        }
    }

    #[inline]
    fn get(&self, i: usize) -> u64 {
        match self {
            OffsetDir::Flat(v) => v[i],
            OffsetDir::Ef(ef) => ef.get(i as u64),
        }
    }

    /// Number of entries (vertex count + 1).
    fn len(&self) -> usize {
        match self {
            OffsetDir::Flat(v) => v.len(),
            OffsetDir::Ef(ef) => ef.len() as usize,
        }
    }

    fn last(&self) -> u64 {
        self.get(self.len() - 1)
    }

    /// Resident bytes of the directory itself.
    fn memory_bytes(&self) -> u64 {
        match self {
            OffsetDir::Flat(v) => v.len() as u64 * 8,
            OffsetDir::Ef(ef) => ef.memory_bytes(),
        }
    }
}

impl Record for Edge {
    const BYTES: usize = 8;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.dst.0.to_le_bytes());
        out[4..].copy_from_slice(&self.weight.to_le_bytes());
    }

    #[inline]
    fn read_from(inp: &[u8]) -> Self {
        Edge {
            dst: VertexId(u32::from_le_bytes(inp[..4].try_into().unwrap())),
            weight: f32::from_le_bytes(inp[4..8].try_into().unwrap()),
        }
    }
}

/// On-disk adjacency lists for one worker's contiguous vertex range.
pub struct AdjacencyStore {
    file: VfsFile,
    base: u32,
    /// `offsets.get(i)..offsets.get(i + 1)` is the *physical* byte
    /// extent of vertex `base + i`'s edge run in the file; length
    /// `count + 1`. Without a codec, physical extents equal logical edge
    /// bytes. Arc-shared so cross-job views are cheap.
    offsets: OffsetDir,
    /// Per-vertex out-degrees, kept only when a codec is active (the
    /// physical extents no longer encode the edge counts then).
    degrees: Option<Arc<Vec<u32>>>,
    /// Total logical edge bytes (`Σ out_degree · 8`).
    total_logical: u64,
    codec: CodecChoice,
}

impl AdjacencyStore {
    /// Builds the store without compression; see
    /// [`AdjacencyStore::build_with`].
    pub fn build(
        vfs: &dyn Vfs,
        name: &str,
        graph: &Graph,
        range: Range<u32>,
    ) -> io::Result<AdjacencyStore> {
        AdjacencyStore::build_with(vfs, name, graph, range, CodecChoice::None)
    }

    /// Builds the store for the vertices in `range`, writing their edge
    /// runs sequentially (this is the `adj` loading path of Fig. 16).
    /// With a codec, each run is one coded extent — CSR rows are
    /// dst-sorted, so delta-gap coding applies.
    pub fn build_with(
        vfs: &dyn Vfs,
        name: &str,
        graph: &Graph,
        range: Range<u32>,
        codec: CodecChoice,
    ) -> io::Result<AdjacencyStore> {
        let file = vfs.create(name)?;
        let mut offsets = Vec::with_capacity(range.len() + 1);
        offsets.push(0u64);
        let mut degrees = (!codec.is_none()).then(|| Vec::with_capacity(range.len()));
        let mut total_logical = 0u64;
        let mut buf = Vec::new();
        for v in range.clone() {
            let edges = graph.out_edges(VertexId(v));
            buf.clear();
            for e in edges {
                e.append_to(&mut buf);
            }
            total_logical += buf.len() as u64;
            if let Some(degrees) = degrees.as_mut() {
                degrees.push(edges.len() as u32);
            }
            let stored = if buf.is_empty() {
                0
            } else if codec.is_none() {
                file.append(AccessClass::SeqWrite, &buf)?;
                buf.len() as u64
            } else {
                let coded = encode_extent(codec, ExtentKind::Edges, &buf);
                file.append_coded(AccessClass::SeqWrite, &coded, buf.len() as u64)?;
                coded.len() as u64
            };
            offsets.push(offsets.last().unwrap() + stored);
        }
        Ok(AdjacencyStore {
            file,
            base: range.start,
            offsets: OffsetDir::from_flat(offsets, codec),
            degrees: degrees.map(Arc::new),
            total_logical,
            codec,
        })
    }

    /// A read-only view over the same on-disk bytes whose I/O is recorded
    /// into `stats` instead of the builder's sink. The extent index is
    /// Arc-shared, so views are cheap; the underlying file is immutable
    /// after [`AdjacencyStore::build_with`], so concurrent views from
    /// different jobs are safe.
    pub fn share_view(&self, stats: Arc<crate::stats::IoStats>) -> AdjacencyStore {
        AdjacencyStore {
            file: self.file.with_stats(stats),
            base: self.base,
            offsets: self.offsets.clone(),
            degrees: self.degrees.as_ref().map(Arc::clone),
            total_logical: self.total_logical,
            codec: self.codec,
        }
    }

    /// First vertex id owned.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the store holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn local(&self, v: VertexId) -> usize {
        debug_assert!(
            v.0 >= self.base && ((v.0 - self.base) as usize) < self.len(),
            "vertex {v} outside store range"
        );
        (v.0 - self.base) as usize
    }

    /// Out-degree of `v` (from the in-memory index; no I/O).
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = self.local(v);
        match &self.degrees {
            Some(d) => d[i] as usize,
            Option::None => {
                ((self.offsets.get(i + 1) - self.offsets.get(i)) / Edge::BYTES as u64) as usize
            }
        }
    }

    /// Logical edge bytes of `v` (`out_degree · 8`; no I/O).
    pub fn edge_bytes_of(&self, v: VertexId) -> u64 {
        self.out_degree(v) as u64 * Edge::BYTES as u64
    }

    /// Physical bytes `v`'s edge run occupies on disk (no I/O). Equal to
    /// [`AdjacencyStore::edge_bytes_of`] without a codec.
    pub fn stored_bytes_of(&self, v: VertexId) -> u64 {
        let i = self.local(v);
        self.offsets.get(i + 1) - self.offsets.get(i)
    }

    /// Resident bytes of the in-memory extent directory (flat offsets,
    /// or the Elias-Fano index under [`CodecChoice::Bv`]) plus the
    /// degree column when present.
    pub fn index_memory_bytes(&self) -> u64 {
        self.offsets.memory_bytes() + self.degrees.as_ref().map_or(0, |d| d.len() as u64 * 4)
    }

    /// Total logical edge bytes in the store.
    pub fn total_edge_bytes(&self) -> u64 {
        self.total_logical
    }

    /// Total physical bytes the store's file occupies.
    pub fn total_stored_bytes(&self) -> u64 {
        self.offsets.last()
    }

    /// The codec the store was built with.
    pub fn codec(&self) -> CodecChoice {
        self.codec
    }

    /// Reads the out-edges of `v`.
    ///
    /// `class` is chosen by the caller: `SeqRead` when visiting vertices in
    /// id order (the push scan), `RandRead` for out-of-order access.
    pub fn edges_of(&self, v: VertexId, class: AccessClass) -> io::Result<Vec<Edge>> {
        let i = self.local(v);
        let (start, end) = (self.offsets.get(i), self.offsets.get(i + 1));
        if start == end {
            return Ok(Vec::new());
        }
        let bytes = if self.codec.is_none() {
            self.file.read_vec(class, start, (end - start) as usize)?
        } else {
            let logical = self.edge_bytes_of(v);
            let coded = self
                .file
                .read_vec_coded(class, start, (end - start) as usize, logical)?;
            decode_extent(ExtentKind::Edges, &coded, logical as usize)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        };
        Ok(crate::record::decode_slice(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use hybridgraph_graph::gen;

    #[test]
    fn edge_record_roundtrip() {
        let mut buf = [0u8; 8];
        let e = Edge::weighted(VertexId(9), 2.5);
        e.write_to(&mut buf);
        assert_eq!(Edge::read_from(&buf), e);
    }

    #[test]
    fn build_and_read_back() {
        let g = gen::uniform(40, 200, 3);
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 10..30).unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.base(), 10);
        for v in 10..30u32 {
            let v = VertexId(v);
            assert_eq!(s.out_degree(v), g.out_degree(v));
            assert_eq!(s.edges_of(v, AccessClass::SeqRead).unwrap(), g.out_edges(v));
        }
    }

    #[test]
    fn total_bytes_matches_degrees() {
        let g = gen::uniform(20, 100, 1);
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 0..20).unwrap();
        let expect: u64 = (0..20u32)
            .map(|v| g.out_degree(VertexId(v)) as u64 * 8)
            .sum();
        assert_eq!(s.total_edge_bytes(), expect);
        assert_eq!(vfs.stats().snapshot().seq_write_bytes, expect);
    }

    #[test]
    fn selective_read_accounts_only_touched_bytes() {
        let g = gen::uniform(20, 100, 2);
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 0..20).unwrap();
        let before = vfs.stats().snapshot();
        s.edges_of(VertexId(5), AccessClass::SeqRead).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.seq_read_bytes, s.edge_bytes_of(VertexId(5)));
    }

    #[test]
    fn coded_store_reads_back_identically() {
        let g = gen::uniform(80, 1200, 5);
        let vfs = MemVfs::new();
        let plain = AdjacencyStore::build(&vfs, "adj", &g, 0..80).unwrap();
        for codec in [
            CodecChoice::Gaps,
            CodecChoice::Block,
            CodecChoice::Bv,
            CodecChoice::Auto,
        ] {
            let cvfs = MemVfs::new();
            let s = AdjacencyStore::build_with(&cvfs, "adj", &g, 0..80, codec).unwrap();
            assert_eq!(s.total_edge_bytes(), plain.total_edge_bytes());
            for v in 0..80u32 {
                let v = VertexId(v);
                assert_eq!(s.out_degree(v), g.out_degree(v), "{codec:?}");
                assert_eq!(s.edge_bytes_of(v), plain.edge_bytes_of(v));
                assert_eq!(s.edges_of(v, AccessClass::SeqRead).unwrap(), g.out_edges(v));
            }
        }
        // Gaps shrinks the file and the coded read accounts both sides.
        let cvfs = MemVfs::new();
        let s = AdjacencyStore::build_with(&cvfs, "adj", &g, 0..80, CodecChoice::Gaps).unwrap();
        assert!(s.total_stored_bytes() * 2 < s.total_edge_bytes());
        let wsnap = cvfs.stats().snapshot();
        assert_eq!(wsnap.seq_write_bytes, s.total_stored_bytes());
        assert_eq!(wsnap.seq_write_logical_bytes, s.total_edge_bytes());
        let v = VertexId(7);
        let before = cvfs.stats().snapshot();
        s.edges_of(v, AccessClass::RandRead).unwrap();
        let d = cvfs.stats().snapshot().delta(&before);
        assert_eq!(d.rand_read_bytes, s.stored_bytes_of(v));
        assert_eq!(d.rand_read_logical_bytes, s.edge_bytes_of(v));
    }

    #[test]
    fn bv_store_uses_elias_fano_directory() {
        let g = gen::uniform(300, 6000, 9);
        let vfs = MemVfs::new();
        let flat = AdjacencyStore::build_with(&vfs, "a", &g, 0..300, CodecChoice::Gaps).unwrap();
        let bvfs = MemVfs::new();
        let bv = AdjacencyStore::build_with(&bvfs, "a", &g, 0..300, CodecChoice::Bv).unwrap();
        // Same logical content, shared-view reads identical, EF index
        // well under the flat directory.
        assert_eq!(bv.total_edge_bytes(), flat.total_edge_bytes());
        assert!(
            bv.index_memory_bytes() * 2 < flat.index_memory_bytes(),
            "ef {} vs flat {}",
            bv.index_memory_bytes(),
            flat.index_memory_bytes()
        );
        let view = bv.share_view(Arc::new(crate::stats::IoStats::default()));
        for v in (0..300u32).step_by(17) {
            let v = VertexId(v);
            assert_eq!(
                bv.edges_of(v, AccessClass::RandRead).unwrap(),
                g.out_edges(v)
            );
            assert_eq!(
                view.edges_of(v, AccessClass::RandRead).unwrap(),
                g.out_edges(v)
            );
            assert_eq!(bv.stored_bytes_of(v) == 0, g.out_degree(v) == 0);
        }
    }

    #[test]
    fn zero_degree_vertices_are_free() {
        let g = gen::star(10); // only vertex 0 has out-edges
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 0..10).unwrap();
        let before = vfs.stats().snapshot();
        assert!(s
            .edges_of(VertexId(5), AccessClass::SeqRead)
            .unwrap()
            .is_empty());
        assert_eq!(vfs.stats().snapshot(), before);
        assert_eq!(s.out_degree(VertexId(0)), 9);
    }
}
