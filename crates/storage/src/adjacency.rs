//! Push-side on-disk adjacency layout.
//!
//! Giraph-style systems keep the graph as an adjacency list on disk and
//! read each vertex's out-edges when it computes (paper §3, §5.2 — edges
//! are "organized in an adjacency list, like Giraph, and used in push").
//! Per-vertex edge offsets are kept in memory (as Hama does), so a
//! superstep that computes only a subset of vertices reads only those
//! vertices' edge bytes — this is the paper's `IO(Ē^t)` term, which shrinks
//! with the active set for traversal algorithms.

use crate::record::Record;
use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_graph::{Edge, Graph, VertexId};
use std::io;
use std::ops::Range;

impl Record for Edge {
    const BYTES: usize = 8;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.dst.0.to_le_bytes());
        out[4..].copy_from_slice(&self.weight.to_le_bytes());
    }

    #[inline]
    fn read_from(inp: &[u8]) -> Self {
        Edge {
            dst: VertexId(u32::from_le_bytes(inp[..4].try_into().unwrap())),
            weight: f32::from_le_bytes(inp[4..8].try_into().unwrap()),
        }
    }
}

/// On-disk adjacency lists for one worker's contiguous vertex range.
pub struct AdjacencyStore {
    file: VfsFile,
    base: u32,
    /// `offsets[i]..offsets[i + 1]` is the byte extent of vertex
    /// `base + i`'s edge run; length `count + 1`.
    offsets: Vec<u64>,
}

impl AdjacencyStore {
    /// Builds the store for the vertices in `range`, writing their edge
    /// runs sequentially (this is the `adj` loading path of Fig. 16).
    pub fn build(
        vfs: &dyn Vfs,
        name: &str,
        graph: &Graph,
        range: Range<u32>,
    ) -> io::Result<AdjacencyStore> {
        let file = vfs.create(name)?;
        let mut offsets = Vec::with_capacity(range.len() + 1);
        offsets.push(0u64);
        let mut buf = Vec::new();
        for v in range.clone() {
            let edges = graph.out_edges(VertexId(v));
            buf.clear();
            for e in edges {
                e.append_to(&mut buf);
            }
            if !buf.is_empty() {
                file.append(AccessClass::SeqWrite, &buf)?;
            }
            offsets.push(offsets.last().unwrap() + buf.len() as u64);
        }
        Ok(AdjacencyStore {
            file,
            base: range.start,
            offsets,
        })
    }

    /// First vertex id owned.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the store holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn local(&self, v: VertexId) -> usize {
        debug_assert!(
            v.0 >= self.base && ((v.0 - self.base) as usize) < self.len(),
            "vertex {v} outside store range"
        );
        (v.0 - self.base) as usize
    }

    /// Out-degree of `v` (from the in-memory offset index; no I/O).
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = self.local(v);
        ((self.offsets[i + 1] - self.offsets[i]) / Edge::BYTES as u64) as usize
    }

    /// Edge bytes of `v` (no I/O).
    pub fn edge_bytes_of(&self, v: VertexId) -> u64 {
        let i = self.local(v);
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Total edge bytes in the store.
    pub fn total_edge_bytes(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Reads the out-edges of `v`.
    ///
    /// `class` is chosen by the caller: `SeqRead` when visiting vertices in
    /// id order (the push scan), `RandRead` for out-of-order access.
    pub fn edges_of(&self, v: VertexId, class: AccessClass) -> io::Result<Vec<Edge>> {
        let i = self.local(v);
        let (start, end) = (self.offsets[i], self.offsets[i + 1]);
        if start == end {
            return Ok(Vec::new());
        }
        let bytes = self.file.read_vec(class, start, (end - start) as usize)?;
        Ok(crate::record::decode_slice(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use hybridgraph_graph::gen;

    #[test]
    fn edge_record_roundtrip() {
        let mut buf = [0u8; 8];
        let e = Edge::weighted(VertexId(9), 2.5);
        e.write_to(&mut buf);
        assert_eq!(Edge::read_from(&buf), e);
    }

    #[test]
    fn build_and_read_back() {
        let g = gen::uniform(40, 200, 3);
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 10..30).unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.base(), 10);
        for v in 10..30u32 {
            let v = VertexId(v);
            assert_eq!(s.out_degree(v), g.out_degree(v));
            assert_eq!(s.edges_of(v, AccessClass::SeqRead).unwrap(), g.out_edges(v));
        }
    }

    #[test]
    fn total_bytes_matches_degrees() {
        let g = gen::uniform(20, 100, 1);
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 0..20).unwrap();
        let expect: u64 = (0..20u32)
            .map(|v| g.out_degree(VertexId(v)) as u64 * 8)
            .sum();
        assert_eq!(s.total_edge_bytes(), expect);
        assert_eq!(vfs.stats().snapshot().seq_write_bytes, expect);
    }

    #[test]
    fn selective_read_accounts_only_touched_bytes() {
        let g = gen::uniform(20, 100, 2);
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 0..20).unwrap();
        let before = vfs.stats().snapshot();
        s.edges_of(VertexId(5), AccessClass::SeqRead).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.seq_read_bytes, s.edge_bytes_of(VertexId(5)));
    }

    #[test]
    fn zero_degree_vertices_are_free() {
        let g = gen::star(10); // only vertex 0 has out-edges
        let vfs = MemVfs::new();
        let s = AdjacencyStore::build(&vfs, "adj", &g, 0..10).unwrap();
        let before = vfs.stats().snapshot();
        assert!(s
            .edges_of(VertexId(5), AccessClass::SeqRead)
            .unwrap()
            .is_empty());
        assert_eq!(vfs.stats().snapshot(), before);
        assert_eq!(s.out_degree(VertexId(0)), 9);
    }
}
