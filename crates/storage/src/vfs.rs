//! Minimal virtual file system with uniform I/O accounting.
//!
//! Every store in this crate moves its bytes through a [`Vfs`], so a single
//! accounting point ([`IoStats`]) sees all traffic. Two backends exist:
//!
//! * [`MemVfs`] — files are in-memory byte vectors. The default for tests
//!   and benchmarks: byte-exact accounting without real-disk noise.
//! * [`DirVfs`] — files are real files under a directory, for runs that
//!   want the physical I/O path too.
//!
//! The backend never guesses whether an access is sequential or random —
//! the calling store states the [`AccessClass`] explicitly, because only it
//! knows whether it is scanning or seeking. This mirrors how the paper
//! attributes each byte of each data structure to a throughput class in
//! Eq. 11.

use crate::stats::{AccessClass, IoStats};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

/// Backend-agnostic file contents.
trait RawFile: Send + Sync {
    fn len(&self) -> u64;
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()>;
    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()>;
    /// Appends and returns the offset the data landed at.
    fn append(&self, data: &[u8]) -> io::Result<u64>;
    fn truncate(&self) -> io::Result<()>;
    /// Shrinks the file to `len` bytes (no-op if already shorter).
    fn truncate_to(&self, len: u64) -> io::Result<()>;
}

/// A named file plus the stats sink its accesses are recorded into.
#[derive(Clone)]
pub struct VfsFile {
    raw: Arc<dyn RawFile>,
    stats: Arc<IoStats>,
}

impl VfsFile {
    /// Current length in bytes.
    pub fn len(&self) -> u64 {
        self.raw.len()
    }

    /// True if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes at `off`, accounting them in `class`.
    pub fn read_at(&self, class: AccessClass, off: u64, buf: &mut [u8]) -> io::Result<()> {
        self.raw.read_at(off, buf)?;
        self.stats.record(class, buf.len() as u64);
        Ok(())
    }

    /// Reads `len` bytes at `off` into a fresh vector.
    pub fn read_vec(&self, class: AccessClass, off: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_at(class, off, &mut buf)?;
        Ok(buf)
    }

    /// Reads the whole file sequentially.
    pub fn read_all(&self, class: AccessClass) -> io::Result<Vec<u8>> {
        self.read_vec(class, 0, self.len() as usize)
    }

    /// Writes `data` at `off`, accounting it in `class`.
    pub fn write_at(&self, class: AccessClass, off: u64, data: &[u8]) -> io::Result<()> {
        self.raw.write_at(off, data)?;
        self.stats.record(class, data.len() as u64);
        Ok(())
    }

    /// Appends `data`, accounting it in `class`; returns the write offset.
    pub fn append(&self, class: AccessClass, data: &[u8]) -> io::Result<u64> {
        let off = self.raw.append(data)?;
        self.stats.record(class, data.len() as u64);
        Ok(off)
    }

    /// Appends coded `data` that stands for `logical` uncompressed bytes:
    /// physical accounting sees `data.len()`, logical accounting sees
    /// `logical`. Returns the write offset.
    pub fn append_coded(&self, class: AccessClass, data: &[u8], logical: u64) -> io::Result<u64> {
        let off = self.raw.append(data)?;
        self.stats.record_coded(class, data.len() as u64, logical);
        Ok(off)
    }

    /// Reads `len` coded bytes at `off` that stand for `logical`
    /// uncompressed bytes (see [`VfsFile::append_coded`]).
    pub fn read_vec_coded(
        &self,
        class: AccessClass,
        off: u64,
        len: usize,
        logical: u64,
    ) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.raw.read_at(off, &mut buf)?;
        self.stats.record_coded(class, len as u64, logical);
        Ok(buf)
    }

    /// Truncates the file to zero length (not an accounted access).
    pub fn truncate(&self) -> io::Result<()> {
        self.raw.truncate()
    }

    /// Shrinks the file to `len` bytes; a no-op if it is already at or
    /// below that length. Like [`VfsFile::truncate`] this is not an
    /// accounted access: dropping bytes moves no data. Used by the
    /// undo path of confined recovery to rewind a spill file to its
    /// superstep-start length.
    pub fn truncate_to(&self, len: u64) -> io::Result<()> {
        self.raw.truncate_to(len)
    }

    /// Charges extra modeled bytes without moving data — used by stores
    /// to account seek padding for scattered accesses
    /// (see [`crate::stats::seek_pad`]). The charge is physical-only:
    /// padding carries no application data, so logical counters are
    /// untouched.
    pub fn charge(&self, class: AccessClass, bytes: u64) {
        if bytes > 0 {
            self.stats.record_physical(class, bytes);
        }
    }

    /// The same underlying file, recording into `stats` instead of the
    /// owning VFS's sink. This is how a store built once (by a catalog)
    /// can be read by many jobs with each job's bytes attributed to its
    /// own [`IoStats`].
    pub fn with_stats(&self, stats: Arc<IoStats>) -> VfsFile {
        VfsFile {
            raw: Arc::clone(&self.raw),
            stats,
        }
    }
}

/// A namespace of accounted files.
pub trait Vfs: Send + Sync {
    /// Creates (or truncates) a file.
    fn create(&self, name: &str) -> io::Result<VfsFile>;
    /// Opens an existing file.
    fn open(&self, name: &str) -> io::Result<VfsFile>;
    /// Removes a file if it exists.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// True if the file exists.
    fn exists(&self, name: &str) -> bool;
    /// The stats sink all files of this VFS record into.
    fn stats(&self) -> &Arc<IoStats>;
}

// ---------------------------------------------------------------- MemVfs

struct MemFile {
    data: RwLock<Vec<u8>>,
}

impl RawFile for MemFile {
    fn len(&self) -> u64 {
        self.data.read().unwrap().len() as u64
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        let data = self.data.read().unwrap();
        let off = off as usize;
        let end = off + buf.len();
        if end > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read past end: {} > {}", end, data.len()),
            ));
        }
        buf.copy_from_slice(&data[off..end]);
        Ok(())
    }

    fn write_at(&self, off: u64, data_in: &[u8]) -> io::Result<()> {
        let mut data = self.data.write().unwrap();
        let off = off as usize;
        let end = off + data_in.len();
        if end > data.len() {
            data.resize(end, 0);
        }
        data[off..end].copy_from_slice(data_in);
        Ok(())
    }

    fn append(&self, data_in: &[u8]) -> io::Result<u64> {
        let mut data = self.data.write().unwrap();
        let off = data.len() as u64;
        data.extend_from_slice(data_in);
        Ok(off)
    }

    fn truncate(&self) -> io::Result<()> {
        self.data.write().unwrap().clear();
        Ok(())
    }

    fn truncate_to(&self, len: u64) -> io::Result<()> {
        let mut data = self.data.write().unwrap();
        if (len as usize) < data.len() {
            data.truncate(len as usize);
        }
        Ok(())
    }
}

/// In-memory [`Vfs`] backend.
pub struct MemVfs {
    files: RwLock<HashMap<String, Arc<MemFile>>>,
    stats: Arc<IoStats>,
}

impl MemVfs {
    /// An empty in-memory VFS with fresh stats.
    pub fn new() -> Self {
        MemVfs::with_stats(Arc::new(IoStats::new()))
    }

    /// An empty in-memory VFS recording into `stats`.
    pub fn with_stats(stats: Arc<IoStats>) -> Self {
        MemVfs {
            files: RwLock::new(HashMap::new()),
            stats,
        }
    }

    /// Total bytes currently stored across all files (simulated disk usage).
    pub fn disk_usage(&self) -> u64 {
        self.files.read().unwrap().values().map(|f| f.len()).sum()
    }
}

impl Default for MemVfs {
    fn default() -> Self {
        MemVfs::new()
    }
}

impl Vfs for MemVfs {
    fn create(&self, name: &str) -> io::Result<VfsFile> {
        let file = Arc::new(MemFile {
            data: RwLock::new(Vec::new()),
        });
        self.files
            .write()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&file));
        Ok(VfsFile {
            raw: file,
            stats: Arc::clone(&self.stats),
        })
    }

    fn open(&self, name: &str) -> io::Result<VfsFile> {
        let files = self.files.read().unwrap();
        let file = files
            .get(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        Ok(VfsFile {
            raw: Arc::clone(file) as Arc<dyn RawFile>,
            stats: Arc::clone(&self.stats),
        })
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files.write().unwrap().remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.files.read().unwrap().contains_key(name)
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

// ---------------------------------------------------------------- DirVfs

struct DirFile {
    file: std::fs::File,
    len: Mutex<u64>,
}

impl RawFile for DirFile {
    fn len(&self) -> u64 {
        *self.len.lock().unwrap()
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)
    }

    fn write_at(&self, off: u64, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, off)?;
        let mut len = self.len.lock().unwrap();
        *len = (*len).max(off + data.len() as u64);
        Ok(())
    }

    fn append(&self, data: &[u8]) -> io::Result<u64> {
        use std::os::unix::fs::FileExt;
        let mut len = self.len.lock().unwrap();
        let off = *len;
        self.file.write_all_at(data, off)?;
        *len += data.len() as u64;
        Ok(off)
    }

    fn truncate(&self) -> io::Result<()> {
        self.file.set_len(0)?;
        *self.len.lock().unwrap() = 0;
        Ok(())
    }

    fn truncate_to(&self, new_len: u64) -> io::Result<()> {
        let mut len = self.len.lock().unwrap();
        if new_len < *len {
            self.file.set_len(new_len)?;
            *len = new_len;
        }
        Ok(())
    }
}

/// Real-directory [`Vfs`] backend; file names map to paths under `root`.
pub struct DirVfs {
    root: PathBuf,
    stats: Arc<IoStats>,
}

impl DirVfs {
    /// A VFS rooted at `root` (created if absent) with fresh stats.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_stats(root, Arc::new(IoStats::new()))
    }

    /// A VFS rooted at `root` recording into `stats`.
    pub fn with_stats(root: impl Into<PathBuf>, stats: Arc<IoStats>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DirVfs { root, stats })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Flatten any path separators so names cannot escape the root.
        self.root.join(name.replace('/', "_"))
    }
}

impl Vfs for DirVfs {
    fn create(&self, name: &str) -> io::Result<VfsFile> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path_of(name))?;
        Ok(VfsFile {
            raw: Arc::new(DirFile {
                file,
                len: Mutex::new(0),
            }),
            stats: Arc::clone(&self.stats),
        })
    }

    fn open(&self, name: &str) -> io::Result<VfsFile> {
        let path = self.path_of(name);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(VfsFile {
            raw: Arc::new(DirFile {
                file,
                len: Mutex::new(len),
            }),
            stats: Arc::clone(&self.stats),
        })
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

// ------------------------------------------------------------- PrefixVfs

/// A namespaced view over another [`Vfs`]: every file name is prefixed,
/// and every access is recorded into this view's *own* fresh [`IoStats`]
/// rather than the backing VFS's sink.
///
/// This is how a durable service gives each job's worker a private disk
/// inside one shared persistent VFS: files survive a service restart
/// under stable names (`j<job>w<worker>_...`), while a resumed run starts
/// from zeroed per-run counters — exactly what the byte-identical replay
/// contract needs, because worker load reports snapshot absolute stats.
pub struct PrefixVfs {
    inner: Arc<dyn Vfs>,
    prefix: String,
    stats: Arc<IoStats>,
}

impl PrefixVfs {
    /// A view over `inner` prefixing every name with `prefix`, recording
    /// into a fresh stats sink.
    pub fn new(inner: Arc<dyn Vfs>, prefix: impl Into<String>) -> PrefixVfs {
        PrefixVfs {
            inner,
            prefix: prefix.into(),
            stats: Arc::new(IoStats::new()),
        }
    }

    /// The name prefix of this view.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    fn full(&self, name: &str) -> String {
        format!("{}{}", self.prefix, name)
    }
}

impl Vfs for PrefixVfs {
    fn create(&self, name: &str) -> io::Result<VfsFile> {
        Ok(self
            .inner
            .create(&self.full(name))?
            .with_stats(Arc::clone(&self.stats)))
    }

    fn open(&self, name: &str) -> io::Result<VfsFile> {
        Ok(self
            .inner
            .open(&self.full(name))?
            .with_stats(Arc::clone(&self.stats)))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(&self.full(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(&self.full(name))
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: &dyn Vfs) {
        let f = vfs.create("a.dat").unwrap();
        assert!(f.is_empty());
        let off = f.append(AccessClass::SeqWrite, b"hello").unwrap();
        assert_eq!(off, 0);
        let off = f.append(AccessClass::SeqWrite, b" world").unwrap();
        assert_eq!(off, 5);
        assert_eq!(f.len(), 11);

        let mut buf = [0u8; 5];
        f.read_at(AccessClass::RandRead, 6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        f.write_at(AccessClass::RandWrite, 0, b"HELLO").unwrap();
        assert_eq!(f.read_all(AccessClass::SeqRead).unwrap(), b"HELLO world");

        // Reopen by name sees the same contents.
        let g = vfs.open("a.dat").unwrap();
        assert_eq!(g.len(), 11);

        // Accounting recorded every class.
        let snap = vfs.stats().snapshot();
        assert_eq!(snap.seq_write_bytes, 11);
        assert_eq!(snap.rand_read_bytes, 5);
        assert_eq!(snap.rand_write_bytes, 5);
        assert_eq!(snap.seq_read_bytes, 11);

        f.truncate().unwrap();
        assert!(f.is_empty());
        vfs.remove("a.dat").unwrap();
        assert!(!vfs.exists("a.dat"));
        assert!(vfs.open("a.dat").is_err());
    }

    #[test]
    fn mem_vfs_semantics() {
        exercise(&MemVfs::new());
    }

    #[test]
    fn dir_vfs_semantics() {
        let dir = std::env::temp_dir().join(format!("hyvfs-{}", std::process::id()));
        let vfs = DirVfs::new(&dir).unwrap();
        exercise(&vfs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_read_past_end_is_error() {
        let vfs = MemVfs::new();
        let f = vfs.create("x").unwrap();
        f.append(AccessClass::SeqWrite, b"abc").unwrap();
        let mut buf = [0u8; 8];
        assert!(f.read_at(AccessClass::SeqRead, 0, &mut buf).is_err());
    }

    #[test]
    fn truncate_to_shrinks_without_accounting() {
        let vfs = MemVfs::new();
        let f = vfs.create("t").unwrap();
        f.append(AccessClass::SeqWrite, b"0123456789").unwrap();
        let before = vfs.stats().snapshot();
        f.truncate_to(4).unwrap();
        assert_eq!(f.len(), 4);
        f.truncate_to(100).unwrap(); // no-op: never grows
        assert_eq!(f.len(), 4);
        assert_eq!(vfs.stats().snapshot(), before);
        assert_eq!(f.read_all(AccessClass::SeqRead).unwrap(), b"0123");
        let dir = std::env::temp_dir().join(format!("hyvfs-tt-{}", std::process::id()));
        let vfs = DirVfs::new(&dir).unwrap();
        let f = vfs.create("t").unwrap();
        f.append(AccessClass::SeqWrite, b"0123456789").unwrap();
        f.truncate_to(4).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f.read_all(AccessClass::SeqRead).unwrap(), b"0123");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_at_extends_mem_file() {
        let vfs = MemVfs::new();
        let f = vfs.create("x").unwrap();
        f.write_at(AccessClass::RandWrite, 4, b"zz").unwrap();
        assert_eq!(f.len(), 6);
        assert_eq!(f.read_all(AccessClass::SeqRead).unwrap(), b"\0\0\0\0zz");
    }

    #[test]
    fn disk_usage_sums_files() {
        let vfs = MemVfs::new();
        vfs.create("a")
            .unwrap()
            .append(AccessClass::SeqWrite, &[0; 10])
            .unwrap();
        vfs.create("b")
            .unwrap()
            .append(AccessClass::SeqWrite, &[0; 32])
            .unwrap();
        assert_eq!(vfs.disk_usage(), 42);
    }

    #[test]
    fn create_truncates_existing() {
        let vfs = MemVfs::new();
        vfs.create("a")
            .unwrap()
            .append(AccessClass::SeqWrite, b"data")
            .unwrap();
        let f = vfs.create("a").unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn prefix_vfs_namespaces_and_reattributes() {
        let backing: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let view = PrefixVfs::new(Arc::clone(&backing), "j3w0_");
        view.create("ckpt")
            .unwrap()
            .append(AccessClass::SeqWrite, b"abcd")
            .unwrap();
        // The backing VFS holds the prefixed name, the view sees the bare one.
        assert!(backing.exists("j3w0_ckpt"));
        assert!(view.exists("ckpt"));
        assert!(!view.exists("j3w0_ckpt"));
        // Bytes land in the view's own stats, not the backing sink.
        assert_eq!(view.stats().snapshot().seq_write_bytes, 4);
        assert_eq!(backing.stats().snapshot().seq_write_bytes, 0);
        // A second view with the same prefix (a restarted run) finds the
        // file but starts from zeroed counters.
        let again = PrefixVfs::new(Arc::clone(&backing), "j3w0_");
        assert!(again.exists("ckpt"));
        assert_eq!(again.stats().snapshot().seq_write_bytes, 0);
        assert_eq!(
            again
                .open("ckpt")
                .unwrap()
                .read_all(AccessClass::SeqRead)
                .unwrap(),
            b"abcd"
        );
        again.remove("ckpt").unwrap();
        assert!(!backing.exists("j3w0_ckpt"));
    }

    #[test]
    fn shared_stats_across_files() {
        let stats = Arc::new(IoStats::new());
        let vfs = MemVfs::with_stats(Arc::clone(&stats));
        vfs.create("a")
            .unwrap()
            .append(AccessClass::SeqWrite, &[1; 3])
            .unwrap();
        vfs.create("b")
            .unwrap()
            .append(AccessClass::SeqWrite, &[2; 4])
            .unwrap();
        assert_eq!(stats.snapshot().seq_write_bytes, 7);
    }
}
