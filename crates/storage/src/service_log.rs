//! Append-only write-ahead log for the durable `GraphService`.
//!
//! GraphD (Yan et al.) restarts a small-cluster out-of-core engine cheaply
//! because everything that matters is already on disk and the volatile
//! rest is covered by lightweight logging. The service layer follows the
//! same recipe: graph payloads, checkpoints and spill files already live
//! on the VFS, so durability only needs a single append-only log of the
//! *control-plane* state — graph registrations, admissions, and per-job
//! master snapshots cut at superstep barriers.
//!
//! This module owns the framing; the service crate owns record semantics.
//! A log is a header followed by records:
//!
//! ```text
//! magic u32 | version u32 | codec u8           (header, written once)
//! kind u8 | body_len u64 | body | total u64    (each record)
//! ```
//!
//! The trailing `total` word (the full record length including itself) is
//! the commit marker: a record is durable iff its trailer is present and
//! consistent, exactly like [`crate::checkpoint`] files. Replay walks the
//! file front to back and stops at the first record whose framing does not
//! check out — a torn tail from a crash mid-append — then truncates the
//! file back to the clean prefix, so the next append continues from a
//! consistent state. Appends happen in commit order and each record is one
//! classified sequential write; on a real-directory VFS the append is a
//! positional `write_all_at`, so the modeled fsync order *is* the append
//! order.
//!
//! With a non-`None` codec the body is wrapped in one self-describing
//! blob frame and accounted physical-vs-logical like every other coded
//! write in this crate.

use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_codec::{decode_blob_frame, encode_blob_frame, CodecChoice};
use hybridgraph_graph::{Edge, Graph, VertexId};
use std::io;

/// File magic: `HGSL` little-endian.
pub const SERVICE_LOG_MAGIC: u32 = 0x4c53_4748;
/// Format version.
pub const SERVICE_LOG_VERSION: u32 = 1;
/// The log's VFS file name.
pub const SERVICE_LOG_FILE: &str = "service_log";

const HEADER_BYTES: u64 = 4 + 4 + 1;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt service log: {what}"),
    )
}

/// Stable single-byte tag for a codec choice (log header and catalog
/// payloads both persist it).
pub fn codec_tag(codec: CodecChoice) -> u8 {
    match codec {
        CodecChoice::None => 0,
        CodecChoice::Gaps => 1,
        CodecChoice::Block => 2,
        CodecChoice::Auto => 3,
        // Appended after Auto: WAL bytes written before the BV tier
        // existed keep their meaning.
        CodecChoice::Bv => 4,
    }
}

/// Inverse of [`codec_tag`]; rejects unknown bytes.
pub fn codec_from_tag(tag: u8) -> io::Result<CodecChoice> {
    Ok(match tag {
        0 => CodecChoice::None,
        1 => CodecChoice::Gaps,
        2 => CodecChoice::Block,
        3 => CodecChoice::Auto,
        4 => CodecChoice::Bv,
        _ => return Err(corrupt("unknown codec tag")),
    })
}

/// One replayed record: the service-defined kind byte plus its decoded
/// body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Service-defined record type.
    pub kind: u8,
    /// Decoded (post-codec) body bytes.
    pub body: Vec<u8>,
}

/// An open, append-positioned write-ahead log.
pub struct ServiceLog {
    file: VfsFile,
    codec: CodecChoice,
}

impl ServiceLog {
    /// Creates a fresh (truncated) log on `vfs` and writes the header.
    pub fn create(vfs: &dyn Vfs, codec: CodecChoice) -> io::Result<ServiceLog> {
        let file = vfs.create(SERVICE_LOG_FILE)?;
        let mut hdr = Vec::with_capacity(HEADER_BYTES as usize);
        hdr.extend_from_slice(&SERVICE_LOG_MAGIC.to_le_bytes());
        hdr.extend_from_slice(&SERVICE_LOG_VERSION.to_le_bytes());
        hdr.push(codec_tag(codec));
        file.append(AccessClass::SeqWrite, &hdr)?;
        Ok(ServiceLog { file, codec })
    }

    /// True if a log exists on `vfs`.
    pub fn exists(vfs: &dyn Vfs) -> bool {
        vfs.exists(SERVICE_LOG_FILE)
    }

    /// Opens an existing log, replays every committed record, truncates
    /// any torn tail left by a crash mid-append, and returns the log
    /// positioned for further appends plus the replayed records in commit
    /// order.
    pub fn open(vfs: &dyn Vfs) -> io::Result<(ServiceLog, Vec<LogRecord>)> {
        let file = vfs.open(SERVICE_LOG_FILE)?;
        let data = file.read_all(AccessClass::SeqRead)?;
        if (data.len() as u64) < HEADER_BYTES {
            return Err(corrupt("file shorter than header"));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != SERVICE_LOG_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != SERVICE_LOG_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let codec = codec_from_tag(data[8])?;

        let mut records = Vec::new();
        let mut pos = HEADER_BYTES as usize;
        let mut decoded_extra = 0u64;
        // Walk committed records; the first framing violation marks the
        // torn tail and everything from there on is discarded.
        loop {
            let start = pos;
            if data.len() - pos < 1 + 8 {
                break;
            }
            let kind = data[pos];
            let body_len = u64::from_le_bytes(data[pos + 1..pos + 9].try_into().unwrap()) as usize;
            let rest = data.len() - (pos + 9);
            if body_len > rest || rest - body_len < 8 {
                break;
            }
            let body_start = pos + 9;
            let total = u64::from_le_bytes(
                data[body_start + body_len..body_start + body_len + 8]
                    .try_into()
                    .unwrap(),
            );
            if total != (1 + 8 + body_len + 8) as u64 {
                break;
            }
            let stored = &data[body_start..body_start + body_len];
            let body = if codec.is_none() {
                stored.to_vec()
            } else {
                let mut fpos = 0usize;
                let raw = match decode_blob_frame(stored, &mut fpos) {
                    Ok(raw) if fpos == stored.len() => raw,
                    // A framing-consistent record whose blob frame does
                    // not decode is corruption, not a torn tail.
                    _ => return Err(corrupt("blob frame mismatch")),
                };
                decoded_extra += (raw.len() as u64).saturating_sub(stored.len() as u64);
                raw
            };
            records.push(LogRecord { kind, body });
            pos = start + total as usize;
        }
        if pos < data.len() {
            file.truncate_to(pos as u64)?;
        }
        // The whole-file read charged logical == physical; top up to the
        // decoded logical size (coded logs only).
        vfs.stats()
            .record_logical(AccessClass::SeqRead, decoded_extra);
        Ok((ServiceLog { file, codec }, records))
    }

    /// The codec every record body is wrapped with.
    pub fn codec(&self) -> CodecChoice {
        self.codec
    }

    /// Appends one record as a single classified sequential write and
    /// returns the physical bytes written. The record is committed by its
    /// trailing length word — a crash before the append completes leaves
    /// a torn tail that [`ServiceLog::open`] discards.
    pub fn append(&self, kind: u8, body: &[u8]) -> io::Result<u64> {
        let stored: Vec<u8>;
        let (payload, logical_body): (&[u8], u64) = if self.codec.is_none() {
            (body, body.len() as u64)
        } else {
            stored = encode_blob_frame(self.codec, body);
            (&stored, body.len() as u64)
        };
        let mut rec = Vec::with_capacity(1 + 8 + payload.len() + 8);
        rec.push(kind);
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(payload);
        let total = (rec.len() + 8) as u64;
        rec.extend_from_slice(&total.to_le_bytes());
        if self.codec.is_none() {
            self.file.append(AccessClass::SeqWrite, &rec)?;
        } else {
            let logical = 1 + 8 + logical_body + 8;
            self.file
                .append_coded(AccessClass::SeqWrite, &rec, logical)?;
        }
        Ok(total)
    }

    /// Current log length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.file.len()
    }
}

// ------------------------------------------------------- payload codecs

/// Accumulates a record body field by field (little-endian, f64 by bit
/// pattern — the same conventions as [`crate::checkpoint`]).
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> PayloadWriter {
        PayloadWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (bit-exact restore).
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Appends a length-prefixed byte run.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_u64(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// The finished body.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Walks a record body field by field, mirroring [`PayloadWriter`].
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `buf` starting at its first field.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        // `n` comes from on-disk data: compare without `pos + n`, which a
        // corrupt length near `usize::MAX` would overflow.
        if n > self.buf.len() - self.pos {
            return Err(corrupt("field past end"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte run.
    pub fn get_bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.get_u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> io::Result<String> {
        String::from_utf8(self.get_bytes()?).map_err(|_| corrupt("invalid utf-8"))
    }

    /// True once every field has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ------------------------------------------------------- graph payloads

/// Serializes a graph into the body of a registration record:
/// `n u64 | m u64 | out-degree u32 per vertex | (dst u32, weight f32) per
/// edge`, all little-endian — the workspace's standard binary graph
/// layout, so a restore rebuilds the CSR without re-parsing any source.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut out = Vec::with_capacity(16 + 4 * n + 8 * m);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    for v in g.vertices() {
        out.extend_from_slice(&(g.out_degree(v) as u32).to_le_bytes());
    }
    for v in g.vertices() {
        for e in g.out_edges(v) {
            out.extend_from_slice(&e.dst.0.to_le_bytes());
            out.extend_from_slice(&e.weight.to_le_bytes());
        }
    }
    out
}

/// Rebuilds a graph from [`encode_graph`] bytes.
pub fn decode_graph(buf: &[u8]) -> io::Result<Graph> {
    let mut r = PayloadReader::new(buf);
    let n = r.get_u64()? as usize;
    let m = r.get_u64()? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut off = 0u64;
    offsets.push(0);
    for _ in 0..n {
        off += r.get_u32()? as u64;
        offsets.push(off);
    }
    if off != m as u64 {
        return Err(corrupt("degree sum does not match edge count"));
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let dst = r.get_u32()?;
        let weight = f32::from_bits(r.get_u32()?);
        edges.push(Edge::weighted(VertexId(dst), weight));
    }
    if !r.done() {
        return Err(corrupt("trailing bytes after graph payload"));
    }
    Ok(Graph::from_parts(offsets, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn roundtrip_records_in_commit_order() {
        let vfs = MemVfs::new();
        let log = ServiceLog::create(&vfs, CodecChoice::None).unwrap();
        log.append(1, b"first").unwrap();
        log.append(2, b"").unwrap();
        log.append(1, b"third").unwrap();

        let (log, recs) = ServiceLog::open(&vfs).unwrap();
        assert_eq!(
            recs,
            vec![
                LogRecord {
                    kind: 1,
                    body: b"first".to_vec()
                },
                LogRecord {
                    kind: 2,
                    body: Vec::new()
                },
                LogRecord {
                    kind: 1,
                    body: b"third".to_vec()
                },
            ]
        );
        // The reopened log keeps appending after the clean tail.
        log.append(3, b"fourth").unwrap();
        let (_, recs) = ServiceLog::open(&vfs).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[3].kind, 3);
    }

    #[test]
    fn torn_tail_is_discarded_and_healed() {
        let vfs = MemVfs::new();
        let log = ServiceLog::create(&vfs, CodecChoice::None).unwrap();
        log.append(1, b"committed").unwrap();
        let clean_len = log.len_bytes();
        log.append(2, b"torn-record-body").unwrap();
        // Simulate a crash mid-append: chop into the last record.
        let file = vfs.open(SERVICE_LOG_FILE).unwrap();
        file.truncate_to(log.len_bytes() - 9).unwrap();

        let (log, recs) = ServiceLog::open(&vfs).unwrap();
        assert_eq!(recs.len(), 1, "only the committed record survives");
        assert_eq!(recs[0].body, b"committed");
        assert_eq!(log.len_bytes(), clean_len, "tail truncated to clean prefix");
        // Appending after the heal produces a fully consistent log.
        log.append(3, b"after-heal").unwrap();
        let (_, recs) = ServiceLog::open(&vfs).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].body, b"after-heal");
    }

    #[test]
    fn torn_trailer_is_discarded() {
        let vfs = MemVfs::new();
        let log = ServiceLog::create(&vfs, CodecChoice::None).unwrap();
        log.append(1, b"ok").unwrap();
        log.append(2, b"no-trailer").unwrap();
        let file = vfs.open(SERVICE_LOG_FILE).unwrap();
        // Chop exactly the commit trailer off the final record.
        file.truncate_to(log.len_bytes() - 8).unwrap();
        let (_, recs) = ServiceLog::open(&vfs).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn coded_log_roundtrips_and_accounts_both_sides() {
        let vfs = MemVfs::new();
        let log = ServiceLog::create(&vfs, CodecChoice::Block).unwrap();
        let body = vec![7u8; 4096]; // highly compressible
        let physical = log.append(4, &body).unwrap();
        assert!(
            physical < body.len() as u64,
            "coded record must shrink this body"
        );
        let snap = vfs.stats().snapshot();
        assert!(snap.seq_write_logical_bytes > snap.seq_write_bytes);

        let (log, recs) = ServiceLog::open(&vfs).unwrap();
        assert_eq!(log.codec(), CodecChoice::Block);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, 4);
        assert_eq!(recs[0].body, body);
        let snap = vfs.stats().snapshot();
        assert!(snap.seq_read_logical_bytes > snap.seq_read_bytes);
    }

    #[test]
    fn bad_magic_rejected() {
        let vfs = MemVfs::new();
        vfs.create(SERVICE_LOG_FILE)
            .unwrap()
            .append(AccessClass::SeqWrite, b"not a log at all")
            .unwrap();
        assert!(ServiceLog::open(&vfs).is_err());
    }

    #[test]
    fn payload_writer_reader_roundtrip() {
        let mut w = PayloadWriter::new();
        w.put_u8(9);
        w.put_u32(77);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.25);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("pagerank-a");
        let body = w.into_bytes();

        let mut r = PayloadReader::new(&body);
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.get_u32().unwrap(), 77);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "pagerank-a");
        assert!(r.done());
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn graph_blob_roundtrip() {
        let offsets = vec![0u64, 2, 2, 5];
        let edges = vec![
            Edge::weighted(VertexId(1), 1.0),
            Edge::weighted(VertexId(2), 0.5),
            Edge::weighted(VertexId(0), 2.0),
            Edge::weighted(VertexId(1), -1.5),
            Edge::weighted(VertexId(2), 0.0),
        ];
        let g = Graph::from_parts(offsets, edges);
        let blob = encode_graph(&g);
        let h = decode_graph(&blob).unwrap();
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(h.out_edges(v), g.out_edges(v));
        }
        assert!(decode_graph(&blob[..blob.len() - 1]).is_err());
    }
}
