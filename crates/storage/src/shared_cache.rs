//! Cross-job shared edge-extent cache.
//!
//! A multi-tenant service runs many jobs over the same immutable on-disk
//! graph. Each adjacency edge run is written once and read by every job
//! that computes its vertex, so a byte-weighted cache over decoded edge
//! extents turns repeated physical reads into memory hits — the
//! [`LruCache`] of the per-vertex pull baseline promoted to a cache shared
//! *between* jobs.
//!
//! Attribution is per requesting job, not global: the cache itself holds
//! no [`IoStats`](crate::stats::IoStats). A hit means the requesting job
//! moved no physical bytes — the caller records the extent's logical bytes
//! into *its own* stats sink
//! ([`IoStats::record_logical`](crate::stats::IoStats::record_logical)) so
//! the job's `io_ratio` (physical / logical) reflects exactly what the
//! cache saved *it*. A miss is a normal read through the job's own store
//! view, already charged to the job. Evictions displace clean immutable
//! data (no write-back), so their only cost is the insert-side bookkeeping
//! counted by the inserting job.
//!
//! Sharding and determinism: the cache is sharded by worker slot, and a
//! vertex's extent lives only in the shard of the worker that owns the
//! vertex. While one job holds the engine (see the service scheduler),
//! each shard is touched by exactly one worker thread, in that worker's
//! deterministic access order — so the cache contents after every
//! scheduler grant are a pure function of the grant history, which is what
//! makes multi-job runs byte-identically replayable.

use crate::lru::LruCache;
use hybridgraph_graph::Edge;
use std::sync::{Arc, Mutex};

/// Fixed per-entry bookkeeping weight (key, Arc, length fields) charged on
/// top of the extent's stored bytes.
pub const CACHE_ENTRY_OVERHEAD: usize = 32;

/// Cache key: `(graph id, vertex id)` — graphs registered in the same
/// service share one cache, so extents of different graphs must not
/// collide.
pub type ExtentKey = (u32, u32);

/// One shard's counters, exposed for service-level reporting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups that found the extent.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by inserts.
    pub evictions: u64,
    /// Bytes currently cached (weights, including overhead).
    pub used_bytes: u64,
}

impl SharedCacheStats {
    /// Component-wise sum.
    pub fn plus(&self, o: &SharedCacheStats) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits + o.hits,
            misses: self.misses + o.misses,
            evictions: self.evictions + o.evictions,
            used_bytes: self.used_bytes + o.used_bytes,
        }
    }
}

struct Shard {
    lru: LruCache<ExtentKey, Arc<Vec<Edge>>>,
    evictions: u64,
}

/// One shard of a [`CacheSnapshot`]: MRU-first `(key, edges, weight)`
/// entries plus the shard's attribution counters.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Cached extents, most-recently-used first, with exact weights.
    pub entries: Vec<(ExtentKey, Arc<Vec<Edge>>, usize)>,
    /// Lookups that found an extent.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by inserts.
    pub evictions: u64,
}

/// A deep, order- and weight-exact copy of a [`SharedEdgeCache`], taken at
/// a barrier and replayed on service restore.
#[derive(Clone, Debug)]
pub struct CacheSnapshot {
    /// Per-slot shard snapshots, in slot order.
    pub shards: Vec<ShardSnapshot>,
}

/// A byte-weighted cache of decoded adjacency extents shared by every job
/// of a service, sharded per worker slot.
pub struct SharedEdgeCache {
    shards: Vec<Mutex<Shard>>,
}

impl std::fmt::Debug for SharedEdgeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedEdgeCache")
            .field("slots", &self.slots())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("used_bytes", &s.used_bytes)
            .finish()
    }
}

impl SharedEdgeCache {
    /// A cache with `slots` shards (one per worker slot of the registered
    /// graphs) and `capacity_bytes` total budget, split evenly.
    ///
    /// # Panics
    /// Panics if `slots` is zero or the per-shard budget rounds to zero.
    pub fn new(slots: usize, capacity_bytes: usize) -> SharedEdgeCache {
        assert!(slots > 0, "shared cache needs at least one shard");
        let per = capacity_bytes / slots;
        SharedEdgeCache {
            shards: (0..slots)
                .map(|_| {
                    Mutex::new(Shard {
                        lru: LruCache::new(per),
                        evictions: 0,
                    })
                })
                .collect(),
        }
    }

    /// Number of shards (worker slots) the cache was built for.
    pub fn slots(&self) -> usize {
        self.shards.len()
    }

    /// Looks up the extent of `vertex` of `graph` in `slot`'s shard,
    /// promoting it on hit. The caller is responsible for charging the
    /// extent's logical bytes to the requesting job's stats.
    pub fn get(&self, slot: usize, graph: u32, vertex: u32) -> Option<Arc<Vec<Edge>>> {
        self.shards[slot]
            .lock()
            .unwrap()
            .lru
            .get(&(graph, vertex))
            .map(Arc::clone)
    }

    /// Inserts a decoded extent weighing `stored_bytes` on disk. Returns
    /// how many entries were evicted to make room (charged to the
    /// inserting job's counters by the caller).
    pub fn insert(
        &self,
        slot: usize,
        graph: u32,
        vertex: u32,
        edges: Arc<Vec<Edge>>,
        stored_bytes: u64,
    ) -> u64 {
        let mut shard = self.shards[slot].lock().unwrap();
        let weight = stored_bytes as usize + CACHE_ENTRY_OVERHEAD;
        let evicted = shard
            .lru
            .insert_weighted((graph, vertex), edges, false, weight)
            .len() as u64;
        shard.evictions += evicted;
        evicted
    }

    /// Drops every cached extent of `graph` — called when the catalog
    /// evicts a graph so its memory is returned.
    ///
    /// Surviving entries keep their recency order *and* their exact
    /// insert-time weights (the extent's stored on-disk bytes plus
    /// overhead) — recomputing weights from decoded edge counts would
    /// drift `used_bytes` away from what the inserting jobs were charged,
    /// and a later [`Self::snapshot`] would then disagree with a
    /// log-replayed cache.
    pub fn purge_graph(&self, graph: u32) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let keep: Vec<(ExtentKey, Arc<Vec<Edge>>, bool, usize)> = shard
                .lru
                .snapshot_mru()
                .into_iter()
                .filter(|((g, _), _, _, _)| *g != graph)
                .collect();
            shard.lru.drain();
            // Re-insert MRU-first entries in reverse so recency survives.
            for ((g, v), edges, _, weight) in keep.into_iter().rev() {
                shard.lru.insert_weighted((g, v), edges, false, weight);
            }
        }
    }

    /// A deep copy of the cache: per shard, the MRU-ordered entries with
    /// their exact weights plus the attribution counters. This is what the
    /// durable service writes into its log at every barrier so a restarted
    /// service resumes with byte-identical cache behaviour (same hits,
    /// same evictions, same `io_ratio` attribution per tenant).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            shards: self
                .shards
                .iter()
                .map(|shard| {
                    let shard = shard.lock().unwrap();
                    ShardSnapshot {
                        entries: shard
                            .lru
                            .snapshot_mru()
                            .into_iter()
                            .map(|(k, v, _, w)| (k, v, w))
                            .collect(),
                        hits: shard.lru.hits(),
                        misses: shard.lru.misses(),
                        evictions: shard.evictions,
                    }
                })
                .collect(),
        }
    }

    /// Replaces the cache contents and counters with `snap` — the restore
    /// half of [`Self::snapshot`]. Shard counts must match (the restored
    /// service is built from the same logged `ServiceConfig`).
    ///
    /// # Panics
    /// Panics if `snap` has a different number of shards.
    pub fn restore(&self, snap: &CacheSnapshot) {
        assert_eq!(
            snap.shards.len(),
            self.shards.len(),
            "cache snapshot shard count mismatch"
        );
        for (shard, s) in self.shards.iter().zip(&snap.shards) {
            let mut shard = shard.lock().unwrap();
            shard.lru.drain();
            for ((g, v), edges, weight) in s.entries.iter().rev() {
                shard
                    .lru
                    .insert_weighted((*g, *v), Arc::clone(edges), false, *weight);
            }
            shard.lru.set_counters(s.hits, s.misses);
            shard.evictions = s.evictions;
        }
    }

    /// Summed counters across shards.
    pub fn stats(&self) -> SharedCacheStats {
        let mut out = SharedCacheStats::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            out = out.plus(&SharedCacheStats {
                hits: shard.lru.hits(),
                misses: shard.lru.misses(),
                evictions: shard.evictions,
                used_bytes: shard.lru.used_weight() as u64,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridgraph_graph::VertexId;

    fn extent(n: usize) -> Arc<Vec<Edge>> {
        Arc::new(
            (0..n)
                .map(|i| Edge::weighted(VertexId(i as u32), 1.0))
                .collect(),
        )
    }

    #[test]
    fn hit_after_insert_same_slot() {
        let c = SharedEdgeCache::new(2, 4096);
        assert!(c.get(0, 7, 1).is_none());
        c.insert(0, 7, 1, extent(3), 24);
        let got = c.get(0, 7, 1).unwrap();
        assert_eq!(got.len(), 3);
        // Other shard and other graph are independent namespaces.
        assert!(c.get(1, 7, 1).is_none());
        assert!(c.get(0, 8, 1).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // One shard, room for two 200-byte extents plus overhead.
        let c = SharedEdgeCache::new(1, 2 * (200 + CACHE_ENTRY_OVERHEAD));
        assert_eq!(c.insert(0, 1, 1, extent(25), 200), 0);
        assert_eq!(c.insert(0, 1, 2, extent(25), 200), 0);
        c.get(0, 1, 1); // promote 1; 2 becomes LRU
        assert_eq!(c.insert(0, 1, 3, extent(25), 200), 1);
        assert!(c.get(0, 1, 2).is_none(), "LRU entry must have been evicted");
        assert!(c.get(0, 1, 1).is_some());
        assert!(c.get(0, 1, 3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn purge_graph_keeps_neighbors() {
        let c = SharedEdgeCache::new(1, 1 << 16);
        c.insert(0, 1, 10, extent(2), 16);
        c.insert(0, 2, 10, extent(2), 16);
        c.purge_graph(1);
        assert!(c.get(0, 1, 10).is_none());
        assert!(c.get(0, 2, 10).is_some());
    }

    #[test]
    fn purge_graph_preserves_exact_weights() {
        // A stored weight (300 bytes on disk) that differs from the decoded
        // in-memory size (2 edges): the survivor must keep its insert-time
        // weight, not a recomputed one.
        let c = SharedEdgeCache::new(1, 1 << 16);
        c.insert(0, 1, 10, extent(2), 16);
        c.insert(0, 2, 10, extent(2), 300);
        let before = c.stats().used_bytes;
        assert_eq!(
            before,
            (16 + 300 + 2 * CACHE_ENTRY_OVERHEAD as u64),
            "sanity: weights are stored bytes plus overhead"
        );
        c.purge_graph(1);
        assert_eq!(
            c.stats().used_bytes,
            300 + CACHE_ENTRY_OVERHEAD as u64,
            "survivor keeps its exact stored-bytes weight"
        );
    }

    #[test]
    fn snapshot_restore_is_exact_replica() {
        let c = SharedEdgeCache::new(2, 2 * 2 * (200 + CACHE_ENTRY_OVERHEAD));
        c.insert(0, 1, 1, extent(25), 200);
        c.insert(0, 1, 2, extent(25), 200);
        c.get(0, 1, 1); // promote 1 so 2 is the LRU entry
        c.insert(1, 1, 3, extent(4), 32);
        c.get(1, 9, 9); // a miss, for the counters
        let snap = c.snapshot();

        let d = SharedEdgeCache::new(2, 2 * 2 * (200 + CACHE_ENTRY_OVERHEAD));
        d.restore(&snap);
        assert_eq!(d.stats(), c.stats(), "counters and used bytes carry over");
        // Recency carried over: inserting a third extent into slot 0 must
        // evict vertex 2 (the LRU), exactly as it would in the original.
        assert_eq!(d.insert(0, 1, 4, extent(25), 200), 1);
        assert!(d.get(0, 1, 2).is_none());
        assert!(d.get(0, 1, 1).is_some());
        assert_eq!(c.insert(0, 1, 4, extent(25), 200), 1);
        assert!(c.get(0, 1, 2).is_none());
        assert!(c.get(0, 1, 1).is_some());
        assert_eq!(d.stats(), c.stats(), "replica tracks original exactly");
    }
}
