//! Push receiver-side message store with bounded buffer and spill.
//!
//! In push-based systems, messages received in superstep `t` are consumed
//! in superstep `t+1`, so they must be carried across the barrier. Giraph
//! keeps up to `B_i` of them in memory and spills the rest to local disk.
//! Because messages arrive for scattered destination vertices, spill
//! writes have no locality — the paper accounts them as random writes
//! (`IO(M_disk)/s_rw` in Eq. 11) and the read-back as a sequential scan
//! (the `IO(M_disk)/s_sr` term), which is exactly how [`SpillBuffer`]
//! classifies its traffic.

use crate::record::Record;
use crate::stats::AccessClass;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_codec::{decode_blob_frame, encode_blob_frame, CodecChoice};
use hybridgraph_graph::VertexId;
use std::io;
use std::marker::PhantomData;

/// Messages per compressed spill chunk when a codec is active. Each full
/// chunk is framed and appended as one coded random write; the chunk
/// being assembled stays in memory until it fills (or the buffer drains).
const SPILL_CHUNK_MSGS: u64 = 256;

/// A bounded in-memory message buffer that spills overflow to disk.
pub struct SpillBuffer<M: Record> {
    mem: Vec<(VertexId, M)>,
    capacity: usize,
    spill: VfsFile,
    spilled: u64,
    total: u64,
    codec: CodecChoice,
    /// Raw encoding of spill-bound messages not yet flushed as a chunk
    /// (always empty without a codec).
    chunk: Vec<u8>,
    /// Physical bytes currently in the spill file (coded path only).
    file_bytes: u64,
    /// Logical bytes behind `file_bytes`.
    file_logical: u64,
    _marker: PhantomData<M>,
}

impl<M: Record> SpillBuffer<M> {
    /// Creates a buffer holding at most `capacity` messages in memory;
    /// overflow goes to the spill file `name` in `vfs`, uncompressed.
    pub fn new(vfs: &dyn Vfs, name: &str, capacity: usize) -> io::Result<SpillBuffer<M>> {
        SpillBuffer::with_codec(vfs, name, capacity, CodecChoice::None)
    }

    /// Like [`SpillBuffer::new`], but spilled messages are framed into
    /// coded chunks of [`SPILL_CHUNK_MSGS`] when `codec` is active.
    pub fn with_codec(
        vfs: &dyn Vfs,
        name: &str,
        capacity: usize,
        codec: CodecChoice,
    ) -> io::Result<SpillBuffer<M>> {
        Ok(SpillBuffer {
            mem: Vec::new(),
            capacity,
            spill: vfs.create(name)?,
            spilled: 0,
            total: 0,
            codec,
            chunk: Vec::new(),
            file_bytes: 0,
            file_logical: 0,
            _marker: PhantomData,
        })
    }

    /// Bytes of one spilled message on disk: destination id + payload
    /// (the paper's `S_m`).
    pub fn message_bytes() -> u64 {
        4 + M::BYTES as u64
    }

    /// Flushes the pending chunk as one coded frame (coded path only).
    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        let frame = encode_blob_frame(self.codec, &self.chunk);
        self.spill
            .append_coded(AccessClass::RandWrite, &frame, self.chunk.len() as u64)?;
        self.file_bytes += frame.len() as u64;
        self.file_logical += self.chunk.len() as u64;
        self.chunk.clear();
        Ok(())
    }

    /// Decodes every message currently in the spill file (coded path),
    /// reading the file as one sequential scan, then the pending chunk.
    fn decode_spilled_coded(&self, into: &mut Vec<(VertexId, M)>) -> io::Result<()> {
        let width = Self::message_bytes() as usize;
        let mut decode_raw = |raw: &[u8]| {
            for chunk in raw.chunks_exact(width) {
                let dst = VertexId::read_from(&chunk[..4]);
                let msg = M::read_from(&chunk[4..]);
                into.push((dst, msg));
            }
        };
        if self.file_bytes > 0 {
            let bytes = self.spill.read_vec_coded(
                AccessClass::SeqRead,
                0,
                self.file_bytes as usize,
                self.file_logical,
            )?;
            let mut pos = 0usize;
            while pos < bytes.len() {
                let raw = decode_blob_frame(&bytes, &mut pos)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                decode_raw(&raw);
            }
        }
        decode_raw(&self.chunk);
        Ok(())
    }

    /// Accepts one message for `dst`.
    pub fn push(&mut self, dst: VertexId, msg: M) -> io::Result<()> {
        self.total += 1;
        if self.mem.len() < self.capacity {
            self.mem.push((dst, msg));
        } else if self.codec.is_none() {
            let mut buf = Vec::with_capacity(Self::message_bytes() as usize);
            dst.append_to(&mut buf);
            msg.append_to(&mut buf);
            self.spill.append(AccessClass::RandWrite, &buf)?;
            self.spilled += 1;
        } else {
            dst.append_to(&mut self.chunk);
            msg.append_to(&mut self.chunk);
            self.spilled += 1;
            if self.chunk.len() as u64 >= SPILL_CHUNK_MSGS * Self::message_bytes() {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    /// Total messages received since the last [`Self::drain`].
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Messages currently on disk.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Spill bytes the overflow currently occupies: physical file bytes
    /// plus the raw pending chunk. Without a codec this is exactly
    /// `spilled · message_bytes`.
    pub fn spilled_bytes(&self) -> u64 {
        if self.codec.is_none() {
            self.spilled * Self::message_bytes()
        } else {
            self.file_bytes + self.chunk.len() as u64
        }
    }

    /// Messages currently buffered in memory.
    pub fn in_memory(&self) -> usize {
        self.mem.len()
    }

    /// In-memory footprint in bytes (for the memory-usage curves),
    /// including any spill chunk still being assembled.
    pub fn memory_bytes(&self) -> u64 {
        self.mem.len() as u64 * Self::message_bytes() + self.chunk.len() as u64
    }

    /// Ends the receive phase: reads back any spilled messages (sequential
    /// scan), merges with the in-memory buffer, sorts by destination (the
    /// sort-merge Giraph performs before the next superstep) and resets the
    /// buffer for the next receive phase.
    pub fn drain(&mut self) -> io::Result<DeliveredMessages<M>> {
        let mut all = std::mem::take(&mut self.mem);
        if self.spilled > 0 {
            if self.codec.is_none() {
                let bytes = self.spill.read_all(AccessClass::SeqRead)?;
                let width = Self::message_bytes() as usize;
                for chunk in bytes.chunks_exact(width) {
                    let dst = VertexId::read_from(&chunk[..4]);
                    let msg = M::read_from(&chunk[4..]);
                    all.push((dst, msg));
                }
            } else {
                self.decode_spilled_coded(&mut all)?;
            }
            self.spill.truncate()?;
        }
        self.spilled = 0;
        self.total = 0;
        self.chunk.clear();
        self.file_bytes = 0;
        self.file_logical = 0;
        all.sort_by_key(|(dst, _)| *dst);
        Ok(DeliveredMessages { sorted: all })
    }

    /// Non-destructively snapshots every pending message (the in-memory
    /// buffer plus a sequential read-back of the spill file) for
    /// checkpointing. The buffer is left exactly as it was.
    pub fn snapshot_pending(&self) -> io::Result<Vec<(VertexId, M)>> {
        let mut all = self.mem.clone();
        if self.spilled > 0 {
            if self.codec.is_none() {
                let bytes = self.spill.read_all(AccessClass::SeqRead)?;
                let width = Self::message_bytes() as usize;
                for chunk in bytes.chunks_exact(width) {
                    let dst = VertexId::read_from(&chunk[..4]);
                    let msg = M::read_from(&chunk[4..]);
                    all.push((dst, msg));
                }
            } else {
                self.decode_spilled_coded(&mut all)?;
            }
        }
        Ok(all)
    }

    /// Captures the buffer's current extent so a later
    /// [`Self::rewind`] can discard everything pushed after it. Valid
    /// only while no [`Self::drain`] happens in between (draining
    /// consumes the marked region).
    pub fn mark(&self) -> SpillMark {
        SpillMark {
            mem: self.mem.len(),
            spilled: self.spilled,
            total: self.total,
            file_bytes: self.file_bytes,
            file_logical: self.file_logical,
            chunk: self.chunk.clone(),
        }
    }

    /// Discards every message pushed since `mark` (superstep undo for
    /// confined recovery): the in-memory tail is dropped and the spill
    /// file shrinks back to its marked length. Discarding moves no
    /// data, so nothing is accounted — the pushes that created the tail
    /// already were, during the (kept) measurement window of the
    /// abandoned superstep.
    pub fn rewind(&mut self, mark: &SpillMark) -> io::Result<()> {
        assert!(
            mark.mem <= self.mem.len() && mark.spilled <= self.spilled,
            "rewind past a drain"
        );
        self.mem.truncate(mark.mem);
        if self.codec.is_none() {
            self.spill
                .truncate_to(mark.spilled * Self::message_bytes())?;
        } else {
            self.spill.truncate_to(mark.file_bytes)?;
            self.file_bytes = mark.file_bytes;
            self.file_logical = mark.file_logical;
            self.chunk.clear();
            self.chunk.extend_from_slice(&mark.chunk);
        }
        self.spilled = mark.spilled;
        self.total = mark.total;
        Ok(())
    }

    /// Replaces the buffer's entire contents with `pairs` (recovery
    /// restore): the first `capacity` stay in memory, the rest spill,
    /// with the usual accounting.
    pub fn restore_pending(&mut self, pairs: Vec<(VertexId, M)>) -> io::Result<()> {
        self.mem.clear();
        self.spill.truncate()?;
        self.spilled = 0;
        self.total = 0;
        self.chunk.clear();
        self.file_bytes = 0;
        self.file_logical = 0;
        for (dst, msg) in pairs {
            self.push(dst, msg)?;
        }
        Ok(())
    }
}

/// A point-in-time extent of a [`SpillBuffer`], for [`SpillBuffer::rewind`].
/// With a codec the mark also carries a copy of the pending spill chunk
/// (bounded by [`SPILL_CHUNK_MSGS`] messages), since later pushes may have
/// flushed it into the file.
#[derive(Clone, Debug)]
pub struct SpillMark {
    mem: usize,
    spilled: u64,
    total: u64,
    file_bytes: u64,
    file_logical: u64,
    chunk: Vec<u8>,
}

/// Messages of one superstep, grouped by destination vertex.
pub struct DeliveredMessages<M> {
    sorted: Vec<(VertexId, M)>,
}

impl<M> DeliveredMessages<M> {
    /// An empty delivery.
    pub fn empty() -> Self {
        DeliveredMessages { sorted: Vec::new() }
    }

    /// Total number of messages.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no messages were delivered.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The messages addressed to `v`.
    pub fn for_vertex(&self, v: VertexId) -> &[(VertexId, M)] {
        let start = self.sorted.partition_point(|(d, _)| *d < v);
        let end = self.sorted.partition_point(|(d, _)| *d <= v);
        &self.sorted[start..end]
    }

    /// Iterates over `(dst, msg)` pairs in destination order.
    pub fn iter(&self) -> impl Iterator<Item = &(VertexId, M)> {
        self.sorted.iter()
    }

    /// Consumes the delivery, returning the destination-sorted pairs.
    pub fn into_sorted(self) -> Vec<(VertexId, M)> {
        self.sorted
    }

    /// Builds a delivery from arbitrary `(dst, msg)` pairs.
    pub fn from_pairs(mut pairs: Vec<(VertexId, M)>) -> Self
    where
        M: Clone,
    {
        pairs.sort_by_key(|(d, _)| *d);
        DeliveredMessages { sorted: pairs }
    }

    /// The distinct destinations, in order.
    pub fn destinations(&self) -> impl Iterator<Item = VertexId> + '_ {
        let mut last: Option<VertexId> = None;
        self.sorted.iter().filter_map(move |(d, _)| {
            if last == Some(*d) {
                None
            } else {
                last = Some(*d);
                Some(*d)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn within_capacity_no_spill() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<f64> = SpillBuffer::new(&vfs, "spill", 10).unwrap();
        for i in 0..5 {
            b.push(VertexId(i), i as f64).unwrap();
        }
        assert_eq!(b.spilled(), 0);
        assert_eq!(b.in_memory(), 5);
        assert_eq!(vfs.stats().snapshot().rand_write_bytes, 0);
        let d = b.drain().unwrap();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn overflow_spills_random_writes() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<f64> = SpillBuffer::new(&vfs, "spill", 3).unwrap();
        for i in 0..10 {
            b.push(VertexId(i % 4), i as f64).unwrap();
        }
        assert_eq!(b.spilled(), 7);
        assert_eq!(b.total(), 10);
        let msg_bytes = SpillBuffer::<f64>::message_bytes();
        assert_eq!(vfs.stats().snapshot().rand_write_bytes, 7 * msg_bytes);
        assert_eq!(b.spilled_bytes(), 7 * msg_bytes);

        let before = vfs.stats().snapshot();
        let d = b.drain().unwrap();
        assert_eq!(d.len(), 10);
        // Read-back is sequential.
        let delta = vfs.stats().snapshot().delta(&before);
        assert_eq!(delta.seq_read_bytes, 7 * msg_bytes);
    }

    #[test]
    fn drain_groups_by_destination() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> = SpillBuffer::new(&vfs, "spill", 2).unwrap();
        b.push(VertexId(5), 50).unwrap();
        b.push(VertexId(1), 10).unwrap();
        b.push(VertexId(5), 51).unwrap();
        b.push(VertexId(3), 30).unwrap();
        let d = b.drain().unwrap();
        let five: Vec<u32> = d.for_vertex(VertexId(5)).iter().map(|(_, m)| *m).collect();
        assert_eq!(five, vec![50, 51]);
        assert_eq!(d.for_vertex(VertexId(1)).len(), 1);
        assert_eq!(d.for_vertex(VertexId(2)).len(), 0);
        let dsts: Vec<u32> = d.destinations().map(|v| v.0).collect();
        assert_eq!(dsts, vec![1, 3, 5]);
    }

    #[test]
    fn drain_resets_for_next_superstep() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> = SpillBuffer::new(&vfs, "spill", 1).unwrap();
        b.push(VertexId(0), 1).unwrap();
        b.push(VertexId(1), 2).unwrap();
        b.drain().unwrap();
        assert_eq!(b.total(), 0);
        assert_eq!(b.spilled(), 0);
        assert_eq!(b.in_memory(), 0);
        b.push(VertexId(2), 3).unwrap();
        let d = b.drain().unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.for_vertex(VertexId(2))[0].1, 3);
    }

    #[test]
    fn zero_capacity_spills_everything() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> = SpillBuffer::new(&vfs, "spill", 0).unwrap();
        for i in 0..4 {
            b.push(VertexId(i), i).unwrap();
        }
        assert_eq!(b.spilled(), 4);
        assert_eq!(b.drain().unwrap().len(), 4);
    }

    #[test]
    fn memory_bytes_tracks_buffer() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<f64> = SpillBuffer::new(&vfs, "spill", 8).unwrap();
        b.push(VertexId(0), 0.0).unwrap();
        b.push(VertexId(1), 1.0).unwrap();
        assert_eq!(b.memory_bytes(), 2 * 12);
    }

    #[test]
    fn snapshot_is_nondestructive_and_restore_rebuilds() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> = SpillBuffer::new(&vfs, "spill", 2).unwrap();
        for i in 0..5 {
            b.push(VertexId(i), i * 10).unwrap();
        }
        let snap = b.snapshot_pending().unwrap();
        assert_eq!(snap.len(), 5);
        // Buffer untouched by the snapshot.
        assert_eq!(b.total(), 5);
        assert_eq!(b.spilled(), 3);
        assert_eq!(b.in_memory(), 2);

        // Restore into a fresh buffer reproduces counts and contents.
        let vfs2 = MemVfs::new();
        let mut c: SpillBuffer<u32> = SpillBuffer::new(&vfs2, "spill", 2).unwrap();
        c.restore_pending(snap).unwrap();
        assert_eq!(c.total(), 5);
        assert_eq!(c.spilled(), 3);
        let d = c.drain().unwrap();
        let got: Vec<(u32, u32)> = d.iter().map(|(v, m)| (v.0, *m)).collect();
        assert_eq!(got, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        // Restore over a dirty buffer discards its old contents.
        c.push(VertexId(9), 99).unwrap();
        c.restore_pending(vec![(VertexId(1), 7)]).unwrap();
        assert_eq!(c.total(), 1);
        assert_eq!(c.drain().unwrap().len(), 1);
    }

    #[test]
    fn mark_and_rewind_discard_the_tail_unaccounted() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> = SpillBuffer::new(&vfs, "spill", 2).unwrap();
        b.push(VertexId(0), 1).unwrap();
        b.push(VertexId(1), 2).unwrap();
        b.push(VertexId(2), 3).unwrap(); // spilled
        let mark = b.mark();
        b.push(VertexId(3), 4).unwrap(); // spilled tail
        b.push(VertexId(4), 5).unwrap(); // spilled tail
        let before = vfs.stats().snapshot();
        b.rewind(&mark).unwrap();
        assert_eq!(vfs.stats().snapshot(), before, "rewind must be free");
        assert_eq!(b.total(), 3);
        assert_eq!(b.spilled(), 1);
        assert_eq!(b.in_memory(), 2);
        let d = b.drain().unwrap();
        let got: Vec<(u32, u32)> = d.iter().map(|(v, m)| (v.0, *m)).collect();
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
        // A rewind to a no-op mark is fine.
        let m2 = b.mark();
        b.rewind(&m2).unwrap();
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn coded_spill_roundtrips_and_shrinks() {
        for codec in [CodecChoice::Gaps, CodecChoice::Block, CodecChoice::Auto] {
            let vfs = MemVfs::new();
            let mut b: SpillBuffer<f64> = SpillBuffer::with_codec(&vfs, "spill", 4, codec).unwrap();
            // Enough overflow to flush several chunks plus a partial one.
            let n = 3 * SPILL_CHUNK_MSGS + 77;
            for i in 0..n {
                b.push(VertexId((i % 13) as u32), i as f64).unwrap();
            }
            assert_eq!(b.total(), n);
            assert_eq!(b.spilled(), n - 4);
            let snap = vfs.stats().snapshot();
            if !matches!(codec, CodecChoice::Gaps) {
                // Block/Auto compress the highly regular spill stream.
                assert!(
                    snap.rand_write_bytes < snap.rand_write_logical_bytes,
                    "{codec:?} should shrink spills"
                );
            }
            assert!(b.spilled_bytes() > 0);
            let mut got: Vec<(u32, u64)> = b
                .drain()
                .unwrap()
                .iter()
                .map(|(v, m)| (v.0, m.to_bits()))
                .collect();
            got.sort();
            let mut want: Vec<(u32, u64)> = (0..n)
                .map(|i| ((i % 13) as u32, (i as f64).to_bits()))
                .collect();
            want.sort();
            assert_eq!(got, want, "{codec:?}");
            assert_eq!(b.spilled_bytes(), 0);
        }
    }

    #[test]
    fn coded_snapshot_and_restore() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> =
            SpillBuffer::with_codec(&vfs, "spill", 1, CodecChoice::Block).unwrap();
        let n = SPILL_CHUNK_MSGS + 9;
        for i in 0..n {
            b.push(VertexId(i as u32), i as u32 * 3).unwrap();
        }
        let snap = b.snapshot_pending().unwrap();
        assert_eq!(snap.len() as u64, n);
        assert_eq!(b.total(), n, "snapshot must not disturb the buffer");

        let vfs2 = MemVfs::new();
        let mut c: SpillBuffer<u32> =
            SpillBuffer::with_codec(&vfs2, "spill", 1, CodecChoice::Block).unwrap();
        c.restore_pending(snap).unwrap();
        assert_eq!(c.total(), n);
        assert_eq!(c.drain().unwrap().len() as u64, n);
    }

    #[test]
    fn coded_mark_and_rewind_survive_chunk_flushes() {
        let vfs = MemVfs::new();
        let mut b: SpillBuffer<u32> =
            SpillBuffer::with_codec(&vfs, "spill", 0, CodecChoice::Block).unwrap();
        // Leave a partial chunk pending, mark, then push past a flush.
        for i in 0..10u32 {
            b.push(VertexId(i), i).unwrap();
        }
        let mark = b.mark();
        for i in 10..(SPILL_CHUNK_MSGS as u32 + 40) {
            b.push(VertexId(i), i).unwrap();
        }
        let before = vfs.stats().snapshot();
        b.rewind(&mark).unwrap();
        assert_eq!(vfs.stats().snapshot(), before, "rewind must be free");
        assert_eq!(b.total(), 10);
        assert_eq!(b.spilled(), 10);
        let got: Vec<u32> = b.drain().unwrap().iter().map(|(_, m)| *m).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_delivery() {
        let d: DeliveredMessages<u32> = DeliveredMessages::empty();
        assert!(d.is_empty());
        assert_eq!(d.for_vertex(VertexId(0)).len(), 0);
    }
}
