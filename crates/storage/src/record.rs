//! Fixed-size record serialization for vertex values and messages.
//!
//! Vertex values and messages are small POD-like types (ranks, distances,
//! labels, ad ids). Stores and the network fabric serialize them through
//! [`Record`], which fixes the byte width per type — that width is exactly
//! the paper's `S_v` (value size) and the value part of `S_m` (message
//! size) used in Theorem 2 and Eq. 11.

use hybridgraph_graph::VertexId;

/// A fixed-width serializable value.
pub trait Record: Sized + Clone + Send + Sync + 'static {
    /// Encoded width in bytes.
    const BYTES: usize;

    /// Encodes into `out`; `out.len()` must be `Self::BYTES`.
    fn write_to(&self, out: &mut [u8]);

    /// Decodes from `inp`; `inp.len()` must be `Self::BYTES`.
    fn read_from(inp: &[u8]) -> Self;

    /// Encodes by appending to a vector.
    fn append_to(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + Self::BYTES, 0);
        self.write_to(&mut out[start..]);
    }
}

macro_rules! impl_record_num {
    ($($t:ty),*) => {$(
        impl Record for $t {
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_to(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_from(inp: &[u8]) -> Self {
                <$t>::from_le_bytes(inp.try_into().expect("record width"))
            }
        }
    )*};
}

impl_record_num!(u8, u16, u32, u64, i32, i64, f32, f64);

impl Record for () {
    const BYTES: usize = 0;

    #[inline]
    fn write_to(&self, _out: &mut [u8]) {}

    #[inline]
    fn read_from(_inp: &[u8]) -> Self {}
}

impl Record for VertexId {
    const BYTES: usize = 4;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        self.0.write_to(out)
    }

    #[inline]
    fn read_from(inp: &[u8]) -> Self {
        VertexId(u32::read_from(inp))
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    const BYTES: usize = A::BYTES + B::BYTES;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        self.0.write_to(&mut out[..A::BYTES]);
        self.1.write_to(&mut out[A::BYTES..]);
    }

    #[inline]
    fn read_from(inp: &[u8]) -> Self {
        (
            A::read_from(&inp[..A::BYTES]),
            B::read_from(&inp[A::BYTES..]),
        )
    }
}

/// Encodes a slice of records into a byte vector.
pub fn encode_slice<T: Record>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * T::BYTES);
    for item in items {
        item.append_to(&mut out);
    }
    out
}

/// Decodes a byte slice into records.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of the record width.
pub fn decode_slice<T: Record>(bytes: &[u8]) -> Vec<T> {
    if T::BYTES == 0 {
        return Vec::new();
    }
    assert_eq!(
        bytes.len() % T::BYTES,
        0,
        "byte length not a record multiple"
    );
    bytes.chunks_exact(T::BYTES).map(T::read_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_roundtrip() {
        let mut buf = [0u8; 8];
        3.5f64.write_to(&mut buf);
        assert_eq!(f64::read_from(&buf), 3.5);
        let mut buf4 = [0u8; 4];
        0xdead_beefu32.write_to(&mut buf4);
        assert_eq!(u32::read_from(&buf4), 0xdead_beef);
    }

    #[test]
    fn vertex_id_roundtrip() {
        let mut buf = [0u8; 4];
        VertexId(77).write_to(&mut buf);
        assert_eq!(VertexId::read_from(&buf), VertexId(77));
    }

    #[test]
    fn pair_layout() {
        assert_eq!(<(VertexId, f32)>::BYTES, 8);
        let mut buf = [0u8; 8];
        (VertexId(5), 1.25f32).write_to(&mut buf);
        let (v, w) = <(VertexId, f32)>::read_from(&buf);
        assert_eq!(v, VertexId(5));
        assert_eq!(w, 1.25);
    }

    #[test]
    fn slice_roundtrip() {
        let items = vec![1u32, 2, 3, 4];
        let bytes = encode_slice(&items);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_slice::<u32>(&bytes), items);
    }

    #[test]
    fn unit_record_is_zero_width() {
        assert_eq!(<()>::BYTES, 0);
        assert!(encode_slice::<()>(&[(), ()]).is_empty());
    }

    #[test]
    #[should_panic(expected = "record multiple")]
    fn misaligned_decode_panics() {
        decode_slice::<u32>(&[1, 2, 3]);
    }
}
