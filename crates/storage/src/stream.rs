//! Streaming VE-BLOCK construction with an Elias-Fano extent directory.
//!
//! [`VeBlockStore`](crate::veblock::VeBlockStore) materializes the whole
//! `Graph` in memory and keeps a flat 44-byte index entry per Eblock —
//! fine at LiveJ scale, hopeless for a billion-edge catalog entry where
//! the grid has tens of millions of Eblocks and the edge list alone
//! would dwarf RAM. This module is the scale path:
//!
//! * a [`StreamEblockWriter`] accepts raw Eblock bytes *one at a time*
//!   (block-at-a-time generation never holds more than one source
//!   block's edges), appends them as coded extents, and records only two
//!   cumulative counters per Eblock;
//! * [`StreamEblockStore`] then freezes those counters into two
//!   Elias-Fano sequences — physical offsets and logical offsets — so
//!   the whole directory costs ~2 bytes per Eblock and any `g_{j,i}` is
//!   randomly accessible in O(1)-ish time without decoding neighbours.
//!
//! Eblocks are appended in source-major order (`src block · nblocks +
//! dst block`), matching a generator that walks source blocks; a b-pull
//! sweep over destination block `j` reads index `i·nblocks + j` for
//! each source block `i` — random access served by the EF directory,
//! never a whole-directory or whole-extent decode.

use crate::record::Record;
use crate::stats::AccessClass;
use crate::veblock::Fragment;
use crate::vfs::{Vfs, VfsFile};
use hybridgraph_codec::ef::EliasFano;
use hybridgraph_codec::{decode_extent, encode_extent, CodecChoice, ExtentKind};
use hybridgraph_graph::{Edge, VertexId};
use std::io;

/// Accepts Eblock extents in index order and accumulates the directory.
pub struct StreamEblockWriter {
    file: VfsFile,
    codec: CodecChoice,
    nblocks: u32,
    /// Cumulative physical bytes after each appended Eblock (`[0]` = 0).
    phys: Vec<u64>,
    /// Cumulative logical bytes after each appended Eblock.
    logi: Vec<u64>,
    total_fragments: u64,
}

impl StreamEblockWriter {
    /// Creates a writer for an `nblocks × nblocks` Eblock grid.
    pub fn create(
        vfs: &dyn Vfs,
        name: &str,
        nblocks: u32,
        codec: CodecChoice,
    ) -> io::Result<StreamEblockWriter> {
        let file = vfs.create(name)?;
        let cells = nblocks as usize * nblocks as usize;
        let mut phys = Vec::with_capacity(cells + 1);
        phys.push(0);
        let mut logi = Vec::with_capacity(cells + 1);
        logi.push(0);
        Ok(StreamEblockWriter {
            file,
            codec,
            nblocks,
            phys,
            logi,
            total_fragments: 0,
        })
    }

    /// Number of Eblocks appended so far.
    pub fn appended(&self) -> usize {
        self.phys.len() - 1
    }

    /// Appends the next Eblock in index order. `raw` is the fragment
    /// stream (`svertex u32 | count u32 | count × (id u32, w f32)`
    /// repeated); `fragments` is its fragment count. Empty extents cost
    /// zero bytes — only the directory remembers them.
    pub fn append_eblock(&mut self, raw: &[u8], fragments: u32) -> io::Result<()> {
        debug_assert!(
            self.appended() < self.nblocks as usize * self.nblocks as usize,
            "eblock grid overflow"
        );
        let stored = if raw.is_empty() {
            0
        } else if self.codec.is_none() {
            self.file.append(AccessClass::SeqWrite, raw)?;
            raw.len() as u64
        } else {
            let coded = encode_extent(self.codec, ExtentKind::Fragments, raw);
            self.file
                .append_coded(AccessClass::SeqWrite, &coded, raw.len() as u64)?;
            coded.len() as u64
        };
        self.phys.push(self.phys.last().unwrap() + stored);
        self.logi.push(self.logi.last().unwrap() + raw.len() as u64);
        self.total_fragments += u64::from(fragments);
        Ok(())
    }

    /// Freezes the directory into Elias-Fano form. Must have been fed
    /// exactly `nblocks²` Eblocks.
    pub fn finish(self) -> io::Result<StreamEblockStore> {
        let cells = self.nblocks as usize * self.nblocks as usize;
        if self.appended() != cells {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("wrote {} of {cells} eblocks", self.appended()),
            ));
        }
        let err = |e: hybridgraph_codec::CodecError| {
            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
        };
        Ok(StreamEblockStore {
            file: self.file,
            codec: self.codec,
            nblocks: self.nblocks,
            phys: EliasFano::build(&self.phys).map_err(err)?,
            logi: EliasFano::build(&self.logi).map_err(err)?,
            total_fragments: self.total_fragments,
        })
    }
}

/// The frozen store: coded Eblock extents plus the dual EF directory.
pub struct StreamEblockStore {
    file: VfsFile,
    codec: CodecChoice,
    nblocks: u32,
    phys: EliasFano,
    logi: EliasFano,
    total_fragments: u64,
}

impl StreamEblockStore {
    /// Grid dimension (blocks per side).
    pub fn nblocks(&self) -> u32 {
        self.nblocks
    }

    #[inline]
    fn cell(&self, src_block: u32, dst_block: u32) -> u64 {
        debug_assert!(src_block < self.nblocks && dst_block < self.nblocks);
        u64::from(src_block) * u64::from(self.nblocks) + u64::from(dst_block)
    }

    /// Physical stored bytes of `g_{src,dst}` (no I/O).
    pub fn stored_bytes(&self, src_block: u32, dst_block: u32) -> u64 {
        let c = self.cell(src_block, dst_block);
        self.phys.get(c + 1) - self.phys.get(c)
    }

    /// Logical (uncompressed) bytes of `g_{src,dst}` (no I/O).
    pub fn logical_bytes(&self, src_block: u32, dst_block: u32) -> u64 {
        let c = self.cell(src_block, dst_block);
        self.logi.get(c + 1) - self.logi.get(c)
    }

    /// Reads and decodes one Eblock's raw fragment-stream bytes.
    ///
    /// This is the per-block random access the EF directory exists for:
    /// two `get` calls locate the extent, and only that extent is read
    /// and decoded — never the neighbours, never the directory itself.
    pub fn read_eblock_raw(
        &self,
        src_block: u32,
        dst_block: u32,
        class: AccessClass,
    ) -> io::Result<Vec<u8>> {
        let c = self.cell(src_block, dst_block);
        let (start, end) = (self.phys.get(c), self.phys.get(c + 1));
        if start == end {
            return Ok(Vec::new());
        }
        if self.codec.is_none() {
            return self.file.read_vec(class, start, (end - start) as usize);
        }
        let logical = self.logi.get(c + 1) - self.logi.get(c);
        let coded = self
            .file
            .read_vec_coded(class, start, (end - start) as usize, logical)?;
        decode_extent(ExtentKind::Fragments, &coded, logical as usize)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Reads one Eblock as parsed fragments (test/convenience path; the
    /// billion-edge sweep parses [`read_eblock_raw`] in place instead).
    pub fn scan_eblock(&self, src_block: u32, dst_block: u32) -> io::Result<Vec<Fragment>> {
        let bytes = self.read_eblock_raw(src_block, dst_block, AccessClass::SeqRead)?;
        let mut fragments = Vec::new();
        let mut at = 0usize;
        while at < bytes.len() {
            let src = VertexId(u32::read_from(&bytes[at..at + 4]));
            let count = u32::read_from(&bytes[at + 4..at + 8]) as usize;
            at += 8;
            let mut edges = Vec::with_capacity(count);
            for _ in 0..count {
                edges.push(Edge::read_from(&bytes[at..at + 8]));
                at += 8;
            }
            fragments.push(Fragment { src, edges });
        }
        Ok(fragments)
    }

    /// Total physical bytes of all extents.
    pub fn total_stored_bytes(&self) -> u64 {
        self.phys.get(self.phys.len() - 1)
    }

    /// Total logical bytes of all extents.
    pub fn total_logical_bytes(&self) -> u64 {
        self.logi.get(self.logi.len() - 1)
    }

    /// Total fragments across the store.
    pub fn total_fragments(&self) -> u64 {
        self.total_fragments
    }

    /// Resident bytes of the dual EF directory — the number to compare
    /// against a flat directory's `16 · nblocks²` (two u64 per cell).
    pub fn index_memory_bytes(&self) -> u64 {
        self.phys.memory_bytes() + self.logi.memory_bytes()
    }

    /// The codec extents were written with.
    pub fn codec(&self) -> CodecChoice {
        self.codec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    /// Builds the raw fragment-stream bytes for one Eblock.
    fn raw_eblock(frags: &[(u32, Vec<(u32, f32)>)]) -> Vec<u8> {
        let mut raw = Vec::new();
        for (sv, edges) in frags {
            raw.extend_from_slice(&sv.to_le_bytes());
            raw.extend_from_slice(&(edges.len() as u32).to_le_bytes());
            for (d, w) in edges {
                raw.extend_from_slice(&d.to_le_bytes());
                raw.extend_from_slice(&w.to_le_bytes());
            }
        }
        raw
    }

    /// One grid cell: the fragments of a (src block, dst block) Eblock.
    type Cell = Vec<(u32, Vec<(u32, f32)>)>;

    /// A deterministic little grid: block size 4, vertex v = 4·b + k,
    /// each src vertex points at (v·7 mod 16) and its successor.
    fn grid_cells(nblocks: u32) -> Vec<Cell> {
        let n = nblocks * 4;
        let mut cells = vec![Vec::new(); (nblocks * nblocks) as usize];
        for sb in 0..nblocks {
            for k in 0..4u32 {
                let v = sb * 4 + k;
                let mut dsts = [(v * 7) % n, ((v * 7) % n + 1) % n];
                dsts.sort_unstable();
                // Group into per-destination-block fragments.
                for db in 0..nblocks {
                    let in_block: Vec<(u32, f32)> = dsts
                        .iter()
                        .filter(|&&d| d / 4 == db)
                        .map(|&d| (d, 1.5 + v as f32))
                        .collect();
                    if !in_block.is_empty() {
                        cells[(sb * nblocks + db) as usize].push((v, in_block));
                    }
                }
            }
        }
        cells
    }

    #[test]
    fn roundtrips_across_codecs_and_matches_input() {
        let nblocks = 4u32;
        let cells = grid_cells(nblocks);
        for codec in CodecChoice::ALL {
            let vfs = MemVfs::new();
            let mut w = StreamEblockWriter::create(&vfs, "stream", nblocks, codec).unwrap();
            for cell in &cells {
                let raw = raw_eblock(cell);
                w.append_eblock(&raw, cell.len() as u32).unwrap();
            }
            let s = w.finish().unwrap();
            for sb in 0..nblocks {
                for db in 0..nblocks {
                    let got = s.scan_eblock(sb, db).unwrap();
                    let want = &cells[(sb * nblocks + db) as usize];
                    assert_eq!(got.len(), want.len(), "{codec:?} g_{{{sb},{db}}}");
                    for (g, (sv, edges)) in got.iter().zip(want) {
                        assert_eq!(g.src.0, *sv);
                        let we: Vec<(u32, f32)> =
                            g.edges.iter().map(|e| (e.dst.0, e.weight)).collect();
                        assert_eq!(&we, edges);
                    }
                }
            }
            assert_eq!(
                s.total_logical_bytes(),
                cells
                    .iter()
                    .map(|c| raw_eblock(c).len() as u64)
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn wrong_cell_count_is_rejected() {
        let vfs = MemVfs::new();
        let w = StreamEblockWriter::create(&vfs, "s", 3, CodecChoice::None).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn bv_store_shrinks_physical_and_accounts_both() {
        let nblocks = 4u32;
        let cells = grid_cells(nblocks);
        let build = |codec| {
            let vfs = MemVfs::new();
            let mut w = StreamEblockWriter::create(&vfs, "s", nblocks, codec).unwrap();
            for cell in &cells {
                w.append_eblock(&raw_eblock(cell), cell.len() as u32)
                    .unwrap();
            }
            (w.finish().unwrap(), vfs)
        };
        let (bv, vfs) = build(CodecChoice::Bv);
        assert!(bv.total_stored_bytes() < bv.total_logical_bytes());
        let snap = vfs.stats().snapshot();
        assert_eq!(snap.seq_write_bytes, bv.total_stored_bytes());
        assert_eq!(snap.seq_write_logical_bytes, bv.total_logical_bytes());
        // Random per-block read accounts only that extent, both sides.
        let before = vfs.stats().snapshot();
        bv.read_eblock_raw(2, 1, AccessClass::RandRead).unwrap();
        let d = vfs.stats().snapshot().delta(&before);
        assert_eq!(d.rand_read_bytes, bv.stored_bytes(2, 1));
        assert_eq!(d.rand_read_logical_bytes, bv.logical_bytes(2, 1));
    }

    #[test]
    fn ef_directory_beats_flat_index() {
        // A sparse 64x64 grid (most cells empty) — EF's home turf.
        let nblocks = 64u32;
        let vfs = MemVfs::new();
        let mut w = StreamEblockWriter::create(&vfs, "s", nblocks, CodecChoice::Bv).unwrap();
        for sb in 0..nblocks {
            for db in 0..nblocks {
                if db == (sb * 7 + 1) % nblocks {
                    let raw = raw_eblock(&[(sb * 4, vec![(db * 4, 1.0), (db * 4 + 1, 1.0)])]);
                    w.append_eblock(&raw, 1).unwrap();
                } else {
                    w.append_eblock(&[], 0).unwrap();
                }
            }
        }
        let s = w.finish().unwrap();
        let flat = 16 * u64::from(nblocks) * u64::from(nblocks);
        assert!(
            s.index_memory_bytes() * 4 < flat,
            "ef {} vs flat {flat}",
            s.index_memory_bytes()
        );
        // Empty cells read as empty without I/O.
        let before = vfs.stats().snapshot();
        assert!(s.scan_eblock(0, 2).unwrap().is_empty());
        assert_eq!(vfs.stats().snapshot(), before);
    }
}
