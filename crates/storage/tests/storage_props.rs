//! Property-based tests for the storage substrate.

use hybridgraph_graph::{gen, BlockLayout, Partition, VertexId, WorkerId};
use hybridgraph_storage::lru::LruCache;
use hybridgraph_storage::msg_store::SpillBuffer;
use hybridgraph_storage::value_store::ValueStore;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::MemVfs;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SpillBuffer delivers exactly what was pushed, grouped by dst,
    /// regardless of capacity.
    #[test]
    fn spill_buffer_delivers_everything(
        msgs in prop::collection::vec((0u32..64, 0u32..1000), 0..300),
        capacity in 0usize..64,
    ) {
        let vfs = MemVfs::new();
        let mut buf: SpillBuffer<u32> = SpillBuffer::new(&vfs, "s", capacity).unwrap();
        for &(dst, m) in &msgs {
            buf.push(VertexId(dst), m).unwrap();
        }
        prop_assert_eq!(buf.total(), msgs.len() as u64);
        prop_assert_eq!(
            buf.spilled() as usize,
            msgs.len().saturating_sub(capacity)
        );
        let delivered = buf.drain().unwrap();
        prop_assert_eq!(delivered.len(), msgs.len());
        // Multiset equality per destination.
        let mut want: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(dst, m) in &msgs {
            want.entry(dst).or_default().push(m);
        }
        for (dst, mut vals) in want {
            let mut got: Vec<u32> = delivered
                .for_vertex(VertexId(dst))
                .iter()
                .map(|(_, m)| *m)
                .collect();
            got.sort();
            vals.sort();
            prop_assert_eq!(got, vals);
        }
    }

    /// The LRU cache agrees with a naive model on hits and never exceeds
    /// capacity; every dirty value is eventually reported exactly once.
    #[test]
    fn lru_matches_model(
        ops in prop::collection::vec((0u32..32, any::<bool>()), 1..200),
        capacity in 1usize..16,
    ) {
        let mut lru: LruCache<u32, u32> = LruCache::new(capacity);
        let mut dirty_out: Vec<u32> = Vec::new();
        // Model: recency list of keys.
        let mut recency: Vec<u32> = Vec::new();
        for (i, &(key, write)) in ops.iter().enumerate() {
            let val = i as u32;
            let modeled_hit = recency.contains(&key);
            let got_hit = if write {
                lru.get_mut(&key).map(|v| *v = val).is_some()
            } else {
                lru.get(&key).is_some()
            };
            prop_assert_eq!(got_hit, modeled_hit, "op {}", i);
            if modeled_hit {
                recency.retain(|&k| k != key);
                recency.insert(0, key);
            } else {
                if let Some((k, _, d)) = lru.insert(key, val, false) {
                    if d {
                        dirty_out.push(k);
                    }
                    let evicted = recency.pop().unwrap();
                    prop_assert_eq!(k, evicted);
                }
                recency.insert(0, key);
            }
            prop_assert!(lru.len() <= capacity);
            prop_assert_eq!(lru.len(), recency.len());
        }
    }

    /// ValueStore point/range operations agree with a plain vector.
    #[test]
    fn value_store_matches_vec(
        n in 1usize..64,
        ops in prop::collection::vec((0usize..64, -1000i64..1000), 0..100),
    ) {
        let vfs = MemVfs::new();
        let init: Vec<i64> = (0..n as i64).collect();
        let store = ValueStore::create(&vfs, "v", 0, &init).unwrap();
        let mut model = init.clone();
        for &(idx, val) in &ops {
            let idx = idx % n;
            store.write_one(VertexId(idx as u32), &val).unwrap();
            model[idx] = val;
            prop_assert_eq!(store.read_one(VertexId(idx as u32)).unwrap(), val);
        }
        prop_assert_eq!(store.read_range(0..n as u32).unwrap(), model);
    }

    /// VE-BLOCK fragments partition the edge set exactly, for arbitrary
    /// random graphs, partitions and block granularities.
    #[test]
    fn veblock_partitions_edges(
        n in 4usize..80,
        m in 1usize..400,
        t in 1usize..6,
        per in 1usize..6,
        seed in 0u64..500,
    ) {
        let g = gen::uniform(n, m, seed);
        let p = Partition::range(n, t);
        let l = BlockLayout::uniform(&p, per);
        let mut seen = 0usize;
        let mut total_frags = 0u64;
        for w in 0..t {
            let vfs = MemVfs::new();
            let s = VeBlockStore::build(&vfs, &g, &l, WorkerId::from(w)).unwrap();
            total_frags += s.total_fragments();
            for j in l.blocks_of_worker(WorkerId::from(w)) {
                for i in l.block_ids() {
                    for frag in s.scan_eblock(j, i).unwrap() {
                        prop_assert!(!frag.edges.is_empty(), "empty fragment");
                        seen += frag.edges.len();
                        // Fragment edges must exist in the graph.
                        for e in &frag.edges {
                            prop_assert!(g
                                .out_edges(frag.src)
                                .iter()
                                .any(|ge| ge.dst == e.dst));
                        }
                    }
                }
            }
        }
        prop_assert_eq!(seen, m);
        // Theorem 1 sanity: fragments bounded by edges and by vertices x V.
        prop_assert!(total_frags <= m as u64);
    }
}
