//! Randomized (seeded, reproducible) tests for the storage substrate.
//!
//! Formerly proptest-based; rewritten as plain seeded loops over a
//! [`SplitMix64`] stream so the workspace builds offline.

use hybridgraph_graph::rng::SplitMix64;
use hybridgraph_graph::{gen, BlockLayout, Partition, VertexId, WorkerId};
use hybridgraph_storage::lru::LruCache;
use hybridgraph_storage::msg_store::SpillBuffer;
use hybridgraph_storage::value_store::ValueStore;
use hybridgraph_storage::veblock::VeBlockStore;
use hybridgraph_storage::vfs::MemVfs;
use std::collections::HashMap;

/// SpillBuffer delivers exactly what was pushed, grouped by dst,
/// regardless of capacity.
#[test]
fn spill_buffer_delivers_everything() {
    let mut r = SplitMix64::new(0x5B1);
    for _ in 0..48 {
        let len = r.range_usize(0, 300);
        let msgs: Vec<(u32, u32)> = (0..len)
            .map(|_| (r.below_u32(64), r.below_u32(1000)))
            .collect();
        let capacity = r.range_usize(0, 64);
        let vfs = MemVfs::new();
        let mut buf: SpillBuffer<u32> = SpillBuffer::new(&vfs, "s", capacity).unwrap();
        for &(dst, m) in &msgs {
            buf.push(VertexId(dst), m).unwrap();
        }
        assert_eq!(buf.total(), msgs.len() as u64);
        assert_eq!(buf.spilled() as usize, msgs.len().saturating_sub(capacity));
        let delivered = buf.drain().unwrap();
        assert_eq!(delivered.len(), msgs.len());
        // Multiset equality per destination.
        let mut want: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(dst, m) in &msgs {
            want.entry(dst).or_default().push(m);
        }
        for (dst, mut vals) in want {
            let mut got: Vec<u32> = delivered
                .for_vertex(VertexId(dst))
                .iter()
                .map(|(_, m)| *m)
                .collect();
            got.sort();
            vals.sort();
            assert_eq!(got, vals);
        }
    }
}

/// The LRU cache agrees with a naive model on hits and never exceeds
/// capacity; every dirty value is eventually reported exactly once.
#[test]
fn lru_matches_model() {
    let mut r = SplitMix64::new(0x12C);
    for _ in 0..48 {
        let n_ops = r.range_usize(1, 200);
        let ops: Vec<(u32, bool)> = (0..n_ops)
            .map(|_| (r.below_u32(32), r.next_bool()))
            .collect();
        let capacity = r.range_usize(1, 16);
        let mut lru: LruCache<u32, u32> = LruCache::new(capacity);
        let mut dirty_out: Vec<u32> = Vec::new();
        // Model: recency list of keys.
        let mut recency: Vec<u32> = Vec::new();
        for (i, &(key, write)) in ops.iter().enumerate() {
            let val = i as u32;
            let modeled_hit = recency.contains(&key);
            let got_hit = if write {
                lru.get_mut(&key).map(|v| *v = val).is_some()
            } else {
                lru.get(&key).is_some()
            };
            assert_eq!(got_hit, modeled_hit, "op {}", i);
            if modeled_hit {
                recency.retain(|&k| k != key);
                recency.insert(0, key);
            } else {
                if let Some((k, _, d)) = lru.insert(key, val, false) {
                    if d {
                        dirty_out.push(k);
                    }
                    let evicted = recency.pop().unwrap();
                    assert_eq!(k, evicted);
                }
                recency.insert(0, key);
            }
            assert!(lru.len() <= capacity);
            assert_eq!(lru.len(), recency.len());
        }
    }
}

/// ValueStore point/range operations agree with a plain vector.
#[test]
fn value_store_matches_vec() {
    let mut r = SplitMix64::new(0x7A1E);
    for _ in 0..48 {
        let n = r.range_usize(1, 64);
        let n_ops = r.range_usize(0, 100);
        let vfs = MemVfs::new();
        let init: Vec<i64> = (0..n as i64).collect();
        let store = ValueStore::create(&vfs, "v", 0, &init).unwrap();
        let mut model = init.clone();
        for _ in 0..n_ops {
            let idx = r.range_usize(0, 64) % n;
            let val = r.range_i64_inclusive(-1000, 1000);
            store.write_one(VertexId(idx as u32), &val).unwrap();
            model[idx] = val;
            assert_eq!(store.read_one(VertexId(idx as u32)).unwrap(), val);
        }
        assert_eq!(store.read_range(0..n as u32).unwrap(), model);
    }
}

/// VE-BLOCK fragments partition the edge set exactly, for arbitrary
/// random graphs, partitions and block granularities.
#[test]
fn veblock_partitions_edges() {
    let mut r = SplitMix64::new(0xEB10);
    for _ in 0..32 {
        let n = r.range_usize(4, 80);
        let m = r.range_usize(1, 400);
        let t = r.range_usize(1, 6);
        let per = r.range_usize(1, 6);
        let seed = r.next_u64() % 500;
        let g = gen::uniform(n, m, seed);
        let p = Partition::range(n, t);
        let l = BlockLayout::uniform(&p, per);
        let mut seen = 0usize;
        let mut total_frags = 0u64;
        for w in 0..t {
            let vfs = MemVfs::new();
            let s = VeBlockStore::build(&vfs, &g, &l, WorkerId::from(w)).unwrap();
            total_frags += s.total_fragments();
            for j in l.blocks_of_worker(WorkerId::from(w)) {
                for i in l.block_ids() {
                    for frag in s.scan_eblock(j, i).unwrap() {
                        assert!(!frag.edges.is_empty(), "empty fragment");
                        seen += frag.edges.len();
                        // Fragment edges must exist in the graph.
                        for e in &frag.edges {
                            assert!(g.out_edges(frag.src).iter().any(|ge| ge.dst == e.dst));
                        }
                    }
                }
            }
        }
        assert_eq!(seen, m);
        // Theorem 1 sanity: fragments bounded by edges and by vertices x V.
        assert!(total_frags <= m as u64);
    }
}
