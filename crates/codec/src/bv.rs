//! BV-style (WebGraph) adjacency compression: reference-chain
//! copy-lists, interval coding and ζ-coded residual gaps, all on the
//! MSB-first bit streams from [`crate::bits`].
//!
//! Where [`crate::gaps`] spends ≥8 bits per gap (byte-aligned varints),
//! this tier spends a few *bits*: a repeated neighbour list collapses to
//! a copy-reference, a run of consecutive ids to one interval, and the
//! leftover gaps to ζ₃ codes sized for power-law graphs. References
//! point at one of the previous [`REF_WINDOW`] lists *within the same
//! extent*, never across extents, so a VE-BLOCK per-block read stays
//! self-contained — b-pull can decode any eblock in isolation, which is
//! exactly the property the paper's per-block I/O model assumes.
//!
//! Encoding is strict about its structural assumption: neighbour lists
//! must be non-decreasing (HybridGraph's stores are dst-sorted). A
//! non-monotone list returns an error and [`crate::encode_extent`]
//! falls back to raw framing, mirroring how gap coding treats
//! structurally alien bytes. Duplicate neighbours (multigraph edges)
//! are legal: weights ride a positional column over the final sorted
//! sequence, so reconstruction is byte-exact.

use crate::bits::{BitReader, BitWriter};
use crate::gaps::parse_raw_fragments;
use crate::varint::{read_u64, write_u64};
use crate::CodecError;

/// How many previous lists inside the extent a copy-reference may reach
/// back. Chains are bounded by the extent, so decode state is at most
/// this many lists.
pub const REF_WINDOW: usize = 7;

/// Minimum run length promoted to an interval (WebGraph's default).
pub const MIN_INTERVAL: u32 = 4;

/// ζ shard width for residual gaps (WebGraph's default for web graphs).
pub const ZETA_K: u32 = 3;

// ------------------------------------------------------------- planning
//
// Each list is first decomposed into a `ListPlan` (reference choice,
// copy blocks, intervals, residuals); the plan knows its exact bit cost,
// so reference selection compares candidates without writing anything,
// and the chosen plan is then replayed into the writer. Cost helpers
// must stay in lockstep with `bits::BitWriter` — `tests::cost_helpers_
// match_writer` enforces it.

fn len_unary(n: u64) -> u64 {
    n + 1
}

fn len_gamma(n: u64) -> u64 {
    let b = u64::from(64 - (n + 1).leading_zeros()) - 1;
    2 * b + 1
}

fn len_delta(n: u64) -> u64 {
    let b = u64::from(64 - (n + 1).leading_zeros()) - 1;
    len_gamma(b) + b
}

fn len_minimal_binary(x: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let s = u64::from(64 - (m - 1).leading_zeros());
    let thresh = (1u64 << (s - 1)).wrapping_mul(2).wrapping_sub(m);
    if x < thresh {
        s - 1
    } else {
        s
    }
}

fn len_zeta(n: u64, k: u32) -> u64 {
    let v = n + 1;
    let h = (63 - v.leading_zeros()) / k;
    let base = 1u64 << (h * k);
    let span = if (h + 1) * k >= 64 {
        u64::MAX - base + 1
    } else {
        (base << k) - base
    };
    len_unary(u64::from(h)) + len_minimal_binary(v - base, span)
}

/// Zigzag-folds a signed difference for δ coding (first interval left /
/// first residual are coded relative to the extent anchor, which may sit
/// on either side).
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Cost of a list's leading value: absolute without an anchor, zigzag
/// delta against the previous list's first id otherwise. Lists in one
/// extent share a destination block, so the delta is block-span-sized
/// while the absolute id is graph-sized.
fn len_first(x: u32, anchor: Option<u32>) -> u64 {
    match anchor {
        None => len_delta(u64::from(x)),
        Some(a) => len_delta(zigzag(i64::from(x) - i64::from(a))),
    }
}

fn write_first(w: &mut BitWriter, x: u32, anchor: Option<u32>) {
    match anchor {
        None => w.write_delta(u64::from(x)),
        Some(a) => w.write_delta(zigzag(i64::from(x) - i64::from(a))),
    }
}

fn read_first(r: &mut BitReader<'_>, anchor: Option<u32>) -> Result<u32, CodecError> {
    let z = r.read_delta()?;
    let v = match anchor {
        None => i128::from(z),
        Some(a) => i128::from(a) + i128::from(unzigzag(z)),
    };
    u32::try_from(v).map_err(|_| CodecError::Corrupt("bv first id out of range"))
}

/// The structural decomposition of one neighbour list.
struct ListPlan {
    /// 0 = no reference; `r` = copy against the list `r` positions back.
    r: u64,
    /// Explicit copy-block lengths over the reference list (first block
    /// is "copied" and may be empty; the trailing block is implicit).
    blocks: Vec<u64>,
    /// `(left, len)` runs of consecutive ids, `len >= MIN_INTERVAL`.
    intervals: Vec<(u32, u32)>,
    /// Leftover ids, non-decreasing (duplicates allowed).
    residuals: Vec<u32>,
}

/// Splits `extras` (sorted) into intervals and residuals.
fn split_intervals(extras: &[u32]) -> (Vec<(u32, u32)>, Vec<u32>) {
    let mut intervals = Vec::new();
    let mut residuals = Vec::new();
    let mut i = 0usize;
    while i < extras.len() {
        let mut j = i + 1;
        while j < extras.len() && extras[j] == extras[j - 1] + 1 {
            j += 1;
        }
        let len = (j - i) as u32;
        if len >= MIN_INTERVAL {
            intervals.push((extras[i], len));
        } else {
            residuals.extend_from_slice(&extras[i..j]);
        }
        i = j;
    }
    (intervals, residuals)
}

/// Builds the plan for `cur` against an optional reference list.
fn plan_list(cur: &[u32], reference: Option<&[u32]>, r: u64) -> ListPlan {
    let (blocks, extras) = match reference {
        None => (Vec::new(), cur.to_vec()),
        Some(rl) => {
            // Two-pointer multiset intersection: which reference
            // positions are copied into `cur`.
            let mut copied = vec![false; rl.len()];
            let mut extras = Vec::new();
            let mut j = 0usize;
            for &v in cur {
                while j < rl.len() && rl[j] < v {
                    j += 1;
                }
                if j < rl.len() && rl[j] == v {
                    copied[j] = true;
                    j += 1;
                } else {
                    extras.push(v);
                }
            }
            // Run-length the copied bitmap into alternating blocks
            // starting with "copied"; the final run is implicit.
            let mut runs: Vec<u64> = Vec::new();
            let mut parity = true; // first block is copied
            if let Some(&first) = copied.first() {
                if first != parity {
                    runs.push(0);
                    parity = false;
                }
                let mut len = 0u64;
                for &c in &copied {
                    if c == parity {
                        len += 1;
                    } else {
                        runs.push(len);
                        parity = c;
                        len = 1;
                    }
                }
                runs.push(len);
                runs.pop(); // trailing block is implied by the ref length
            }
            (runs, extras)
        }
    };
    let (intervals, residuals) = split_intervals(&extras);
    ListPlan {
        r,
        blocks,
        intervals,
        residuals,
    }
}

/// Exact bit cost of writing this plan for a list of `n` ids against
/// `anchor`. Empty lists cost nothing; lists shorter than
/// [`MIN_INTERVAL`] omit the interval-count field (they cannot contain
/// an interval).
fn plan_cost(p: &ListPlan, n: usize, anchor: Option<u32>) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut bits = len_gamma(p.r);
    if p.r > 0 {
        bits += len_gamma(p.blocks.len() as u64);
        for (i, &b) in p.blocks.iter().enumerate() {
            bits += len_gamma(if i == 0 { b } else { b - 1 });
        }
    }
    if n >= MIN_INTERVAL as usize {
        bits += len_gamma(p.intervals.len() as u64);
    }
    let mut prev_left = 0u64;
    for (i, &(left, len)) in p.intervals.iter().enumerate() {
        bits += if i == 0 {
            len_first(left, anchor)
        } else {
            len_delta(u64::from(left) - prev_left - 1)
        };
        bits += len_gamma(u64::from(len - MIN_INTERVAL));
        prev_left = u64::from(left);
    }
    if let Some((&first, rest)) = p.residuals.split_first() {
        bits += len_first(first, anchor);
        let mut prev = first;
        for &v in rest {
            bits += len_zeta(u64::from(v - prev), ZETA_K);
            prev = v;
        }
    }
    bits
}

fn write_plan(w: &mut BitWriter, p: &ListPlan, n: usize, anchor: Option<u32>) {
    if n == 0 {
        return;
    }
    w.write_gamma(p.r);
    if p.r > 0 {
        w.write_gamma(p.blocks.len() as u64);
        for (i, &b) in p.blocks.iter().enumerate() {
            w.write_gamma(if i == 0 { b } else { b - 1 });
        }
    }
    if n >= MIN_INTERVAL as usize {
        w.write_gamma(p.intervals.len() as u64);
    }
    let mut prev_left = 0u64;
    for (i, &(left, len)) in p.intervals.iter().enumerate() {
        if i == 0 {
            write_first(w, left, anchor);
        } else {
            w.write_delta(u64::from(left) - prev_left - 1);
        }
        w.write_gamma(u64::from(len - MIN_INTERVAL));
        prev_left = u64::from(left);
    }
    if let Some((&first, rest)) = p.residuals.split_first() {
        write_first(w, first, anchor);
        let mut prev = first;
        for &v in rest {
            w.write_zeta(u64::from(v - prev), ZETA_K);
            prev = v;
        }
    }
}

/// Encodes `cur` into `w`, choosing the cheapest reference among "no
/// reference" and the window of previously encoded lists (most recent
/// first candidate). Ties keep the smallest `r`, so output is
/// deterministic. `cur` must be non-decreasing (checked by callers);
/// `anchor` is the first id of the extent's previous non-empty list.
fn write_list(w: &mut BitWriter, cur: &[u32], window: &[Vec<u32>], anchor: Option<u32>) {
    let mut best = plan_list(cur, None, 0);
    let mut best_cost = plan_cost(&best, cur.len(), anchor);
    let reach = window.len().min(REF_WINDOW);
    for r in 1..=reach {
        let rl = &window[window.len() - r];
        if rl.is_empty() {
            continue;
        }
        let cand = plan_list(cur, Some(rl), r as u64);
        let cost = plan_cost(&cand, cur.len(), anchor);
        if cost < best_cost {
            best = cand;
            best_cost = cost;
        }
    }
    write_plan(w, &best, cur.len(), anchor);
}

/// Decodes one list of `count` ids written by [`write_list`].
fn read_list(
    r: &mut BitReader<'_>,
    count: usize,
    window: &[Vec<u32>],
    anchor: Option<u32>,
) -> Result<Vec<u32>, CodecError> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let rref = r.read_gamma()?;
    let copied: Vec<u32> = if rref == 0 {
        Vec::new()
    } else {
        let back = usize::try_from(rref).map_err(|_| CodecError::Corrupt("bv ref too far"))?;
        if back > window.len() || back > REF_WINDOW {
            return Err(CodecError::Corrupt("bv ref outside window"));
        }
        let rl = &window[window.len() - back];
        let nblocks = r.read_gamma()? as usize;
        if nblocks > rl.len() + 1 {
            return Err(CodecError::Corrupt("bv copy blocks exceed reference"));
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut parity = true;
        for i in 0..nblocks {
            let raw = r.read_gamma()?;
            let len = if i == 0 { raw } else { raw + 1 } as usize;
            if pos + len > rl.len() {
                return Err(CodecError::Corrupt("bv copy block overruns reference"));
            }
            if parity {
                out.extend_from_slice(&rl[pos..pos + len]);
            }
            pos += len;
            parity = !parity;
        }
        if parity {
            out.extend_from_slice(&rl[pos..]);
        }
        out
    };
    if copied.len() > count {
        return Err(CodecError::Corrupt("bv copied more than list length"));
    }
    let nintervals = if count >= MIN_INTERVAL as usize {
        r.read_gamma()? as usize
    } else {
        // A shorter list cannot contain a MIN_INTERVAL-length run, so
        // the field is omitted from the stream entirely.
        0
    };
    if nintervals > count {
        return Err(CodecError::Corrupt("bv interval count exceeds list"));
    }
    let mut intervals = Vec::with_capacity(nintervals);
    let mut extra_total = 0usize;
    let mut prev_left = 0u64;
    for i in 0..nintervals {
        let left = if i == 0 {
            u64::from(read_first(r, anchor)?)
        } else {
            prev_left + 1 + r.read_delta()?
        };
        let len = r.read_gamma()? + u64::from(MIN_INTERVAL);
        let left32 =
            u32::try_from(left).map_err(|_| CodecError::Corrupt("bv interval left overflow"))?;
        let len32 =
            u32::try_from(len).map_err(|_| CodecError::Corrupt("bv interval len overflow"))?;
        if u64::from(left32) + u64::from(len32) > u64::from(u32::MAX) + 1 {
            return Err(CodecError::Corrupt("bv interval end overflow"));
        }
        extra_total += len32 as usize;
        intervals.push((left32, len32));
        prev_left = left;
    }
    let nresiduals = count
        .checked_sub(copied.len())
        .and_then(|x| x.checked_sub(extra_total))
        .ok_or(CodecError::Corrupt("bv list pieces exceed count"))?;
    let mut residuals = Vec::with_capacity(nresiduals.min(1 << 20));
    if nresiduals > 0 {
        let mut prev = read_first(r, anchor)?;
        residuals.push(prev);
        for _ in 1..nresiduals {
            let gap = r.read_zeta(ZETA_K)?;
            let v = u64::from(prev) + gap;
            let v32 = u32::try_from(v).map_err(|_| CodecError::Corrupt("bv residual overflow"))?;
            residuals.push(v32);
            prev = v32;
        }
    }
    // Three-way merge of the sorted pieces back into the sorted list.
    let mut out = Vec::with_capacity(count);
    let mut ci = 0usize;
    let mut ri = 0usize;
    let mut ii = 0usize; // interval index
    let mut ioff = 0u32; // offset within current interval
    loop {
        let cv = copied.get(ci).copied();
        let rv = residuals.get(ri).copied();
        let iv = intervals.get(ii).map(|&(l, _)| l + ioff);
        let min = [cv, rv, iv].into_iter().flatten().min();
        let Some(m) = min else { break };
        if cv == Some(m) {
            out.push(m);
            ci += 1;
        } else if iv == Some(m) {
            out.push(m);
            ioff += 1;
            if ioff == intervals[ii].1 {
                ii += 1;
                ioff = 0;
            }
        } else {
            out.push(m);
            ri += 1;
        }
    }
    if out.len() != count {
        return Err(CodecError::Corrupt("bv list length mismatch"));
    }
    Ok(out)
}

// -------------------------------------------------------- weight column

/// Bit-packs the weight column: 32-bit min, 6-bit width, then `width`
/// bits per value — the in-stream analogue of [`crate::gaps::write_packed`].
fn write_weights(w: &mut BitWriter, vals: &[u32]) {
    if vals.is_empty() {
        return;
    }
    let min = *vals.iter().min().expect("non-empty");
    let max = *vals.iter().max().expect("non-empty");
    let range = max - min;
    let width = if range == 0 {
        0
    } else {
        32 - range.leading_zeros()
    };
    w.write_bits(u64::from(min), 32);
    w.write_bits(u64::from(width), 6);
    for &v in vals {
        w.write_bits(u64::from(v - min), width);
    }
}

fn read_weights(r: &mut BitReader<'_>, count: usize) -> Result<Vec<u32>, CodecError> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let min = r.read_bits(32)? as u32;
    let width = r.read_bits(6)? as u32;
    if width > 32 {
        return Err(CodecError::Corrupt("bv weight width > 32"));
    }
    let mut vals = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = r.read_bits(width)? as u32;
        let v = min
            .checked_add(delta)
            .ok_or(CodecError::Corrupt("bv weight overflows u32"))?;
        vals.push(v);
    }
    Ok(vals)
}

// ------------------------------------------------------- fragment bodies

fn require_sorted(ids: &[u32]) -> Result<(), CodecError> {
    if ids.windows(2).any(|p| p[0] > p[1]) {
        return Err(CodecError::Corrupt("bv requires non-decreasing ids"));
    }
    Ok(())
}

/// BV-codes a raw fragment stream (`svertex u32 | count u32 | count ×
/// (id u32, w f32)` repeated). Layout: `nfrags` varint, then one bit
/// stream — δ-coded strictly-ascending svertices, γ counts, one
/// [`write_list`] body per fragment (reference window = previous lists
/// of this extent; each list's leading id is zigzag-δ-coded against the
/// previous non-empty list's first id, since all lists in an extent
/// share one destination block), and the packed weight column over all
/// edges.
pub fn fragments_from_raw(raw: &[u8]) -> Result<Vec<u8>, CodecError> {
    let f = parse_raw_fragments(raw)?;
    if f.svertices.windows(2).any(|p| p[0] >= p[1]) {
        return Err(CodecError::Corrupt("bv requires ascending svertices"));
    }
    let mut out = Vec::with_capacity(raw.len() / 4 + 16);
    write_u64(&mut out, f.svertices.len() as u64);
    let mut w = BitWriter::new();
    let mut prev = 0u64;
    for (i, &sv) in f.svertices.iter().enumerate() {
        if i == 0 {
            w.write_delta(u64::from(sv));
        } else {
            w.write_delta(u64::from(sv) - prev - 1);
        }
        prev = u64::from(sv);
    }
    for &c in &f.counts {
        w.write_gamma(u64::from(c));
    }
    let mut window: Vec<Vec<u32>> = Vec::with_capacity(f.counts.len());
    let mut anchor: Option<u32> = None;
    let mut base = 0usize;
    for &c in &f.counts {
        let cur = &f.ids[base..base + c as usize];
        require_sorted(cur)?;
        write_list(&mut w, cur, &window, anchor);
        if let Some(&first) = cur.first() {
            anchor = Some(first);
        }
        window.push(cur.to_vec());
        base += c as usize;
    }
    write_weights(&mut w, &f.weights);
    out.extend(w.finish());
    Ok(out)
}

/// Inverse of [`fragments_from_raw`].
pub fn raw_from_fragments(coded: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let nfrags = read_u64(coded, &mut pos)? as usize;
    let mut r = BitReader::new(&coded[pos..]);
    let mut svertices = Vec::with_capacity(nfrags.min(1 << 20));
    let mut prev = 0u64;
    for i in 0..nfrags {
        let sv = if i == 0 {
            r.read_delta()?
        } else {
            prev + 1 + r.read_delta()?
        };
        u32::try_from(sv).map_err(|_| CodecError::Corrupt("bv svertex overflow"))?;
        svertices.push(sv as u32);
        prev = sv;
    }
    let mut counts = Vec::with_capacity(nfrags.min(1 << 20));
    let mut total_edges = 0usize;
    for _ in 0..nfrags {
        let c =
            u32::try_from(r.read_gamma()?).map_err(|_| CodecError::Corrupt("bv count overflow"))?;
        total_edges = total_edges
            .checked_add(c as usize)
            .ok_or(CodecError::Corrupt("bv edge total overflows"))?;
        counts.push(c);
    }
    let mut window: Vec<Vec<u32>> = Vec::with_capacity(nfrags.min(1 << 20));
    let mut anchor: Option<u32> = None;
    for &c in &counts {
        let list = read_list(&mut r, c as usize, &window, anchor)?;
        if let Some(&first) = list.first() {
            anchor = Some(first);
        }
        window.push(list);
    }
    let weights = read_weights(&mut r, total_edges)?;
    let mut raw = Vec::with_capacity(nfrags * 8 + total_edges * 8);
    let mut base = 0usize;
    for i in 0..nfrags {
        raw.extend_from_slice(&svertices[i].to_le_bytes());
        raw.extend_from_slice(&counts[i].to_le_bytes());
        let ids = &window[i];
        for e in 0..counts[i] as usize {
            raw.extend_from_slice(&ids[e].to_le_bytes());
            raw.extend_from_slice(&weights[base + e].to_le_bytes());
        }
        base += counts[i] as usize;
    }
    Ok(raw)
}

/// BV-codes a bare edge list (`id u32 | w f32` pairs): `count` varint,
/// then one bit stream with a single referenceless list body and the
/// packed weight column.
pub fn edges_from_raw(raw: &[u8]) -> Result<Vec<u8>, CodecError> {
    if !raw.len().is_multiple_of(8) {
        return Err(CodecError::Corrupt("edge list not a multiple of 8 bytes"));
    }
    let count = raw.len() / 8;
    let mut ids = Vec::with_capacity(count);
    let mut weights = Vec::with_capacity(count);
    for e in raw.chunks_exact(8) {
        ids.push(u32::from_le_bytes(e[..4].try_into().expect("width")));
        weights.push(u32::from_le_bytes(e[4..].try_into().expect("width")));
    }
    require_sorted(&ids)?;
    let mut out = Vec::with_capacity(raw.len() / 4 + 8);
    write_u64(&mut out, count as u64);
    let mut w = BitWriter::new();
    write_list(&mut w, &ids, &[], None);
    write_weights(&mut w, &weights);
    out.extend(w.finish());
    Ok(out)
}

/// Inverse of [`edges_from_raw`].
pub fn raw_from_edges(coded: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let count = read_u64(coded, &mut pos)? as usize;
    let mut r = BitReader::new(&coded[pos..]);
    let ids = read_list(&mut r, count, &[], None)?;
    let weights = read_weights(&mut r, count)?;
    let mut raw = Vec::with_capacity(count * 8);
    for i in 0..count {
        raw.extend_from_slice(&ids[i].to_le_bytes());
        raw.extend_from_slice(&weights[i].to_le_bytes());
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn raw_fragment_stream(frags: &[(u32, Vec<(u32, f32)>)]) -> Vec<u8> {
        let mut raw = Vec::new();
        for (sv, edges) in frags {
            raw.extend_from_slice(&sv.to_le_bytes());
            raw.extend_from_slice(&(edges.len() as u32).to_le_bytes());
            for (d, w) in edges {
                raw.extend_from_slice(&d.to_le_bytes());
                raw.extend_from_slice(&w.to_le_bytes());
            }
        }
        raw
    }

    #[test]
    fn cost_helpers_match_writer() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 4095, 1 << 20, (1 << 40) + 13] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            assert_eq!(w.bit_len(), len_gamma(v), "gamma {v}");
            let mut w = BitWriter::new();
            w.write_delta(v);
            assert_eq!(w.bit_len(), len_delta(v), "delta {v}");
            let mut w = BitWriter::new();
            w.write_zeta(v, ZETA_K);
            assert_eq!(w.bit_len(), len_zeta(v, ZETA_K), "zeta {v}");
        }
        for m in 1..=80u64 {
            for x in 0..m {
                let mut w = BitWriter::new();
                w.write_minimal_binary(x, m);
                assert_eq!(w.bit_len(), len_minimal_binary(x, m), "mb {x}/{m}");
            }
        }
    }

    #[test]
    fn zigzag_folds_roundtrip() {
        for d in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(d)), d, "{d}");
        }
        // Anchored leading ids are cheap in both directions.
        assert!(len_first(1005, Some(1000)) < len_first(1005, None));
        assert!(len_first(995, Some(1000)) < len_first(995, None));
    }

    #[test]
    fn empty_inputs_roundtrip() {
        let coded = fragments_from_raw(&[]).unwrap();
        assert_eq!(raw_from_fragments(&coded).unwrap(), Vec::<u8>::new());
        let coded = edges_from_raw(&[]).unwrap();
        assert_eq!(raw_from_edges(&coded).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fragment_stream_roundtrips_with_duplicates_and_empties() {
        let raw = raw_fragment_stream(&[
            (5, vec![(7, 1.0), (7, 2.5), (8, 1.0), (9, 1.0), (10, 1.0)]),
            (6, vec![]),
            // Same list as frag 0 minus one id: a copy-reference case.
            (9, vec![(7, 3.0), (8, 1.0), (9, 1.0), (10, 1.0)]),
            (40, vec![(0, -0.0), (0, f32::NAN), (1000, 2.0)]),
        ]);
        let coded = fragments_from_raw(&raw).unwrap();
        assert_eq!(raw_from_fragments(&coded).unwrap(), raw);
    }

    #[test]
    fn intervals_collapse_consecutive_runs() {
        // 0..1000 consecutive: one interval, a handful of bytes.
        let edges: Vec<(u32, f32)> = (0..1000).map(|i| (i, 1.0)).collect();
        let raw = raw_fragment_stream(&[(3, edges)]);
        let coded = fragments_from_raw(&raw).unwrap();
        assert!(coded.len() < 24, "interval coding failed: {}", coded.len());
        assert_eq!(raw_from_fragments(&coded).unwrap(), raw);
    }

    #[test]
    fn references_collapse_repeated_lists() {
        // 8 fragments sharing one 64-id list: refs make repeats ~free.
        let ids: Vec<u32> = (0..64).map(|i| 10 + 17 * i).collect();
        let frags: Vec<(u32, Vec<(u32, f32)>)> = (0..8)
            .map(|f| (f * 3, ids.iter().map(|&d| (d, 1.0f32)).collect()))
            .collect();
        let raw = raw_fragment_stream(&frags);
        let coded = fragments_from_raw(&raw).unwrap();
        let single = fragments_from_raw(&raw_fragment_stream(&frags[..1])).unwrap();
        assert!(
            coded.len() < single.len() * 2,
            "8 copies cost {} vs one {}",
            coded.len(),
            single.len()
        );
        assert_eq!(raw_from_fragments(&coded).unwrap(), raw);
    }

    #[test]
    fn beats_gap_coding_on_clustered_lists() {
        // Localized power-law-ish gaps: the workload the tier exists for.
        let mut s = 99u64;
        let mut frags = Vec::new();
        for f in 0..24u32 {
            let mut ids = Vec::new();
            let mut cur = 1000 * f;
            for i in 0..40 {
                s = mix(s ^ u64::from(f * 64 + i));
                cur += 1 + (s % 4) as u32;
                ids.push(cur);
            }
            frags.push((f * 7, ids.into_iter().map(|d| (d, 1.0f32)).collect()));
        }
        let raw = raw_fragment_stream(&frags);
        let bv = fragments_from_raw(&raw).unwrap();
        let gaps = crate::gaps::fragments_from_raw(&raw).unwrap();
        assert!(
            bv.len() * 10 < gaps.len() * 9,
            "bv {} not >=10% under gaps {}",
            bv.len(),
            gaps.len()
        );
        assert_eq!(raw_from_fragments(&bv).unwrap(), raw);
    }

    #[test]
    fn non_monotone_input_is_rejected_not_mangled() {
        let raw = raw_fragment_stream(&[(1, vec![(9, 1.0), (3, 1.0)])]);
        assert!(fragments_from_raw(&raw).is_err());
        let mut raw = Vec::new();
        raw.extend_from_slice(&9u32.to_le_bytes());
        raw.extend_from_slice(&1.0f32.to_le_bytes());
        raw.extend_from_slice(&3u32.to_le_bytes());
        raw.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(edges_from_raw(&raw).is_err());
        // Non-ascending svertices too (duplicate fragment keys).
        let raw = raw_fragment_stream(&[(5, vec![]), (5, vec![])]);
        assert!(fragments_from_raw(&raw).is_err());
    }

    #[test]
    fn seeded_roundtrip_stress() {
        for seed in [3u64, 1776, 0xfeed_f00d] {
            println!("bv stress seed {seed}");
            let mut s = seed;
            for case in 0..60 {
                let nfrags = (mix(s ^ case) % 12) as usize;
                let mut frags = Vec::new();
                let mut sv = 0u32;
                for f in 0..nfrags {
                    s = mix(s ^ (case << 8) ^ f as u64);
                    sv += 1 + (s % 50) as u32;
                    let count = (s >> 8) % 70;
                    let mut ids = Vec::new();
                    let mut cur = (s >> 16) as u32 % 10_000;
                    for e in 0..count {
                        s = mix(s ^ e);
                        // Mix of duplicates (gap 0), consecutive runs
                        // (gap 1) and jumps.
                        cur += match s % 5 {
                            0 => 0,
                            1..=3 => 1,
                            _ => (s >> 8) as u32 % 1000,
                        };
                        ids.push(cur);
                    }
                    let edges = ids
                        .into_iter()
                        .map(|d| {
                            s = mix(s ^ u64::from(d));
                            (d, f32::from_bits(s as u32))
                        })
                        .collect();
                    frags.push((sv, edges));
                }
                let raw = raw_fragment_stream(&frags);
                let coded = fragments_from_raw(&raw).unwrap();
                assert_eq!(
                    raw_from_fragments(&coded).unwrap(),
                    raw,
                    "seed {seed} case {case}"
                );
            }
        }
    }

    #[test]
    fn seeded_decoder_fuzz_never_panics() {
        // Mirror of the gateway decoder fuzz: random bytes and mutated
        // valid bodies must error or round-trip, never panic/overflow.
        for seed in [3u64, 1776, 0xfeed_f00d] {
            println!("bv fuzz seed {seed}");
            let mut s = seed;
            for case in 0..400u64 {
                s = mix(s ^ case);
                let len = (s % 200) as usize;
                let mut buf = Vec::with_capacity(len);
                for i in 0..len {
                    s = mix(s ^ i as u64);
                    buf.push(s as u8);
                }
                let _ = raw_from_fragments(&buf);
                let _ = raw_from_edges(&buf);
            }
            // Bit-flip a valid body at every position.
            let raw = raw_fragment_stream(&[
                (1, vec![(5, 1.0), (6, 1.0), (7, 1.0), (8, 1.0), (20, 2.0)]),
                (4, vec![(5, 1.0), (6, 1.0), (8, 1.0)]),
            ]);
            let coded = fragments_from_raw(&raw).unwrap();
            for bit in 0..coded.len() * 8 {
                let mut m = coded.clone();
                m[bit / 8] ^= 1 << (bit % 8);
                if let Ok(back) = raw_from_fragments(&m) {
                    // A surviving decode must still be self-consistent.
                    let _ = fragments_from_raw(&back);
                }
            }
            for cut in 0..coded.len() {
                assert!(raw_from_fragments(&coded[..cut]).is_err());
            }
        }
    }
}
