//! LEB128 variable-length integers and zig-zag signed mapping.
//!
//! The varint is the little-endian base-128 encoding (7 payload bits per
//! byte, high bit = continuation): small values — the common case for
//! delta-gap coded neighbour ids — take one byte, `u64::MAX` takes ten.

use crate::CodecError;

/// Appends `v` as a LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it past the encoding.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Maps a signed delta to an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v, "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn u64_max_is_ten_bytes() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf[9], 0x01);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.truncate(1); // continuation bit set, next byte missing
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn overlong_encoding_errors() {
        // Eleven continuation bytes cannot be a u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
        // Ten bytes whose top byte carries more than one bit overflows too.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
