//! # hybridgraph-codec
//!
//! Deterministic compression for HybridGraph's on-disk structures.
//!
//! The paper's whole analysis (Eqs. 4–11, the `Q_t` switch metric) is in
//! *bytes per I/O class*, so shrinking on-device bytes is the most direct
//! lever on modeled runtime. This crate provides the codecs; the storage
//! crate decides where to apply them and accounts the result as *logical*
//! (uncompressed) vs *physical* (on-device) bytes.
//!
//! Two codec families:
//!
//! * [`gaps`] — structure-aware: zig-zag delta-gap coding for sorted
//!   neighbour-id lists (WebGraph-style) plus bit-packed weight columns.
//!   Applied to VE-BLOCK eblocks, adjacency runs, and gather fragments.
//! * [`block`] — general-purpose bytes: run-length encoding plus a fixed
//!   greedy LZ pass. Applied to checkpoint bodies, message spill chunks,
//!   and msg-log segments.
//!
//! Everything is deterministic (no RNG, no timestamps) and every coded
//! extent can fall back to raw bytes via a leading tag, so incompressible
//! data never blows up. [`CodecChoice::None`] is special: stores bypass
//! this crate entirely and their on-disk bytes stay byte-for-byte what
//! they were before compression existed.

pub mod bits;
pub mod block;
pub mod bv;
pub mod ef;
pub mod gaps;
pub mod varint;

use std::fmt;
use std::str::FromStr;

/// Errors from decoding corrupted or truncated coded bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended inside an encoding.
    Truncated,
    /// Structurally invalid input.
    Corrupt(&'static str),
    /// Decoded length disagrees with the recorded logical length.
    LengthMismatch { expected: usize, got: usize },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "coded input truncated"),
            CodecError::Corrupt(why) => write!(f, "coded input corrupt: {why}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "decoded {got} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Which codec a job applies to its disk-resident structures.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum CodecChoice {
    /// No codec anywhere: on-disk bytes and every I/O counter are
    /// byte-for-byte identical to a build without compression.
    #[default]
    None,
    /// Delta-gap + bit-packed coding for adjacency-structured data;
    /// blob structures (spills, checkpoints, msg logs) stay raw.
    Gaps,
    /// The general RLE+LZ byte codec everywhere.
    Block,
    /// WebGraph-class BV tier: reference-chain copy-lists, interval
    /// coding and ζ residual gaps for adjacency data (format v3); blobs
    /// get the block codec. Falls back to raw per extent when the BV
    /// structural assumptions don't hold.
    Bv,
    /// Per extent, the smallest of raw / gaps / block.
    Auto,
}

impl CodecChoice {
    /// All choices, for sweeps.
    pub const ALL: [CodecChoice; 5] = [
        CodecChoice::None,
        CodecChoice::Gaps,
        CodecChoice::Block,
        CodecChoice::Bv,
        CodecChoice::Auto,
    ];

    /// Stable lowercase name (CLI value and metric label).
    pub fn label(self) -> &'static str {
        match self {
            CodecChoice::None => "none",
            CodecChoice::Gaps => "gaps",
            CodecChoice::Block => "block",
            CodecChoice::Bv => "bv",
            CodecChoice::Auto => "auto",
        }
    }

    /// True if stores should bypass coding entirely.
    pub fn is_none(self) -> bool {
        self == CodecChoice::None
    }
}

impl FromStr for CodecChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(CodecChoice::None),
            "gaps" => Ok(CodecChoice::Gaps),
            "block" => Ok(CodecChoice::Block),
            "bv" => Ok(CodecChoice::Bv),
            "auto" => Ok(CodecChoice::Auto),
            other => Err(format!(
                "unknown codec '{other}' (expected none|gaps|block|bv|auto)"
            )),
        }
    }
}

impl fmt::Display for CodecChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A reversible byte transform with a stable identity tag.
///
/// The two provided implementations are [`block`] (via [`BlockCodec`])
/// and the identity ([`RawCodec`]); gap coding is exposed through
/// [`encode_extent`] instead because it needs to know the record
/// structure, not just the bytes.
pub trait Codec: Send + Sync {
    /// The tag written in front of extents coded by this codec.
    fn tag(&self) -> u8;
    /// Stable name for metrics.
    fn name(&self) -> &'static str;
    /// Encodes `raw`; may return more bytes than it was given.
    fn encode(&self, raw: &[u8]) -> Vec<u8>;
    /// Decodes into exactly `logical_len` bytes.
    fn decode(&self, coded: &[u8], logical_len: usize) -> Result<Vec<u8>, CodecError>;
}

/// Identity codec: encode and decode are copies.
pub struct RawCodec;

impl Codec for RawCodec {
    fn tag(&self) -> u8 {
        TAG_RAW
    }
    fn name(&self) -> &'static str {
        "raw"
    }
    fn encode(&self, raw: &[u8]) -> Vec<u8> {
        raw.to_vec()
    }
    fn decode(&self, coded: &[u8], logical_len: usize) -> Result<Vec<u8>, CodecError> {
        if coded.len() != logical_len {
            return Err(CodecError::LengthMismatch {
                expected: logical_len,
                got: coded.len(),
            });
        }
        Ok(coded.to_vec())
    }
}

/// The RLE+LZ byte codec as a [`Codec`].
pub struct BlockCodec;

impl Codec for BlockCodec {
    fn tag(&self) -> u8 {
        TAG_BLOCK
    }
    fn name(&self) -> &'static str {
        "block"
    }
    fn encode(&self, raw: &[u8]) -> Vec<u8> {
        block::compress(raw)
    }
    fn decode(&self, coded: &[u8], logical_len: usize) -> Result<Vec<u8>, CodecError> {
        block::decompress(coded, logical_len)
    }
}

/// Extent tag: raw bytes follow.
pub const TAG_RAW: u8 = 0;
/// Extent tag: gap-coded adjacency data follows.
pub const TAG_GAPS: u8 = 1;
/// Extent tag: RLE+LZ coded bytes follow.
pub const TAG_BLOCK: u8 = 2;
/// Extent tag: BV-coded adjacency data follows (format v3; readers
/// accept tags 0–3, so v1/v2 extents keep decoding unchanged).
pub const TAG_BV: u8 = 3;

/// The record structure inside an adjacency extent, which decides how
/// gap coding parses the raw bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExtentKind {
    /// `svertex | count | edges…` fragment stream (VE-BLOCK eblocks,
    /// gather fragments).
    Fragments,
    /// Bare `(id, weight)` pair list (AdjacencyStore runs).
    Edges,
}

/// Encodes one adjacency-structured extent under `choice`, returning the
/// tagged physical bytes to store. Must not be called with
/// [`CodecChoice::None`] — the raw, untagged path belongs to the caller.
///
/// Candidates are tried per the choice and the smallest wins; ties keep
/// the earlier of raw → gaps → block → bv, so output is deterministic.
/// [`CodecChoice::Auto`] deliberately excludes the BV candidate so its
/// extents stay byte-identical to the pre-v3 format; `Bv` is its own
/// tier (raw fallback included).
pub fn encode_extent(choice: CodecChoice, kind: ExtentKind, raw: &[u8]) -> Vec<u8> {
    debug_assert!(!choice.is_none(), "None bypasses extent framing");
    let gaps_coded = match choice {
        CodecChoice::Gaps | CodecChoice::Auto => match kind {
            ExtentKind::Fragments => gaps::fragments_from_raw(raw).ok(),
            ExtentKind::Edges => gaps::edges_from_raw(raw).ok(),
        },
        _ => None,
    };
    let block_coded = match choice {
        CodecChoice::Block | CodecChoice::Auto => Some(block::compress(raw)),
        _ => None,
    };
    let bv_coded = match choice {
        CodecChoice::Bv => match kind {
            ExtentKind::Fragments => bv::fragments_from_raw(raw).ok(),
            ExtentKind::Edges => bv::edges_from_raw(raw).ok(),
        },
        _ => None,
    };
    let mut best_tag = TAG_RAW;
    let mut best: &[u8] = raw;
    if let Some(g) = gaps_coded.as_deref() {
        if g.len() < best.len() {
            best_tag = TAG_GAPS;
            best = g;
        }
    }
    if let Some(b) = block_coded.as_deref() {
        if b.len() < best.len() {
            best_tag = TAG_BLOCK;
            best = b;
        }
    }
    if let Some(v) = bv_coded.as_deref() {
        if v.len() < best.len() {
            best_tag = TAG_BV;
            best = v;
        }
    }
    let mut out = Vec::with_capacity(best.len() + 1);
    out.push(best_tag);
    out.extend_from_slice(best);
    out
}

/// Decodes an extent produced by [`encode_extent`] back into its raw
/// `logical_len` bytes.
pub fn decode_extent(
    kind: ExtentKind,
    coded: &[u8],
    logical_len: usize,
) -> Result<Vec<u8>, CodecError> {
    let (&tag, body) = coded.split_first().ok_or(CodecError::Truncated)?;
    let raw = match tag {
        TAG_RAW => RawCodec.decode(body, logical_len)?,
        TAG_GAPS => match kind {
            ExtentKind::Fragments => gaps::raw_from_fragments(body)?,
            ExtentKind::Edges => gaps::raw_from_edges(body)?,
        },
        TAG_BLOCK => block::decompress(body, logical_len)?,
        TAG_BV => match kind {
            ExtentKind::Fragments => bv::raw_from_fragments(body)?,
            ExtentKind::Edges => bv::raw_from_edges(body)?,
        },
        _ => return Err(CodecError::Corrupt("unknown extent tag")),
    };
    if raw.len() != logical_len {
        return Err(CodecError::LengthMismatch {
            expected: logical_len,
            got: raw.len(),
        });
    }
    Ok(raw)
}

/// Encodes a self-describing blob frame:
/// `tag u8 | logical varint | payload_len varint | payload`.
///
/// Blobs have no adjacency structure, so gaps never applies; under
/// [`CodecChoice::Gaps`] the payload stays raw (only framed), while
/// [`CodecChoice::Bv`] hands blobs to the block codec — spills and
/// checkpoints are a real share of physical bytes and BV is meant to be
/// the everything-tightened tier. Must not be called with
/// [`CodecChoice::None`].
pub fn encode_blob_frame(choice: CodecChoice, raw: &[u8]) -> Vec<u8> {
    debug_assert!(!choice.is_none(), "None bypasses blob framing");
    let block_coded = match choice {
        CodecChoice::Block | CodecChoice::Auto | CodecChoice::Bv => Some(block::compress(raw)),
        _ => None,
    };
    let (tag, payload): (u8, &[u8]) = match block_coded.as_deref() {
        Some(b) if b.len() < raw.len() => (TAG_BLOCK, b),
        _ => (TAG_RAW, raw),
    };
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.push(tag);
    varint::write_u64(&mut out, raw.len() as u64);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Decodes one blob frame at `*pos`, advancing past it; returns the raw
/// payload bytes.
pub fn decode_blob_frame(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, CodecError> {
    let tag = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    let logical = varint::read_u64(buf, pos)? as usize;
    let payload_len = varint::read_u64(buf, pos)? as usize;
    if payload_len > buf.len() - *pos {
        return Err(CodecError::Truncated);
    }
    let payload = &buf[*pos..*pos + payload_len];
    *pos += payload_len;
    match tag {
        TAG_RAW => RawCodec.decode(payload, logical),
        TAG_BLOCK => block::decompress(payload, logical),
        _ => Err(CodecError::Corrupt("unknown blob frame tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_edges(n: u32) -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..n {
            raw.extend_from_slice(&(10 + 2 * i).to_le_bytes());
            raw.extend_from_slice(&1.0f32.to_le_bytes());
        }
        raw
    }

    #[test]
    fn choice_parses_and_labels() {
        for c in CodecChoice::ALL {
            assert_eq!(c.label().parse::<CodecChoice>().unwrap(), c);
        }
        assert!("zstd".parse::<CodecChoice>().is_err());
        assert_eq!(CodecChoice::default(), CodecChoice::None);
    }

    #[test]
    fn extent_roundtrips_all_choices_and_kinds() {
        let edges = raw_edges(200);
        let mut frags = Vec::new();
        frags.extend_from_slice(&3u32.to_le_bytes());
        frags.extend_from_slice(&200u32.to_le_bytes());
        frags.extend_from_slice(&edges);
        for choice in [
            CodecChoice::Gaps,
            CodecChoice::Block,
            CodecChoice::Bv,
            CodecChoice::Auto,
        ] {
            for (kind, raw) in [(ExtentKind::Edges, &edges), (ExtentKind::Fragments, &frags)] {
                let coded = encode_extent(choice, kind, raw);
                assert_eq!(
                    &decode_extent(kind, &coded, raw.len()).unwrap(),
                    raw,
                    "{choice:?}/{kind:?}"
                );
            }
        }
    }

    #[test]
    fn gaps_extent_beats_raw_on_sorted_edges() {
        let raw = raw_edges(1000);
        let coded = encode_extent(CodecChoice::Gaps, ExtentKind::Edges, &raw);
        assert!(
            coded.len() * 3 < raw.len(),
            "{} vs {}",
            coded.len(),
            raw.len()
        );
        assert_eq!(coded[0], TAG_GAPS);
    }

    #[test]
    fn empty_extent_roundtrips() {
        for choice in [
            CodecChoice::Gaps,
            CodecChoice::Block,
            CodecChoice::Bv,
            CodecChoice::Auto,
        ] {
            let coded = encode_extent(choice, ExtentKind::Edges, &[]);
            assert_eq!(decode_extent(ExtentKind::Edges, &coded, 0).unwrap(), vec![]);
        }
    }

    #[test]
    fn bv_extent_beats_gaps_on_sorted_edges() {
        // The tier's reason to exist, at the extent level: bit-granular
        // codes under the same tag framing.
        let raw = raw_edges(1000);
        let gaps = encode_extent(CodecChoice::Gaps, ExtentKind::Edges, &raw);
        let bv = encode_extent(CodecChoice::Bv, ExtentKind::Edges, &raw);
        assert_eq!(bv[0], TAG_BV);
        assert!(
            bv.len() < gaps.len(),
            "bv {} vs gaps {}",
            bv.len(),
            gaps.len()
        );
        assert_eq!(
            decode_extent(ExtentKind::Edges, &bv, raw.len()).unwrap(),
            raw
        );
    }

    #[test]
    fn auto_never_emits_bv_tags() {
        // Auto's output is the pre-v3 format; BV extents only appear
        // when the job explicitly opts into the new tier.
        let raw = raw_edges(500);
        let coded = encode_extent(CodecChoice::Auto, ExtentKind::Edges, &raw);
        assert_ne!(coded[0], TAG_BV);
    }

    #[test]
    fn bv_blob_frames_use_block_codec() {
        let a = vec![7u8; 4096];
        let framed = encode_blob_frame(CodecChoice::Bv, &a);
        assert!(framed.len() < 64, "{}", framed.len());
        let mut pos = 0;
        assert_eq!(decode_blob_frame(&framed, &mut pos).unwrap(), a);
    }

    #[test]
    fn incompressible_extent_falls_back_to_raw() {
        // Not a valid edge-list length and with no byte structure, so both
        // gaps (error) and block (bigger) lose to raw.
        let raw = vec![0xA7u8, 0x13, 0x55];
        let coded = encode_extent(CodecChoice::Auto, ExtentKind::Edges, &raw);
        assert_eq!(coded[0], TAG_RAW);
        assert_eq!(decode_extent(ExtentKind::Edges, &coded, 3).unwrap(), raw);
    }

    #[test]
    fn blob_frames_roundtrip_and_concatenate() {
        let a = vec![7u8; 4096];
        let b: Vec<u8> = (0..255u8).collect();
        for choice in [
            CodecChoice::Gaps,
            CodecChoice::Block,
            CodecChoice::Bv,
            CodecChoice::Auto,
        ] {
            let mut stream = encode_blob_frame(choice, &a);
            stream.extend(encode_blob_frame(choice, &b));
            let mut pos = 0;
            assert_eq!(decode_blob_frame(&stream, &mut pos).unwrap(), a);
            assert_eq!(decode_blob_frame(&stream, &mut pos).unwrap(), b);
            assert_eq!(pos, stream.len());
        }
        // Block mode actually shrinks the run-heavy payload.
        let framed = encode_blob_frame(CodecChoice::Block, &a);
        assert!(framed.len() < 64, "{}", framed.len());
    }

    #[test]
    fn blob_frame_truncation_errors() {
        let frame = encode_blob_frame(CodecChoice::Block, &[1u8; 100]);
        let mut pos = 0;
        assert!(decode_blob_frame(&frame[..frame.len() - 1], &mut pos).is_err());
    }

    #[test]
    fn codec_trait_objects() {
        let codecs: [&dyn Codec; 2] = [&RawCodec, &BlockCodec];
        let data = b"abababababababab".to_vec();
        for c in codecs {
            let coded = c.encode(&data);
            assert_eq!(c.decode(&coded, data.len()).unwrap(), data, "{}", c.name());
        }
    }
}
