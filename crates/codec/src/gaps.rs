//! Structure-aware coding for adjacency data: delta-gap id lists and
//! bit-packed weight columns.
//!
//! HybridGraph writes neighbour ids in ascending order (CSR rows and
//! VE-BLOCK fragments are dst-sorted, gather fragments src-sorted), so
//! consecutive ids differ by small gaps — the WebGraph observation. Gaps
//! are zig-zag coded before the varint, so a non-monotone id list still
//! round-trips (it merely compresses worse); monotonicity is an
//! optimization assumption, never a correctness requirement.
//!
//! Weight columns (f32 bit patterns) are bit-packed against their min/max
//! range: the common all-equal case (unit weights in PageRank) packs to a
//! width-0 column — one varint plus one byte regardless of edge count.

use crate::varint::{read_u64, unzigzag, write_u64, zigzag};
use crate::CodecError;

/// Appends zig-zag delta coding of `ids` (count is *not* written).
pub fn write_deltas(out: &mut Vec<u8>, ids: &[u32]) {
    let mut prev = 0i64;
    for &id in ids {
        write_u64(out, zigzag(i64::from(id) - prev));
        prev = i64::from(id);
    }
}

/// Reads `count` zig-zag delta coded ids.
pub fn read_deltas(buf: &[u8], pos: &mut usize, count: usize) -> Result<Vec<u32>, CodecError> {
    let mut ids = Vec::with_capacity(count);
    let mut prev = 0i64;
    for _ in 0..count {
        let v = prev + unzigzag(read_u64(buf, pos)?);
        let id =
            u32::try_from(v).map_err(|_| CodecError::Corrupt("delta-coded id out of range"))?;
        ids.push(id);
        prev = v;
    }
    Ok(ids)
}

/// Appends a bit-packed column: `min` varint, `width` byte, then
/// `(v - min)` values at `width` bits each, LSB-first.
pub fn write_packed(out: &mut Vec<u8>, vals: &[u32]) {
    if vals.is_empty() {
        return;
    }
    let min = *vals.iter().min().expect("non-empty");
    let max = *vals.iter().max().expect("non-empty");
    let range = max - min;
    let width = if range == 0 {
        0u8
    } else {
        (32 - range.leading_zeros()) as u8
    };
    write_u64(out, u64::from(min));
    out.push(width);
    if width == 0 {
        return;
    }
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &v in vals {
        acc |= u64::from(v - min) << nbits;
        nbits += u32::from(width);
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
}

/// Reads a bit-packed column of `count` values.
pub fn read_packed(buf: &[u8], pos: &mut usize, count: usize) -> Result<Vec<u32>, CodecError> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let min = u32::try_from(read_u64(buf, pos)?)
        .map_err(|_| CodecError::Corrupt("packed column min out of range"))?;
    let width = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    if width > 32 {
        return Err(CodecError::Corrupt("packed column width > 32"));
    }
    if width == 0 {
        return Ok(vec![min; count]);
    }
    let mut vals = Vec::with_capacity(count);
    let mut acc = 0u64;
    let mut nbits = 0u32;
    let mask = if width == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << width) - 1
    };
    for _ in 0..count {
        while nbits < u32::from(width) {
            let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
            *pos += 1;
            acc |= u64::from(b) << nbits;
            nbits += 8;
        }
        let delta = (acc & mask) as u32;
        acc >>= width;
        nbits -= u32::from(width);
        let v = min
            .checked_add(delta)
            .ok_or(CodecError::Corrupt("packed column value overflows u32"))?;
        vals.push(v);
    }
    Ok(vals)
}

// ------------------------------------------------------- fragment streams
//
// The raw layouts below are the storage crate's on-disk formats; they are
// mirrored here so the codec can translate between raw bytes and gap
// coding without depending on storage types.
//
// * Fragment stream (VE-BLOCK eblocks, gather fragments):
//   repeated `svertex u32 LE | count u32 LE | count × (id u32 LE, w f32 LE)`.
// * Edge list (AdjacencyStore runs): repeated `id u32 LE | w f32 LE`.

pub(crate) struct Frags {
    pub(crate) svertices: Vec<u32>,
    pub(crate) counts: Vec<u32>,
    pub(crate) ids: Vec<u32>,
    pub(crate) weights: Vec<u32>,
}

pub(crate) fn parse_raw_fragments(raw: &[u8]) -> Result<Frags, CodecError> {
    let mut f = Frags {
        svertices: Vec::new(),
        counts: Vec::new(),
        ids: Vec::new(),
        weights: Vec::new(),
    };
    let mut pos = 0usize;
    while pos < raw.len() {
        if raw.len() - pos < 8 {
            return Err(CodecError::Corrupt("fragment header truncated"));
        }
        let sv = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("width"));
        let count = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().expect("width"));
        pos += 8;
        let need = (count as usize)
            .checked_mul(8)
            .ok_or(CodecError::Corrupt("fragment edge count overflows"))?;
        if raw.len() - pos < need {
            return Err(CodecError::Corrupt("fragment edges truncated"));
        }
        f.svertices.push(sv);
        f.counts.push(count);
        for e in raw[pos..pos + need].chunks_exact(8) {
            f.ids
                .push(u32::from_le_bytes(e[..4].try_into().expect("width")));
            f.weights
                .push(u32::from_le_bytes(e[4..].try_into().expect("width")));
        }
        pos += need;
    }
    Ok(f)
}

/// Gap-codes a raw fragment stream. Layout: `nfrags varint`, zig-zag
/// delta-coded svertex ids, per-fragment edge counts, per-fragment
/// delta-coded neighbour ids, then one bit-packed weight column over all
/// edges.
pub fn fragments_from_raw(raw: &[u8]) -> Result<Vec<u8>, CodecError> {
    let f = parse_raw_fragments(raw)?;
    let mut out = Vec::with_capacity(raw.len() / 4 + 16);
    write_u64(&mut out, f.svertices.len() as u64);
    write_deltas(&mut out, &f.svertices);
    for &c in &f.counts {
        write_u64(&mut out, u64::from(c));
    }
    let mut base = 0usize;
    for &c in &f.counts {
        write_deltas(&mut out, &f.ids[base..base + c as usize]);
        base += c as usize;
    }
    write_packed(&mut out, &f.weights);
    Ok(out)
}

/// Inverse of [`fragments_from_raw`]: rebuilds the raw fragment stream.
pub fn raw_from_fragments(coded: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let nfrags = read_u64(coded, &mut pos)? as usize;
    let svertices = read_deltas(coded, &mut pos, nfrags)?;
    let mut counts = Vec::with_capacity(nfrags);
    let mut total_edges = 0usize;
    for _ in 0..nfrags {
        let c = u32::try_from(read_u64(coded, &mut pos)?)
            .map_err(|_| CodecError::Corrupt("fragment count out of range"))?;
        total_edges += c as usize;
        counts.push(c);
    }
    let mut ids = Vec::with_capacity(total_edges);
    for &c in &counts {
        ids.extend(read_deltas(coded, &mut pos, c as usize)?);
    }
    let weights = read_packed(coded, &mut pos, total_edges)?;
    let mut raw = Vec::with_capacity(nfrags * 8 + total_edges * 8);
    let mut base = 0usize;
    for i in 0..nfrags {
        raw.extend_from_slice(&svertices[i].to_le_bytes());
        raw.extend_from_slice(&counts[i].to_le_bytes());
        for e in 0..counts[i] as usize {
            raw.extend_from_slice(&ids[base + e].to_le_bytes());
            raw.extend_from_slice(&weights[base + e].to_le_bytes());
        }
        base += counts[i] as usize;
    }
    Ok(raw)
}

/// Gap-codes a bare edge list (`id u32 LE | w f32 LE` pairs): `count`
/// varint, delta-coded ids, bit-packed weight column.
pub fn edges_from_raw(raw: &[u8]) -> Result<Vec<u8>, CodecError> {
    if !raw.len().is_multiple_of(8) {
        return Err(CodecError::Corrupt("edge list not a multiple of 8 bytes"));
    }
    let count = raw.len() / 8;
    let mut ids = Vec::with_capacity(count);
    let mut weights = Vec::with_capacity(count);
    for e in raw.chunks_exact(8) {
        ids.push(u32::from_le_bytes(e[..4].try_into().expect("width")));
        weights.push(u32::from_le_bytes(e[4..].try_into().expect("width")));
    }
    let mut out = Vec::with_capacity(raw.len() / 4 + 8);
    write_u64(&mut out, count as u64);
    write_deltas(&mut out, &ids);
    write_packed(&mut out, &weights);
    Ok(out)
}

/// Inverse of [`edges_from_raw`].
pub fn raw_from_edges(coded: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let count = read_u64(coded, &mut pos)? as usize;
    let ids = read_deltas(coded, &mut pos, count)?;
    let weights = read_packed(coded, &mut pos, count)?;
    let mut raw = Vec::with_capacity(count * 8);
    for i in 0..count {
        raw.extend_from_slice(&ids[i].to_le_bytes());
        raw.extend_from_slice(&weights[i].to_le_bytes());
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_edges(edges: &[(u32, f32)]) -> Vec<u8> {
        let mut raw = Vec::new();
        for &(d, w) in edges {
            raw.extend_from_slice(&d.to_le_bytes());
            raw.extend_from_slice(&w.to_le_bytes());
        }
        raw
    }

    #[test]
    fn empty_edge_list_roundtrips() {
        let coded = edges_from_raw(&[]).unwrap();
        assert_eq!(raw_from_edges(&coded).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn sorted_unit_weight_edges_shrink() {
        let edges: Vec<(u32, f32)> = (0..1000).map(|i| (1000 + 3 * i, 1.0)).collect();
        let raw = raw_edges(&edges);
        let coded = edges_from_raw(&raw).unwrap();
        assert!(
            coded.len() * 4 < raw.len(),
            "expected >4x on gap-1 unit-weight edges: {} vs {}",
            coded.len(),
            raw.len()
        );
        assert_eq!(raw_from_edges(&coded).unwrap(), raw);
    }

    #[test]
    fn non_monotone_ids_still_roundtrip() {
        let edges = vec![(900u32, 0.5f32), (3, -1.5), (u32::MAX, 2.0), (0, 0.0)];
        let raw = raw_edges(&edges);
        let coded = edges_from_raw(&raw).unwrap();
        assert_eq!(raw_from_edges(&coded).unwrap(), raw);
    }

    #[test]
    fn weight_bit_patterns_survive() {
        // NaN and negative zero must round-trip bit-exactly.
        let edges = vec![(1u32, f32::NAN), (2, -0.0), (3, f32::INFINITY)];
        let raw = raw_edges(&edges);
        let coded = edges_from_raw(&raw).unwrap();
        assert_eq!(raw_from_edges(&coded).unwrap(), raw);
    }

    #[test]
    fn empty_fragment_stream_roundtrips() {
        let coded = fragments_from_raw(&[]).unwrap();
        assert_eq!(raw_from_fragments(&coded).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fragment_stream_roundtrips() {
        // Two fragments, one with zero edges (a vertex whose edges all went
        // elsewhere never emits a fragment, but zero counts must not break).
        let mut raw = Vec::new();
        for (sv, edges) in [
            (5u32, vec![(7u32, 1.0f32), (9, 1.0), (200, 1.0)]),
            (6, vec![]),
            (40, vec![(0, 2.5)]),
        ] {
            raw.extend_from_slice(&sv.to_le_bytes());
            raw.extend_from_slice(&(edges.len() as u32).to_le_bytes());
            for (d, w) in edges {
                raw.extend_from_slice(&d.to_le_bytes());
                raw.extend_from_slice(&w.to_le_bytes());
            }
        }
        let coded = fragments_from_raw(&raw).unwrap();
        assert_eq!(raw_from_fragments(&coded).unwrap(), raw);
    }

    #[test]
    fn truncated_fragment_stream_errors() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&2u32.to_le_bytes()); // claims 2 edges
        raw.extend_from_slice(&[0u8; 8]); // only 1 present
        assert!(fragments_from_raw(&raw).is_err());
    }

    #[test]
    fn packed_column_widths() {
        for vals in [
            vec![7u32; 100],                 // width 0
            vec![1, 2, 3, 4],                // width 2
            vec![0, u32::MAX],               // width 32
            (0..255u32).collect::<Vec<_>>(), // width 8
        ] {
            let mut buf = Vec::new();
            write_packed(&mut buf, &vals);
            let mut pos = 0;
            assert_eq!(read_packed(&buf, &mut pos, vals.len()).unwrap(), vals);
            assert_eq!(pos, buf.len());
        }
    }
}
