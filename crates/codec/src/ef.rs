//! Elias-Fano encoding of monotone (non-decreasing) u64 sequences.
//!
//! The storage crates keep one cumulative byte offset per coded extent;
//! flat `Vec<u64>` directories cost 8 bytes per entry, which at
//! billion-edge scale (tens of millions of extents) is hundreds of
//! megabytes of resident index. Elias-Fano stores a non-decreasing
//! sequence of `n` values below universe `u` in `n·(2 + ⌈log2(u/n)⌉)`
//! bits — about 2 bytes per extent offset here — while keeping
//! O(1)-ish random access via sampled select over the upper-bits
//! vector. Access cost is one sample lookup plus a short word scan, so
//! per-block reads never decode the whole directory.

use crate::CodecError;

/// One select sample is kept per this many set bits.
const SAMPLE: u64 = 64;

/// An immutable Elias-Fano sequence with random access.
#[derive(Debug, Clone)]
pub struct EliasFano {
    n: u64,
    /// Strict upper bound on values (`last + 1`; 0 when empty).
    u: u64,
    /// Width of the explicit low-bits part.
    l: u32,
    /// `n × l` low bits, packed LSB-first across words.
    low: Vec<u64>,
    /// Upper-bits vector: value `v` at index `i` sets bit `(v >> l) + i`.
    high: Vec<u64>,
    /// Bit position of every `SAMPLE`-th set bit of `high`.
    samples: Vec<u64>,
}

fn low_width(n: u64, u: u64) -> u32 {
    if n == 0 || u <= n {
        0
    } else {
        (u / n).ilog2()
    }
}

fn high_bits(n: u64, u: u64, l: u32) -> u64 {
    n + (u >> l) + 1
}

impl EliasFano {
    /// Builds from a non-decreasing slice. Returns `Corrupt` if the
    /// input ever decreases.
    pub fn build(values: &[u64]) -> Result<Self, CodecError> {
        let n = values.len() as u64;
        let u = values.last().map_or(0, |&v| v + 1);
        let l = low_width(n, u);
        let mut low = vec![0u64; (n * l as u64).div_ceil(64) as usize];
        let mut high = vec![0u64; high_bits(n, u, l).div_ceil(64) as usize];
        let mut prev = 0u64;
        for (i, &v) in values.iter().enumerate() {
            if v < prev {
                return Err(CodecError::Corrupt("elias-fano input not monotone"));
            }
            prev = v;
            if l > 0 {
                let bit = i as u64 * l as u64;
                let (w, off) = ((bit / 64) as usize, bit % 64);
                let mask = v & ((1u64 << l) - 1);
                low[w] |= mask << off;
                if off + l as u64 > 64 {
                    low[w + 1] |= mask >> (64 - off);
                }
            }
            let h = (v >> l) + i as u64;
            high[(h / 64) as usize] |= 1u64 << (h % 64);
        }
        let mut ef = Self {
            n,
            u,
            l,
            low,
            high,
            samples: Vec::new(),
        };
        ef.samples = ef.build_samples();
        Ok(ef)
    }

    fn build_samples(&self) -> Vec<u64> {
        let mut samples = Vec::with_capacity((self.n / SAMPLE) as usize + 1);
        let mut seen = 0u64;
        for (w, &word) in self.high.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                if seen.is_multiple_of(SAMPLE) {
                    samples.push(w as u64 * 64 + bits.trailing_zeros() as u64);
                }
                seen += 1;
                bits &= bits - 1;
            }
        }
        samples
    }

    pub fn len(&self) -> u64 {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bit position of set bit number `i` (0-based) in `high`.
    fn select(&self, i: u64) -> u64 {
        let mut pos = self.samples[(i / SAMPLE) as usize];
        let mut rank = i - i % SAMPLE;
        let mut w = (pos / 64) as usize;
        let mut word = self.high[w] & !((1u64 << (pos % 64)) - 1);
        loop {
            let ones = word.count_ones() as u64;
            if rank + ones > i {
                let mut bits = word;
                for _ in 0..(i - rank) {
                    bits &= bits - 1;
                }
                pos = w as u64 * 64 + bits.trailing_zeros() as u64;
                return pos;
            }
            rank += ones;
            w += 1;
            word = self.high[w];
        }
    }

    fn low_bits(&self, i: u64) -> u64 {
        if self.l == 0 {
            return 0;
        }
        let bit = i * self.l as u64;
        let (w, off) = ((bit / 64) as usize, bit % 64);
        let mut v = self.low[w] >> off;
        if off + self.l as u64 > 64 {
            v |= self.low[w + 1] << (64 - off);
        }
        v & ((1u64 << self.l) - 1)
    }

    /// Value at index `i`. Panics if `i >= len()`.
    pub fn get(&self, i: u64) -> u64 {
        assert!(i < self.n, "elias-fano index {i} out of {}", self.n);
        ((self.select(i) - i) << self.l) | self.low_bits(i)
    }

    /// Resident heap bytes (the number the flat directory is judged by).
    pub fn memory_bytes(&self) -> u64 {
        (self.low.len() + self.high.len() + self.samples.len()) as u64 * 8
    }

    /// Serializes as `n u64 | u u64 | l u8 | low words | high words`,
    /// all little-endian; word counts are derived from the header, and
    /// samples are rebuilt on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + (self.low.len() + self.high.len()) * 8);
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.u.to_le_bytes());
        out.push(self.l as u8);
        for &w in &self.low {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &w in &self.high {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Inverse of [`to_bytes`]; rejects torn or trailing-garbage input.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        if buf.len() < 17 {
            return Err(CodecError::Truncated);
        }
        let n = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let u = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let l = buf[16] as u32;
        if l != low_width(n, u) {
            return Err(CodecError::Corrupt("elias-fano header width mismatch"));
        }
        // Checked size math: a corrupt header must not wrap into a
        // plausible length or a huge allocation request.
        let low_total = n
            .checked_mul(l as u64)
            .ok_or(CodecError::Corrupt("elias-fano header size overflow"))?;
        let high_total = n
            .checked_add(u >> l)
            .and_then(|v| v.checked_add(1))
            .ok_or(CodecError::Corrupt("elias-fano header size overflow"))?;
        let words = low_total.div_ceil(64) + high_total.div_ceil(64);
        if words > (buf.len() as u64) / 8 {
            return Err(CodecError::Truncated);
        }
        let low_words = low_total.div_ceil(64) as usize;
        let high_words = high_total.div_ceil(64) as usize;
        let expect = 17 + (low_words + high_words) * 8;
        if buf.len() < expect {
            return Err(CodecError::Truncated);
        }
        if buf.len() > expect {
            return Err(CodecError::Corrupt("elias-fano trailing bytes"));
        }
        let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let low: Vec<u64> = (0..low_words).map(|i| word(17 + i * 8)).collect();
        let high: Vec<u64> = (0..high_words)
            .map(|i| word(17 + (low_words + i) * 8))
            .collect();
        let ones: u64 = high.iter().map(|w| w.count_ones() as u64).sum();
        if ones != n {
            return Err(CodecError::Corrupt("elias-fano popcount mismatch"));
        }
        let mut ef = Self {
            n,
            u,
            l,
            low,
            high,
            samples: Vec::new(),
        };
        ef.samples = ef.build_samples();
        // The last value must round-trip to u - 1, or the header lied.
        if n > 0 && ef.get(n - 1) + 1 != u {
            return Err(CodecError::Corrupt("elias-fano upper bound mismatch"));
        }
        Ok(ef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn seeded_monotone(seed: u64, n: usize, max_gap: u64) -> Vec<u64> {
        let mut vals = Vec::with_capacity(n);
        let mut cur = 0u64;
        let mut s = seed;
        for i in 0..n {
            s = mix(s ^ i as u64);
            cur += s % (max_gap + 1); // gaps of 0 keep duplicates covered
            vals.push(cur);
        }
        vals
    }

    #[test]
    fn random_access_matches_flat_vector() {
        for seed in [3u64, 1776, 0xfeed_f00d] {
            println!("ef property seed {seed}");
            for max_gap in [0u64, 1, 7, 1000, 1 << 33] {
                let vals = seeded_monotone(seed, 3000, max_gap);
                let ef = EliasFano::build(&vals).unwrap();
                assert_eq!(ef.len(), vals.len() as u64);
                for (i, &v) in vals.iter().enumerate() {
                    assert_eq!(ef.get(i as u64), v, "seed {seed} gap {max_gap} i {i}");
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny() {
        let ef = EliasFano::build(&[]).unwrap();
        assert!(ef.is_empty());
        let ef = EliasFano::build(&[0]).unwrap();
        assert_eq!(ef.get(0), 0);
        let ef = EliasFano::build(&[5, 5, 5]).unwrap();
        for i in 0..3 {
            assert_eq!(ef.get(i), 5);
        }
    }

    #[test]
    fn rejects_non_monotone() {
        assert!(matches!(
            EliasFano::build(&[3, 2]),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn serialization_roundtrips() {
        let vals = seeded_monotone(42, 5000, 900);
        let ef = EliasFano::build(&vals).unwrap();
        let bytes = ef.to_bytes();
        let back = EliasFano::from_bytes(&bytes).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(back.get(i as u64), v);
        }
        // Empty sequence too.
        let bytes = EliasFano::build(&[]).unwrap().to_bytes();
        assert!(EliasFano::from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn torn_reads_are_rejected() {
        let vals = seeded_monotone(7, 600, 50);
        let bytes = EliasFano::build(&vals).unwrap().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                EliasFano::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(EliasFano::from_bytes(&extra).is_err());
        // Flipping a high bit breaks the popcount or bound check.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x80;
        assert!(EliasFano::from_bytes(&flipped).is_err());
    }

    #[test]
    fn beats_flat_directory_on_offset_like_sequences() {
        // Extent offsets grow by roughly the coded-extent size; 64-bit
        // flat entries cost 8 bytes, EF should sit near 2.
        let vals = seeded_monotone(11, 100_000, 2000);
        let ef = EliasFano::build(&vals).unwrap();
        let flat = vals.len() as u64 * 8;
        assert!(
            ef.memory_bytes() * 3 < flat,
            "ef {} vs flat {flat}",
            ef.memory_bytes()
        );
    }
}
