//! Deterministic general-purpose byte codec: run-length encoding plus a
//! fixed greedy LZ77 pass.
//!
//! Used for the structures gap coding does not fit — checkpoint bodies,
//! message spill chunks, msg-log segments. The encoder is a pure function
//! of its input (single hash-chain probe, fixed window, greedy choice with
//! a fixed tie-break), so coded bytes are reproducible across runs and
//! platforms — no RNG, no timestamps, no thread dependence.
//!
//! Token stream, repeated until end of input:
//! * `0x00 | len varint | len bytes` — literal copy
//! * `0x01 | len varint | byte` — run of one byte
//! * `0x02 | dist varint | len varint` — copy `len` bytes from `dist`
//!   back (overlap allowed, byte-at-a-time semantics)

use crate::varint::{read_u64, write_u64};
use crate::CodecError;

const OP_LIT: u8 = 0x00;
const OP_RUN: u8 = 0x01;
const OP_MATCH: u8 = 0x02;

/// Minimum useful run/match length; shorter repeats stay literal.
const MIN_MATCH: usize = 4;
/// Farthest back a match may reach.
const WINDOW: usize = 64 * 1024;
const HASH_BITS: u32 = 16;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes(b[..4].try_into().expect("width"));
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    if lits.is_empty() {
        return;
    }
    out.push(OP_LIT);
    write_u64(out, lits.len() as u64);
    out.extend_from_slice(lits);
}

/// Compresses `input`. The output may be larger than the input on
/// incompressible data; callers keep the raw bytes when that happens.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut pos = 0usize;
    while pos < input.len() {
        let b = input[pos];
        let mut run = 1usize;
        while pos + run < input.len() && input[pos + run] == b {
            run += 1;
        }
        let mut mlen = 0usize;
        let mut mdist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let cand = head[h];
            if cand != usize::MAX && pos - cand <= WINDOW {
                let mut l = 0usize;
                while pos + l < input.len() && input[cand + l] == input[pos + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    mlen = l;
                    mdist = pos - cand;
                }
            }
            head[h] = pos;
        }
        if run >= MIN_MATCH && run >= mlen {
            flush_literals(&mut out, &input[lit_start..pos]);
            out.push(OP_RUN);
            write_u64(&mut out, run as u64);
            out.push(b);
            pos += run;
            lit_start = pos;
        } else if mlen >= MIN_MATCH {
            flush_literals(&mut out, &input[lit_start..pos]);
            out.push(OP_MATCH);
            write_u64(&mut out, mdist as u64);
            write_u64(&mut out, mlen as u64);
            pos += mlen;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompresses into exactly `expected_len` bytes.
pub fn decompress(coded: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < coded.len() {
        let op = coded[pos];
        pos += 1;
        match op {
            OP_LIT => {
                let len = read_u64(coded, &mut pos)? as usize;
                if len > coded.len() - pos {
                    return Err(CodecError::Truncated);
                }
                if out.len() + len > expected_len {
                    return Err(CodecError::Corrupt("literal overruns logical length"));
                }
                out.extend_from_slice(&coded[pos..pos + len]);
                pos += len;
            }
            OP_RUN => {
                let len = read_u64(coded, &mut pos)? as usize;
                let b = *coded.get(pos).ok_or(CodecError::Truncated)?;
                pos += 1;
                if out.len() + len > expected_len {
                    return Err(CodecError::Corrupt("run overruns logical length"));
                }
                out.resize(out.len() + len, b);
            }
            OP_MATCH => {
                let dist = read_u64(coded, &mut pos)? as usize;
                let len = read_u64(coded, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt("match distance out of range"));
                }
                if out.len() + len > expected_len {
                    return Err(CodecError::Corrupt("match overruns logical length"));
                }
                // Byte-at-a-time so overlapping matches replicate, as the
                // encoder assumes.
                for _ in 0..len {
                    let b = out[out.len() - dist];
                    out.push(b);
                }
            }
            _ => return Err(CodecError::Corrupt("unknown block-codec opcode")),
        }
    }
    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch {
            expected: expected_len,
            got: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let coded = compress(data);
        assert_eq!(decompress(&coded, data.len()).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[]);
        roundtrip(&[1]);
        roundtrip(&[1, 2, 3]);
    }

    #[test]
    fn runs_compress_well() {
        let data = vec![0u8; 10_000];
        let coded = compress(&data);
        assert!(coded.len() < 16, "RLE should collapse: {}", coded.len());
        roundtrip(&data);
    }

    #[test]
    fn repeated_structure_compresses() {
        let unit: Vec<u8> = (0..64u8).collect();
        let mut data = Vec::new();
        for _ in 0..100 {
            data.extend_from_slice(&unit);
        }
        let coded = compress(&data);
        assert!(
            coded.len() * 4 < data.len(),
            "LZ should find the repeats: {} vs {}",
            coded.len(),
            data.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_roundtrips() {
        // "abcabcabc..." forces dist < len copies.
        let data: Vec<u8> = b"abc".iter().copied().cycle().take(1000).collect();
        roundtrip(&data);
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..5000u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn incompressible_survives() {
        // A xorshift stream — no runs, few matches.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut data = Vec::new();
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.extend_from_slice(&x.to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_inputs_error() {
        let coded = compress(b"hello world hello world hello world");
        // Wrong logical length.
        assert!(decompress(&coded, 5).is_err());
        // Unknown opcode.
        assert!(decompress(&[0x7f], 1).is_err());
        // Match before any output.
        let mut bad = Vec::new();
        bad.push(OP_MATCH);
        write_u64(&mut bad, 1);
        write_u64(&mut bad, 4);
        assert!(decompress(&bad, 4).is_err());
        // Truncated literal.
        let mut bad = Vec::new();
        bad.push(OP_LIT);
        write_u64(&mut bad, 100);
        bad.push(1);
        assert!(decompress(&bad, 100).is_err());
    }
}
