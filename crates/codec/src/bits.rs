//! MSB-first bit streams and instantaneous integer codes.
//!
//! The gap codec in [`crate::gaps`] is byte-aligned: every gap costs at
//! least 8 bits. The BV tier needs the WebGraph code toolbox — unary,
//! Elias γ/δ, ζ_k and minimal-binary — all of which pack values into a
//! few *bits*, so this module provides an MSB-first [`BitWriter`] /
//! [`BitReader`] pair plus the codes themselves. Streams are padded
//! with zero bits to a byte boundary on [`BitWriter::finish`], and every
//! read checks for overrun so torn extents surface as
//! [`CodecError::Truncated`] rather than garbage.

use crate::CodecError;

/// Largest width accepted by [`BitWriter::write_bits`] /
/// [`BitReader::read_bits`] in one call. 64-bit values are written as
/// two chunks by the code layers that need them.
pub const MAX_WIDTH: u32 = 57;

/// Appends bits MSB-first into a byte buffer.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    /// Number of pending bits held in the low end of `acc`.
    n: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far (before padding).
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.n as u64
    }

    /// Writes the low `width` bits of `value`, most significant first.
    /// `width` must be ≤ [`MAX_WIDTH`]; `value` must fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= MAX_WIDTH, "width {width} > {MAX_WIDTH}");
        debug_assert!(width == 64 || value >> width == 0, "value overflows width");
        if width == 0 {
            return;
        }
        self.acc = (self.acc << width) | value;
        self.n += width;
        while self.n >= 8 {
            self.n -= 8;
            self.buf.push((self.acc >> self.n) as u8);
        }
    }

    /// Unary code: `n` zero bits followed by a one.
    pub fn write_unary(&mut self, mut n: u64) {
        while n >= 32 {
            self.write_bits(0, 32);
            n -= 32;
        }
        self.write_bits(1, n as u32 + 1);
    }

    /// Elias γ: unary exponent then the mantissa of `n + 1`.
    pub fn write_gamma(&mut self, n: u64) {
        let v = n + 1;
        let b = 63 - v.leading_zeros();
        self.write_unary(b as u64);
        self.write_split(v & ((1u64 << b) - 1), b);
    }

    /// Elias δ: γ-coded exponent then the mantissa of `n + 1`.
    pub fn write_delta(&mut self, n: u64) {
        let v = n + 1;
        let b = 63 - v.leading_zeros();
        self.write_gamma(b as u64);
        self.write_split(v & ((1u64 << b) - 1), b);
    }

    /// ζ_k (Boldi–Vigna): unary shard index, then minimal-binary offset
    /// within the shard `[2^{hk}-1, 2^{(h+1)k}-1)`. Tuned for the
    /// power-law gap distributions of web/social adjacency.
    pub fn write_zeta(&mut self, n: u64, k: u32) {
        debug_assert!((1..=20).contains(&k));
        let v = n + 1;
        let h = (63 - v.leading_zeros()) / k;
        self.write_unary(h as u64);
        let base = 1u64 << (h * k);
        let span = if (h + 1) * k >= 64 {
            u64::MAX - base + 1
        } else {
            (base << k) - base
        };
        self.write_minimal_binary(v - base, span);
    }

    /// Minimal binary code of `x` in `[0, m)`: the first `2^s - m`
    /// values use `s-1` bits, the rest use `s` bits, `s = ⌈log2 m⌉`.
    pub fn write_minimal_binary(&mut self, x: u64, m: u64) {
        debug_assert!(m >= 1 && x < m);
        if m == 1 {
            return;
        }
        let s = 64 - (m - 1).leading_zeros();
        // s can be 64 for huge universes; 2^64 - m wraps to the right
        // threshold in u64 arithmetic.
        let thresh = (1u64 << (s - 1)).wrapping_mul(2).wrapping_sub(m);
        if x < thresh {
            self.write_split(x, s - 1);
        } else {
            self.write_split(x.wrapping_add(thresh), s);
        }
    }

    /// Writes up to 64 bits by splitting into `MAX_WIDTH`-sized chunks.
    fn write_split(&mut self, value: u64, width: u32) {
        if width > MAX_WIDTH {
            self.write_bits(value >> MAX_WIDTH, width - MAX_WIDTH);
            self.write_bits(value & ((1u64 << MAX_WIDTH) - 1), MAX_WIDTH);
        } else {
            self.write_bits(value, width);
        }
    }

    /// Pads to a byte boundary with zero bits and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.n > 0 {
            let pad = 8 - self.n;
            self.write_bits(0, pad);
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice, erroring on overrun.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    /// Valid bits remaining in the low end of `acc` (above-`n` bits are
    /// stale and masked off on extraction).
    n: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            n: 0,
        }
    }

    fn refill(&mut self) -> Result<(), CodecError> {
        let &b = self.data.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        self.acc = (self.acc << 8) | b as u64;
        self.n += 8;
        Ok(())
    }

    /// Reads `width` (≤ [`MAX_WIDTH`]) bits MSB-first.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        debug_assert!(width <= MAX_WIDTH);
        if width == 0 {
            return Ok(0);
        }
        while self.n < width {
            self.refill()?;
        }
        self.n -= width;
        Ok((self.acc >> self.n) & ((1u64 << width) - 1))
    }

    /// Reads a unary code (count of zeros before the terminating one).
    pub fn read_unary(&mut self) -> Result<u64, CodecError> {
        let mut count = 0u64;
        loop {
            if self.n == 0 {
                self.refill()?;
            }
            // Left-align the n valid bits so leading_zeros counts them.
            let window = self.acc << (64 - self.n);
            let lz = window.leading_zeros().min(self.n);
            if lz < self.n {
                self.n -= lz + 1;
                return Ok(count + lz as u64);
            }
            count += self.n as u64;
            self.n = 0;
        }
    }

    pub fn read_gamma(&mut self) -> Result<u64, CodecError> {
        let b = self.read_unary()?;
        if b > 63 {
            return Err(CodecError::Corrupt("gamma exponent out of range"));
        }
        let mantissa = self.read_split(b as u32)?;
        Ok(((1u64 << b) | mantissa) - 1)
    }

    pub fn read_delta(&mut self) -> Result<u64, CodecError> {
        let b = self.read_gamma()?;
        if b > 63 {
            return Err(CodecError::Corrupt("delta exponent out of range"));
        }
        let mantissa = self.read_split(b as u32)?;
        Ok(((1u64 << b) | mantissa) - 1)
    }

    pub fn read_zeta(&mut self, k: u32) -> Result<u64, CodecError> {
        debug_assert!((1..=20).contains(&k));
        let h = self.read_unary()?;
        if h as u32 * k > 63 {
            return Err(CodecError::Corrupt("zeta shard out of range"));
        }
        let base = 1u64 << (h as u32 * k);
        let span = if (h as u32 + 1) * k >= 64 {
            u64::MAX - base + 1
        } else {
            (base << k) - base
        };
        let off = self.read_minimal_binary(span)?;
        Ok(base + off - 1)
    }

    pub fn read_minimal_binary(&mut self, m: u64) -> Result<u64, CodecError> {
        debug_assert!(m >= 1);
        if m == 1 {
            return Ok(0);
        }
        let s = 64 - (m - 1).leading_zeros();
        let thresh = (1u64 << (s - 1)).wrapping_mul(2).wrapping_sub(m);
        let short = self.read_split(s - 1)?;
        if short < thresh {
            Ok(short)
        } else {
            let last = self.read_bits(1)?;
            Ok(((short << 1) | last).wrapping_sub(thresh))
        }
    }

    fn read_split(&mut self, width: u32) -> Result<u64, CodecError> {
        if width > MAX_WIDTH {
            let hi = self.read_bits(width - MAX_WIDTH)?;
            let lo = self.read_bits(MAX_WIDTH)?;
            Ok((hi << MAX_WIDTH) | lo)
        } else {
            self.read_bits(width)
        }
    }

    /// Bits consumed so far, counting whole refilled bytes.
    pub fn bit_pos(&self) -> u64 {
        self.pos as u64 * 8 - self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varint::{read_u64, write_u64};

    /// SplitMix64, the repo-wide seeded generator.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn raw_bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0x7fff, 15);
        w.write_bits(0, 1);
        w.write_bits(0x1234_5678_9abc, 48);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(15).unwrap(), 0x7fff);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(48).unwrap(), 0x1234_5678_9abc);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // 1000_0000 …
        w.write_bits(0b0110, 4);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1011_0000]);
    }

    #[test]
    fn codes_roundtrip_small_and_boundaries() {
        let mut vals: Vec<u64> = (0..200).collect();
        for p in 1..57 {
            vals.push((1u64 << p) - 2);
            vals.push((1u64 << p) - 1);
            vals.push(1u64 << p);
        }
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_unary(v.min(1000));
            w.write_gamma(v);
            w.write_delta(v);
            w.write_zeta(v, 3);
            w.write_zeta(v, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_unary().unwrap(), v.min(1000), "unary {v}");
            assert_eq!(r.read_gamma().unwrap(), v, "gamma {v}");
            assert_eq!(r.read_delta().unwrap(), v, "delta {v}");
            assert_eq!(r.read_zeta(3).unwrap(), v, "zeta3 {v}");
            assert_eq!(r.read_zeta(1).unwrap(), v, "zeta1 {v}");
        }
    }

    #[test]
    fn minimal_binary_exhaustive_small_universes() {
        for m in 1..=70u64 {
            let mut w = BitWriter::new();
            for x in 0..m {
                w.write_minimal_binary(x, m);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for x in 0..m {
                assert_eq!(r.read_minimal_binary(m).unwrap(), x, "m={m}");
            }
        }
    }

    #[test]
    fn seeded_property_roundtrip() {
        // Print the seed so a CI failure names its reproduction input.
        for seed in [3u64, 1776, 0xfeed_f00d] {
            println!("bits property seed {seed}");
            let mut s = seed;
            let mut vals = Vec::new();
            for i in 0..4000u64 {
                s = mix(s ^ i);
                // Mix magnitudes: mostly small (gap-like), some huge.
                let v = match s % 4 {
                    0 => s % 16,
                    1 => s % 4096,
                    2 => s % (1 << 30),
                    _ => s >> 3,
                };
                vals.push(v);
            }
            let mut w = BitWriter::new();
            for (i, &v) in vals.iter().enumerate() {
                match i % 4 {
                    0 => w.write_gamma(v),
                    1 => w.write_delta(v),
                    2 => w.write_zeta(v, 3),
                    _ => w.write_zeta(v, 4),
                }
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (i, &v) in vals.iter().enumerate() {
                let got = match i % 4 {
                    0 => r.read_gamma(),
                    1 => r.read_delta(),
                    2 => r.read_zeta(3),
                    _ => r.read_zeta(4),
                }
                .unwrap();
                assert_eq!(got, v, "seed {seed} index {i}");
            }
        }
    }

    #[test]
    fn truncated_stream_errors_not_panics() {
        let mut w = BitWriter::new();
        for v in 0..64u64 {
            w.write_delta(v * 1000);
        }
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = BitReader::new(&bytes[..cut]);
            let mut fine = 0;
            while let Ok(v) = r.read_delta() {
                // Values decoded before the cut must be correct.
                assert_eq!(v, fine * 1000);
                fine += 1;
                if fine == 64 {
                    break;
                }
            }
        }
    }

    #[test]
    fn gamma_beats_bytes_on_small_gaps() {
        // The whole point of the tier: a gap of 1 costs 1 bit, not 8.
        let mut w = BitWriter::new();
        for _ in 0..1000 {
            w.write_gamma(0);
        }
        assert_eq!(w.finish().len(), 125);
    }

    #[test]
    fn interops_with_byte_aligned_varints() {
        // BV bodies start with a byte-aligned varint header; make sure
        // the two layers compose on the same buffer.
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        let mut w = BitWriter::new();
        w.write_gamma(41);
        buf.extend(w.finish());
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), 300);
        let mut r = BitReader::new(&buf[pos..]);
        assert_eq!(r.read_gamma().unwrap(), 41);
    }
}
