//! Property-based tests for the wire encodings.

use hybridgraph_graph::VertexId;
use hybridgraph_net::combine::{MinCombiner, SumCombiner};
use hybridgraph_net::wire::{decode_batch, encode_batch, BatchKind};
use proptest::prelude::*;
use std::collections::HashMap;

fn batch() -> impl Strategy<Value = Vec<(VertexId, u32)>> {
    prop::collection::vec((0u32..40, 0u32..10_000), 0..200)
        .prop_map(|v| v.into_iter().map(|(d, m)| (VertexId(d), m)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Plain encoding round-trips exactly, in order.
    #[test]
    fn plain_roundtrip(msgs in batch()) {
        let mut input = msgs.clone();
        let (bytes, stats) = encode_batch(BatchKind::Plain, &mut input, None);
        prop_assert_eq!(stats.raw_messages as usize, msgs.len());
        prop_assert_eq!(stats.wire_bytes as usize, bytes.len());
        prop_assert_eq!(stats.saved_messages, 0);
        let back: Vec<(VertexId, u32)> = decode_batch(BatchKind::Plain, &bytes);
        prop_assert_eq!(back, msgs);
    }

    /// Concatenated encoding preserves the multiset of messages.
    #[test]
    fn concat_preserves_multiset(msgs in batch()) {
        let mut input = msgs.clone();
        let (bytes, stats) = encode_batch(BatchKind::Concatenated, &mut input, None);
        prop_assert_eq!(stats.wire_bytes as usize, bytes.len());
        let back: Vec<(VertexId, u32)> = decode_batch(BatchKind::Concatenated, &bytes);
        prop_assert_eq!(back.len(), msgs.len());
        let key = |v: &[(VertexId, u32)]| {
            let mut s: Vec<(u32, u32)> = v.iter().map(|(d, m)| (d.0, *m)).collect();
            s.sort();
            s
        };
        prop_assert_eq!(key(&back), key(&msgs));
        // Savings equal messages minus distinct destinations.
        let distinct: std::collections::HashSet<u32> =
            msgs.iter().map(|(d, _)| d.0).collect();
        prop_assert_eq!(
            stats.saved_messages as usize,
            msgs.len() - distinct.len().min(msgs.len())
        );
    }

    /// Combined (sum) encoding produces per-destination sums.
    #[test]
    fn combined_sums_per_destination(msgs in batch()) {
        let mut input: Vec<(VertexId, u64)> =
            msgs.iter().map(|(d, m)| (*d, *m as u64)).collect();
        let (bytes, stats) = encode_batch(BatchKind::Combined, &mut input, Some(&SumCombiner));
        let back: Vec<(VertexId, u64)> = decode_batch(BatchKind::Combined, &bytes);
        let mut want: HashMap<u32, u64> = HashMap::new();
        for (d, m) in &msgs {
            *want.entry(d.0).or_insert(0) += *m as u64;
        }
        prop_assert_eq!(back.len(), want.len());
        for (d, sum) in back {
            prop_assert_eq!(want.get(&d.0).copied(), Some(sum));
        }
        prop_assert_eq!(stats.wire_values as usize, want.len());
    }

    /// Combined (min) is order-insensitive: shuffled input, same output.
    #[test]
    fn combined_min_order_insensitive(msgs in batch()) {
        let to_f = |v: &[(VertexId, u32)]| -> Vec<(VertexId, f32)> {
            v.iter().map(|(d, m)| (*d, *m as f32)).collect()
        };
        let mut a = to_f(&msgs);
        let mut b = to_f(&msgs);
        b.reverse();
        let (bytes_a, _) = encode_batch(BatchKind::Combined, &mut a, Some(&MinCombiner));
        let (bytes_b, _) = encode_batch(BatchKind::Combined, &mut b, Some(&MinCombiner));
        prop_assert_eq!(bytes_a, bytes_b);
    }

    /// Merging encodings never put MORE values on the wire than plain.
    #[test]
    fn merging_never_increases_values(msgs in batch()) {
        let mut a = msgs.clone();
        let mut b = msgs.clone();
        let (_, plain) = encode_batch(BatchKind::Plain, &mut a, None);
        let (_, comb) = encode_batch(BatchKind::Combined, &mut b, Some(&SumCombiner));
        prop_assert!(comb.wire_values <= plain.wire_values);
        prop_assert!(comb.wire_bytes <= plain.wire_bytes);
        prop_assert_eq!(comb.raw_messages, plain.raw_messages);
    }
}
