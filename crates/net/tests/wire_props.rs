//! Randomized (seeded, reproducible) tests for the wire encodings.
//!
//! Formerly proptest-based; rewritten as plain seeded loops over a
//! [`SplitMix64`] stream so the workspace builds offline.

use hybridgraph_graph::rng::SplitMix64;
use hybridgraph_graph::VertexId;
use hybridgraph_net::combine::{MinCombiner, SumCombiner};
use hybridgraph_net::wire::{decode_batch, encode_batch, BatchKind};
use std::collections::HashMap;

fn batch(r: &mut SplitMix64) -> Vec<(VertexId, u32)> {
    let len = r.range_usize(0, 200);
    (0..len)
        .map(|_| (VertexId(r.below_u32(40)), r.below_u32(10_000)))
        .collect()
}

const CASES: usize = 128;

/// Plain encoding round-trips exactly, in order.
#[test]
fn plain_roundtrip() {
    let mut r = SplitMix64::new(0x71A1);
    for _ in 0..CASES {
        let msgs = batch(&mut r);
        let mut input = msgs.clone();
        let (bytes, stats) = encode_batch(BatchKind::Plain, &mut input, None);
        assert_eq!(stats.raw_messages as usize, msgs.len());
        assert_eq!(stats.wire_bytes as usize, bytes.len());
        assert_eq!(stats.saved_messages, 0);
        let back: Vec<(VertexId, u32)> = decode_batch(BatchKind::Plain, &bytes);
        assert_eq!(back, msgs);
    }
}

/// Concatenated encoding preserves the multiset of messages.
#[test]
fn concat_preserves_multiset() {
    let mut r = SplitMix64::new(0xC0CA);
    for _ in 0..CASES {
        let msgs = batch(&mut r);
        let mut input = msgs.clone();
        let (bytes, stats) = encode_batch(BatchKind::Concatenated, &mut input, None);
        assert_eq!(stats.wire_bytes as usize, bytes.len());
        let back: Vec<(VertexId, u32)> = decode_batch(BatchKind::Concatenated, &bytes);
        assert_eq!(back.len(), msgs.len());
        let key = |v: &[(VertexId, u32)]| {
            let mut s: Vec<(u32, u32)> = v.iter().map(|(d, m)| (d.0, *m)).collect();
            s.sort();
            s
        };
        assert_eq!(key(&back), key(&msgs));
        // Savings equal messages minus distinct destinations.
        let distinct: std::collections::HashSet<u32> = msgs.iter().map(|(d, _)| d.0).collect();
        assert_eq!(
            stats.saved_messages as usize,
            msgs.len() - distinct.len().min(msgs.len())
        );
    }
}

/// Combined (sum) encoding produces per-destination sums.
#[test]
fn combined_sums_per_destination() {
    let mut r = SplitMix64::new(0x5035);
    for _ in 0..CASES {
        let msgs = batch(&mut r);
        let mut input: Vec<(VertexId, u64)> = msgs.iter().map(|(d, m)| (*d, *m as u64)).collect();
        let (bytes, stats) = encode_batch(BatchKind::Combined, &mut input, Some(&SumCombiner));
        let back: Vec<(VertexId, u64)> = decode_batch(BatchKind::Combined, &bytes);
        let mut want: HashMap<u32, u64> = HashMap::new();
        for (d, m) in &msgs {
            *want.entry(d.0).or_insert(0) += *m as u64;
        }
        assert_eq!(back.len(), want.len());
        for (d, sum) in back {
            assert_eq!(want.get(&d.0).copied(), Some(sum));
        }
        assert_eq!(stats.wire_values as usize, want.len());
    }
}

/// Combined (min) is order-insensitive: shuffled input, same output.
#[test]
fn combined_min_order_insensitive() {
    let mut r = SplitMix64::new(0x0D3);
    for _ in 0..CASES {
        let msgs = batch(&mut r);
        let to_f = |v: &[(VertexId, u32)]| -> Vec<(VertexId, f32)> {
            v.iter().map(|(d, m)| (*d, *m as f32)).collect()
        };
        let mut a = to_f(&msgs);
        let mut b = to_f(&msgs);
        b.reverse();
        let (bytes_a, _) = encode_batch(BatchKind::Combined, &mut a, Some(&MinCombiner));
        let (bytes_b, _) = encode_batch(BatchKind::Combined, &mut b, Some(&MinCombiner));
        assert_eq!(bytes_a, bytes_b);
    }
}

/// Merging encodings never put MORE values on the wire than plain.
#[test]
fn merging_never_increases_values() {
    let mut r = SplitMix64::new(0x3E6);
    for _ in 0..CASES {
        let msgs = batch(&mut r);
        let mut a = msgs.clone();
        let mut b = msgs.clone();
        let (_, plain) = encode_batch(BatchKind::Plain, &mut a, None);
        let (_, comb) = encode_batch(BatchKind::Combined, &mut b, Some(&SumCombiner));
        assert!(comb.wire_values <= plain.wire_values);
        assert!(comb.wire_bytes <= plain.wire_bytes);
        assert_eq!(comb.raw_messages, plain.raw_messages);
    }
}
