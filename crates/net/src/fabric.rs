//! The worker-to-worker channel mesh and its traffic accounting.
//!
//! [`Fabric::mesh`] builds one [`Endpoint`] per worker; each endpoint can
//! send to any worker (including itself — loopback traffic is accounted
//! separately because it never crosses the NIC) and receives from all
//! peers over a single inbox. Delivery is reliable and FIFO per
//! sender-receiver pair (std `mpsc` channels), like the TCP transport of
//! the original system. [`ControlPlane`] gives the master an out-of-band
//! path into every inbox for rollback aborts.

use crate::packet::Packet;
use hybridgraph_graph::WorkerId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// One worker's per-direction traffic counters.
#[derive(Debug, Default)]
struct PerWorker {
    out_bytes: AtomicU64,
    in_bytes: AtomicU64,
    local_bytes: AtomicU64,
    raw_msgs_out: AtomicU64,
    wire_values_out: AtomicU64,
    saved_msgs_out: AtomicU64,
    requests_out: AtomicU64,
    packets_out: AtomicU64,
}

/// Cluster-wide network counters, indexed by worker.
#[derive(Debug)]
pub struct NetStats {
    workers: Vec<PerWorker>,
}

impl NetStats {
    fn new(n: usize) -> Self {
        NetStats {
            workers: (0..n).map(|_| PerWorker::default()).collect(),
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn record(&self, from: WorkerId, to: WorkerId, packet: &Packet) {
        let bytes = packet.wire_bytes();
        let src = &self.workers[from.index()];
        if from == to {
            src.local_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            src.out_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.workers[to.index()]
                .in_bytes
                .fetch_add(bytes, Ordering::Relaxed);
        }
        src.packets_out.fetch_add(1, Ordering::Relaxed);
        match packet {
            Packet::Messages { stats, .. } => {
                src.raw_msgs_out
                    .fetch_add(stats.raw_messages, Ordering::Relaxed);
                src.wire_values_out
                    .fetch_add(stats.wire_values, Ordering::Relaxed);
                src.saved_msgs_out
                    .fetch_add(stats.saved_messages, Ordering::Relaxed);
            }
            Packet::PullRequest { .. } => {
                src.requests_out.fetch_add(1, Ordering::Relaxed);
            }
            Packet::GatherRequests { ids } => {
                // One request per vertex id carried.
                src.requests_out
                    .fetch_add(ids.len() as u64 / 4, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            out_bytes: self.collect(|w| &w.out_bytes),
            in_bytes: self.collect(|w| &w.in_bytes),
            local_bytes: self.collect(|w| &w.local_bytes),
            raw_msgs_out: self.collect(|w| &w.raw_msgs_out),
            wire_values_out: self.collect(|w| &w.wire_values_out),
            saved_msgs_out: self.collect(|w| &w.saved_msgs_out),
            requests_out: self.collect(|w| &w.requests_out),
            packets_out: self.collect(|w| &w.packets_out),
        }
    }

    fn collect(&self, f: impl Fn(&PerWorker) -> &AtomicU64) -> Vec<u64> {
        self.workers
            .iter()
            .map(|w| f(w).load(Ordering::Relaxed))
            .collect()
    }
}

/// An immutable copy of [`NetStats`]; supports totals and deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Bytes each worker sent to remote peers.
    pub out_bytes: Vec<u64>,
    /// Bytes each worker received from remote peers.
    pub in_bytes: Vec<u64>,
    /// Loopback bytes (self-sends; never cross the NIC).
    pub local_bytes: Vec<u64>,
    /// Raw (pre-merge) messages each worker emitted.
    pub raw_msgs_out: Vec<u64>,
    /// Values actually on the wire per worker.
    pub wire_values_out: Vec<u64>,
    /// Messages merged away by concatenation/combining per worker (`M_co`).
    pub saved_msgs_out: Vec<u64>,
    /// Pull requests sent per worker.
    pub requests_out: Vec<u64>,
    /// Packets sent per worker.
    pub packets_out: Vec<u64>,
}

impl NetSnapshot {
    /// Total remote bytes (each transfer counted once, at the sender).
    pub fn total_remote_bytes(&self) -> u64 {
        self.out_bytes.iter().sum()
    }

    /// Total raw messages emitted.
    pub fn total_raw_messages(&self) -> u64 {
        self.raw_msgs_out.iter().sum()
    }

    /// Total merged-away messages (`M_co`).
    pub fn total_saved_messages(&self) -> u64 {
        self.saved_msgs_out.iter().sum()
    }

    /// Total pull requests.
    pub fn total_requests(&self) -> u64 {
        self.requests_out.iter().sum()
    }

    /// Element-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &NetSnapshot) -> NetSnapshot {
        fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
            a.iter().zip(b).map(|(x, y)| x - y).collect()
        }
        NetSnapshot {
            out_bytes: sub(&self.out_bytes, &earlier.out_bytes),
            in_bytes: sub(&self.in_bytes, &earlier.in_bytes),
            local_bytes: sub(&self.local_bytes, &earlier.local_bytes),
            raw_msgs_out: sub(&self.raw_msgs_out, &earlier.raw_msgs_out),
            wire_values_out: sub(&self.wire_values_out, &earlier.wire_values_out),
            saved_msgs_out: sub(&self.saved_msgs_out, &earlier.saved_msgs_out),
            requests_out: sub(&self.requests_out, &earlier.requests_out),
            packets_out: sub(&self.packets_out, &earlier.packets_out),
        }
    }
}

/// An addressed packet as received: who sent it and what it is.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The sending worker.
    pub from: WorkerId,
    /// The packet.
    pub packet: Packet,
}

/// One worker's attachment to the fabric.
pub struct Endpoint {
    me: WorkerId,
    txs: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    stats: Arc<NetStats>,
}

impl Endpoint {
    /// This endpoint's worker id.
    pub fn id(&self) -> WorkerId {
        self.me
    }

    /// Number of workers in the mesh.
    pub fn num_workers(&self) -> usize {
        self.txs.len()
    }

    /// Sends `packet` to `to`, accounting its bytes.
    ///
    /// # Panics
    /// Panics if the destination endpoint has been dropped (a worker died
    /// outside the normal shutdown path).
    pub fn send(&self, to: WorkerId, packet: Packet) {
        self.stats.record(self.me, to, &packet);
        self.txs[to.index()]
            .send(Envelope {
                from: self.me,
                packet,
            })
            .expect("destination worker hung up");
    }

    /// Broadcasts `packet` to every worker including self.
    pub fn broadcast(&self, packet: Packet) {
        for w in 0..self.txs.len() {
            self.send(WorkerId::from(w), packet.clone());
        }
    }

    /// Blocking receive.
    pub fn recv(&self) -> Envelope {
        self.rx.recv().expect("fabric closed")
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    /// Receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(e) => Some(e),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => panic!("fabric closed"),
        }
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Discards every packet currently queued in this endpoint's inbox and
    /// returns how many were dropped.
    ///
    /// Used by the rollback protocol: once the master has collected a
    /// terminal report from every worker, all workers are parked and every
    /// in-flight send has been enqueued, so draining here removes exactly
    /// the abandoned superstep's traffic and nothing else.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while self.rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }
}

/// Master-side injector of out-of-band control packets.
///
/// The master is not a worker and owns no [`Endpoint`], but the rollback
/// protocol needs it to interrupt workers that are blocked in `recv()`
/// waiting for a dead peer. A `ControlPlane` holds a sender to every
/// worker inbox; its packets are stamped with the destination's own id
/// (no worker impersonation) and are **not** recorded in [`NetStats`] —
/// they model the master's command channel, which the paper's cost model
/// never charges to the data network.
#[derive(Clone)]
pub struct ControlPlane {
    txs: Vec<Sender<Envelope>>,
}

impl ControlPlane {
    /// Sends `packet` to `to`'s inbox. A dead (dropped) endpoint is
    /// ignored: the failed worker it belonged to is being respawned and
    /// will be restored from a checkpoint anyway.
    pub fn send(&self, to: WorkerId, packet: Packet) {
        let _ = self.txs[to.index()].send(Envelope { from: to, packet });
    }

    /// Sends `packet` to every worker's inbox.
    pub fn broadcast(&self, packet: Packet) {
        for w in 0..self.txs.len() {
            self.send(WorkerId::from(w), packet.clone());
        }
    }
}

/// Builder for the channel mesh.
pub struct Fabric;

impl Fabric {
    /// Creates a fully-connected mesh of `n` endpoints sharing one
    /// [`NetStats`].
    pub fn mesh(n: usize) -> (Vec<Endpoint>, Arc<NetStats>) {
        let (eps, stats, _) = Fabric::mesh_with_control(n);
        (eps, stats)
    }

    /// Like [`Fabric::mesh`], but also returns the master's
    /// [`ControlPlane`] for out-of-band aborts.
    pub fn mesh_with_control(n: usize) -> (Vec<Endpoint>, Arc<NetStats>, ControlPlane) {
        assert!(n >= 1, "mesh needs at least one worker");
        let stats = Arc::new(NetStats::new(n));
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                me: WorkerId::from(i),
                txs: txs.clone(),
                rx,
                stats: Arc::clone(&stats),
            })
            .collect();
        (endpoints, stats, ControlPlane { txs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BatchKind, WireStats};
    use hybridgraph_graph::BlockId;

    fn msg_packet(payload_len: usize, raw: u64, saved: u64) -> Packet {
        Packet::Messages {
            kind: BatchKind::Plain,
            payload: vec![0u8; payload_len].into(),
            stats: WireStats {
                raw_messages: raw,
                wire_values: raw - saved,
                wire_bytes: payload_len as u64,
                saved_messages: saved,
            },
            for_block: None,
        }
    }

    #[test]
    fn send_and_receive() {
        let (eps, _) = Fabric::mesh(2);
        eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(5) });
        let env = eps[1].recv();
        assert_eq!(env.from, WorkerId(0));
        assert!(matches!(env.packet, Packet::PullRequest { block } if block == BlockId(5)));
    }

    #[test]
    fn loopback_counts_separately() {
        let (eps, stats) = Fabric::mesh(2);
        eps[0].send(WorkerId(0), msg_packet(92, 10, 0));
        eps[0].send(WorkerId(1), msg_packet(92, 10, 2));
        let s = stats.snapshot();
        assert_eq!(s.local_bytes[0], 100);
        assert_eq!(s.out_bytes[0], 100);
        assert_eq!(s.in_bytes[1], 100);
        assert_eq!(s.in_bytes[0], 0);
        assert_eq!(s.raw_msgs_out[0], 20);
        assert_eq!(s.saved_msgs_out[0], 2);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (eps, stats) = Fabric::mesh(3);
        eps[1].broadcast(Packet::DoneSending);
        for ep in &eps {
            let env = ep.recv();
            assert_eq!(env.from, WorkerId(1));
            assert!(matches!(env.packet, Packet::DoneSending));
        }
        let s = stats.snapshot();
        assert_eq!(s.packets_out[1], 3);
        // 2 remote sends x 8 header bytes
        assert_eq!(s.out_bytes[1], 16);
        assert_eq!(s.local_bytes[1], 8);
    }

    #[test]
    fn request_counter() {
        let (eps, stats) = Fabric::mesh(2);
        for _ in 0..3 {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(0) });
        }
        assert_eq!(stats.snapshot().total_requests(), 3);
        assert_eq!(stats.snapshot().requests_out[0], 3);
    }

    #[test]
    fn try_recv_and_timeout() {
        let (eps, _) = Fabric::mesh(2);
        assert!(eps[1].try_recv().is_none());
        assert!(eps[1].recv_timeout(Duration::from_millis(5)).is_none());
        eps[0].send(WorkerId(1), Packet::DoneSending);
        assert!(eps[1].try_recv().is_some());
    }

    #[test]
    fn snapshot_delta() {
        let (eps, stats) = Fabric::mesh(2);
        eps[0].send(WorkerId(1), msg_packet(10, 1, 0));
        let a = stats.snapshot();
        eps[0].send(WorkerId(1), msg_packet(20, 2, 1));
        let d = stats.snapshot().delta(&a);
        assert_eq!(d.out_bytes[0], 28);
        assert_eq!(d.raw_msgs_out[0], 2);
        assert_eq!(d.saved_msgs_out[0], 1);
    }

    #[test]
    fn fifo_per_pair() {
        let (eps, _) = Fabric::mesh(2);
        for i in 0..10u32 {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
        }
        for i in 0..10u32 {
            match eps[1].recv().packet {
                Packet::PullRequest { block } => assert_eq!(block, BlockId(i)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn threaded_exchange() {
        let (mut eps, stats) = Fabric::mesh(4);
        let mut handles = Vec::new();
        for ep in eps.drain(..) {
            handles.push(std::thread::spawn(move || {
                // Everyone sends one message to everyone else, then
                // receives n-1 messages.
                for w in 0..ep.num_workers() {
                    if w != ep.id().index() {
                        ep.send(WorkerId::from(w), msg_packet(4, 1, 0));
                    }
                }
                for _ in 0..ep.num_workers() - 1 {
                    ep.recv();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = stats.snapshot();
        assert_eq!(s.total_remote_bytes(), 12 * (8 + 4));
        assert_eq!(s.total_raw_messages(), 12);
    }
}
