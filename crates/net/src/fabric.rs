//! The worker-to-worker channel mesh, its traffic accounting, and the
//! reliable-delivery protocol that makes it usable over a lossy link.
//!
//! [`Fabric::mesh`] builds one [`Endpoint`] per worker; each endpoint can
//! send to any worker (including itself — loopback traffic is accounted
//! separately because it never crosses the NIC) and receives from all
//! peers over a single inbox. [`ControlPlane`] gives the master an
//! out-of-band path into every inbox for rollback aborts.
//!
//! # Reliability
//!
//! The underlying std `mpsc` channels are lossless, but an installed
//! [`NetFaultPlan`] makes the simulated wire drop, duplicate, or delay
//! data frames. On top of that unreliable wire the endpoint runs a
//! classic ARQ protocol, per `(sender, receiver)` link:
//!
//! * every remote data packet carries a per-link **sequence number**;
//! * receivers deliver strictly in order, park out-of-order frames in a
//!   holdback buffer, and drop duplicates;
//! * receivers answer every data frame with a **cumulative ack** (the
//!   next sequence number they expect);
//! * senders keep unacked frames and **retransmit** the oldest one when
//!   its timeout expires, with exponential backoff.
//!
//! Loopback and master control packets travel as `Control` frames that
//! bypass the sequence space: they never cross the simulated wire, so
//! they never fault.
//!
//! # Accounting
//!
//! Logical traffic is recorded **once, at first send** — retransmitted
//! copies, injected duplicates, and acks land in separate overhead
//! counters ([`NetSnapshot::retransmitted_bytes`] and friends) that the
//! cost model ignores. That keeps the hybrid engine's per-superstep
//! byte counts (`Q_t`, Eq. 11) identical between a lossless and a lossy
//! run: the paper's push/b-pull tradeoff is about *semantic* bytes, not
//! about how often the transport had to retry.
//!
//! # Epochs
//!
//! Recovery abandons a superstep midway, which would otherwise leave
//! stale unacked frames retransmitting into a rolled-back peer. Every
//! data frame and ack carries the sender's **epoch**; the master bumps
//! the epoch at each recovery, every endpoint [`Endpoint::reset`]s to
//! it before new traffic starts, and frames from an older epoch are
//! dropped on receipt without an ack (their senders have reset too, so
//! nothing retransmits them).

use crate::netfault::{LinkFault, NetFaultPlan};
use crate::packet::Packet;
use hybridgraph_graph::WorkerId;
use hybridgraph_obs::{ArqEvent, FabricTap};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Initial retransmission timeout per link.
const RTO_BASE: Duration = Duration::from_millis(10);
/// Retransmission timeout ceiling (exponential backoff stops here).
const RTO_MAX: Duration = Duration::from_millis(160);
/// Internal tick used by blocking receives to run maintenance.
const TICK: Duration = Duration::from_millis(5);

/// One worker's per-direction traffic counters.
#[derive(Debug, Default)]
struct PerWorker {
    out_bytes: AtomicU64,
    in_bytes: AtomicU64,
    local_bytes: AtomicU64,
    raw_msgs_out: AtomicU64,
    wire_values_out: AtomicU64,
    saved_msgs_out: AtomicU64,
    requests_out: AtomicU64,
    packets_out: AtomicU64,
}

/// Transport-overhead counters, kept apart from the logical traffic so
/// the cost model can ignore them.
#[derive(Debug, Default)]
struct Overhead {
    retransmitted_bytes: AtomicU64,
    duplicate_drops: AtomicU64,
    dropped_frames: AtomicU64,
    delayed_frames: AtomicU64,
    acks_sent: AtomicU64,
    replayed_bytes: AtomicU64,
}

/// Cluster-wide network counters, indexed by worker.
#[derive(Debug)]
pub struct NetStats {
    workers: Vec<PerWorker>,
    overhead: Overhead,
}

impl NetStats {
    fn new(n: usize) -> Self {
        NetStats {
            workers: (0..n).map(|_| PerWorker::default()).collect(),
            overhead: Overhead::default(),
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    fn record(&self, from: WorkerId, to: WorkerId, packet: &Packet) {
        let bytes = packet.wire_bytes();
        let src = &self.workers[from.index()];
        if from == to {
            src.local_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            src.out_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.workers[to.index()]
                .in_bytes
                .fetch_add(bytes, Ordering::Relaxed);
        }
        src.packets_out.fetch_add(1, Ordering::Relaxed);
        match packet {
            Packet::Messages { stats, .. } => {
                src.raw_msgs_out
                    .fetch_add(stats.raw_messages, Ordering::Relaxed);
                src.wire_values_out
                    .fetch_add(stats.wire_values, Ordering::Relaxed);
                src.saved_msgs_out
                    .fetch_add(stats.saved_messages, Ordering::Relaxed);
            }
            Packet::PullRequest { .. } => {
                src.requests_out.fetch_add(1, Ordering::Relaxed);
            }
            Packet::GatherRequests { ids } => {
                // One request per vertex id carried.
                src.requests_out
                    .fetch_add(ids.len() as u64 / 4, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn bump(&self, f: impl Fn(&Overhead) -> &AtomicU64, n: u64) {
        f(&self.overhead).fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> NetSnapshot {
        let ov = &self.overhead;
        NetSnapshot {
            out_bytes: self.collect(|w| &w.out_bytes),
            in_bytes: self.collect(|w| &w.in_bytes),
            local_bytes: self.collect(|w| &w.local_bytes),
            raw_msgs_out: self.collect(|w| &w.raw_msgs_out),
            wire_values_out: self.collect(|w| &w.wire_values_out),
            saved_msgs_out: self.collect(|w| &w.saved_msgs_out),
            requests_out: self.collect(|w| &w.requests_out),
            packets_out: self.collect(|w| &w.packets_out),
            retransmitted_bytes: ov.retransmitted_bytes.load(Ordering::Relaxed),
            duplicate_drops: ov.duplicate_drops.load(Ordering::Relaxed),
            dropped_frames: ov.dropped_frames.load(Ordering::Relaxed),
            delayed_frames: ov.delayed_frames.load(Ordering::Relaxed),
            acks_sent: ov.acks_sent.load(Ordering::Relaxed),
            replayed_bytes: ov.replayed_bytes.load(Ordering::Relaxed),
        }
    }

    fn collect(&self, f: impl Fn(&PerWorker) -> &AtomicU64) -> Vec<u64> {
        self.workers
            .iter()
            .map(|w| f(w).load(Ordering::Relaxed))
            .collect()
    }
}

/// An immutable copy of [`NetStats`]; supports totals and deltas.
///
/// The per-worker vectors are *logical* traffic — what a lossless
/// network would carry, recorded once per packet at first send. The
/// scalar fields are transport overhead (retries, duplicates, acks,
/// recovery replays); they are reported for observability but excluded
/// from every cost-model input.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Bytes each worker sent to remote peers.
    pub out_bytes: Vec<u64>,
    /// Bytes each worker received from remote peers.
    pub in_bytes: Vec<u64>,
    /// Loopback bytes (self-sends; never cross the NIC).
    pub local_bytes: Vec<u64>,
    /// Raw (pre-merge) messages each worker emitted.
    pub raw_msgs_out: Vec<u64>,
    /// Values actually on the wire per worker.
    pub wire_values_out: Vec<u64>,
    /// Messages merged away by concatenation/combining per worker (`M_co`).
    pub saved_msgs_out: Vec<u64>,
    /// Pull requests sent per worker.
    pub requests_out: Vec<u64>,
    /// Packets sent per worker.
    pub packets_out: Vec<u64>,
    /// Bytes re-sent by the ARQ layer: RTO retransmissions plus
    /// fault-injected duplicate copies. Never part of `Q_t`.
    pub retransmitted_bytes: u64,
    /// Data frames discarded by receivers as already-delivered.
    pub duplicate_drops: u64,
    /// Transmission attempts the fault plan dropped on the wire.
    pub dropped_frames: u64,
    /// Data frames the fault plan held back before delivery.
    pub delayed_frames: u64,
    /// Cumulative acks sent by receivers.
    pub acks_sent: u64,
    /// Bytes re-served from sender-side message logs during confined
    /// recovery. Never part of `Q_t` (the originals were accounted).
    pub replayed_bytes: u64,
}

impl NetSnapshot {
    /// Total remote bytes (each transfer counted once, at the sender).
    pub fn total_remote_bytes(&self) -> u64 {
        self.out_bytes.iter().sum()
    }

    /// Total raw messages emitted.
    pub fn total_raw_messages(&self) -> u64 {
        self.raw_msgs_out.iter().sum()
    }

    /// Total merged-away messages (`M_co`).
    pub fn total_saved_messages(&self) -> u64 {
        self.saved_msgs_out.iter().sum()
    }

    /// Total pull requests.
    pub fn total_requests(&self) -> u64 {
        self.requests_out.iter().sum()
    }

    /// Element-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &NetSnapshot) -> NetSnapshot {
        fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
            a.iter().zip(b).map(|(x, y)| x - y).collect()
        }
        NetSnapshot {
            out_bytes: sub(&self.out_bytes, &earlier.out_bytes),
            in_bytes: sub(&self.in_bytes, &earlier.in_bytes),
            local_bytes: sub(&self.local_bytes, &earlier.local_bytes),
            raw_msgs_out: sub(&self.raw_msgs_out, &earlier.raw_msgs_out),
            wire_values_out: sub(&self.wire_values_out, &earlier.wire_values_out),
            saved_msgs_out: sub(&self.saved_msgs_out, &earlier.saved_msgs_out),
            requests_out: sub(&self.requests_out, &earlier.requests_out),
            packets_out: sub(&self.packets_out, &earlier.packets_out),
            retransmitted_bytes: self.retransmitted_bytes - earlier.retransmitted_bytes,
            duplicate_drops: self.duplicate_drops - earlier.duplicate_drops,
            dropped_frames: self.dropped_frames - earlier.dropped_frames,
            delayed_frames: self.delayed_frames - earlier.delayed_frames,
            acks_sent: self.acks_sent - earlier.acks_sent,
            replayed_bytes: self.replayed_bytes - earlier.replayed_bytes,
        }
    }
}

/// An addressed packet as received: who sent it and what it is.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The sending worker.
    pub from: WorkerId,
    /// The packet.
    pub packet: Packet,
}

/// What actually travels over the channels.
#[derive(Clone, Debug)]
enum Frame {
    /// A sequenced, acked, fault-exposed data frame.
    Data {
        epoch: u64,
        seq: u64,
        packet: Packet,
    },
    /// Cumulative ack: `cum` is the next sequence the receiver expects.
    /// Acks ride the reverse wire but never fault — modeling them as
    /// small, heavily-retried control traffic keeps the protocol's
    /// liveness argument trivial without changing what it measures.
    Ack { epoch: u64, cum: u64 },
    /// Unsequenced frame: loopback, master control, or recovery replay.
    Control { packet: Packet },
}

struct RawEnvelope {
    from: WorkerId,
    frame: Frame,
}

/// Sender side of one directed link.
struct SendLink {
    next_seq: u64,
    unacked: VecDeque<Unacked>,
    rto: Duration,
    last_tx: Instant,
}

struct Unacked {
    seq: u64,
    packet: Packet,
    attempts: u32,
}

impl SendLink {
    fn new() -> Self {
        SendLink {
            next_seq: 0,
            unacked: VecDeque::new(),
            rto: RTO_BASE,
            last_tx: Instant::now(),
        }
    }
}

/// Receiver side of one directed link.
struct RecvLink {
    expected: u64,
    ooo: BTreeMap<u64, Packet>,
}

/// A fault-delayed frame awaiting its release time.
struct Delayed {
    due: Instant,
    to: WorkerId,
    frame: Frame,
}

/// The endpoint's mutable protocol state. Interior-mutable because the
/// public API takes `&self` (an endpoint is owned by exactly one worker
/// thread).
struct EpState {
    epoch: u64,
    out: Vec<SendLink>,
    inn: Vec<RecvLink>,
    ready: VecDeque<Envelope>,
    delayed: Vec<Delayed>,
    faults: Option<Arc<NetFaultPlan>>,
    capture: Option<Vec<(WorkerId, Packet)>>,
    suppress: bool,
    /// Observation hook for ARQ-level occurrences (retransmits, acks,
    /// fault firings). Purely additive: never touches any counter the
    /// cost model reads.
    tap: Option<Arc<dyn FabricTap>>,
}

/// One worker's attachment to the fabric.
pub struct Endpoint {
    me: WorkerId,
    txs: Vec<Sender<RawEnvelope>>,
    rx: Receiver<RawEnvelope>,
    stats: Arc<NetStats>,
    state: RefCell<EpState>,
}

impl Endpoint {
    /// This endpoint's worker id.
    pub fn id(&self) -> WorkerId {
        self.me
    }

    /// Number of workers in the mesh.
    pub fn num_workers(&self) -> usize {
        self.txs.len()
    }

    /// Installs a network-fault schedule on this endpoint's outgoing
    /// links. Typically called once per endpoint right after
    /// [`Fabric::mesh`], sharing one plan across the mesh.
    pub fn install_faults(&self, plan: Arc<NetFaultPlan>) {
        self.state.borrow_mut().faults = Some(plan);
    }

    /// Installs an ARQ observation tap on this endpoint. The tap sees
    /// retransmissions, acks, duplicate discards and fault firings; it is
    /// never consulted for logical traffic, so installing one cannot
    /// change any byte count the cost model reads.
    pub fn install_tap(&self, tap: Arc<dyn FabricTap>) {
        self.state.borrow_mut().tap = Some(tap);
    }

    /// Sends `packet` to `to`, accounting its bytes.
    ///
    /// Remote packets enter the reliable-delivery pipeline (sequencing,
    /// acks, retransmission, fault exposure); loopback packets bypass it.
    /// In replay mode ([`Endpoint::set_replay`]) remote sends are
    /// silently discarded and nothing is accounted: the original
    /// transmission already was, and survivors re-serve it from their
    /// logs.
    pub fn send(&self, to: WorkerId, packet: Packet) {
        let mut st = self.state.borrow_mut();
        if st.suppress {
            if to == self.me {
                self.raw_send(to, Frame::Control { packet });
            }
            return;
        }
        self.stats.record(self.me, to, &packet);
        if to == self.me {
            self.raw_send(to, Frame::Control { packet });
            return;
        }
        if let Some(cap) = st.capture.as_mut() {
            cap.push((to, packet.clone()));
        }
        let seq = {
            let link = &mut st.out[to.index()];
            let seq = link.next_seq;
            link.next_seq += 1;
            if link.unacked.is_empty() {
                link.rto = RTO_BASE;
                link.last_tx = Instant::now();
            }
            link.unacked.push_back(Unacked {
                seq,
                packet: packet.clone(),
                attempts: 0,
            });
            seq
        };
        self.transmit(&mut st, to, seq, packet, 0);
    }

    /// Re-serves a logged packet during confined recovery. Travels as a
    /// control frame (no faults, no sequencing — the log already fixed
    /// the order) and is accounted only as `replayed_bytes`.
    pub fn send_replay(&self, to: WorkerId, packet: Packet) {
        self.stats.bump(|o| &o.replayed_bytes, packet.wire_bytes());
        self.raw_send(to, Frame::Control { packet });
    }

    /// Starts recording every remote send as `(destination, packet)`
    /// for the sender-side message log.
    pub fn start_capture(&self) {
        self.state.borrow_mut().capture = Some(Vec::new());
    }

    /// Stops capturing and returns the recorded sends (empty if capture
    /// was never started or was cleared by a reset).
    pub fn take_capture(&self) -> Vec<(WorkerId, Packet)> {
        self.state.borrow_mut().capture.take().unwrap_or_default()
    }

    /// Enables/disables replay mode: remote sends are discarded
    /// unaccounted, loopback still delivers (unaccounted).
    pub fn set_replay(&self, on: bool) {
        self.state.borrow_mut().suppress = on;
    }

    /// Moves this endpoint to a new epoch: discards every queued frame,
    /// all link state (sequence numbers, unacked frames, holdbacks),
    /// any capture, and replay mode. Frames from earlier epochs that
    /// arrive later are dropped on receipt.
    pub fn reset(&self, epoch: u64) {
        let mut st = self.state.borrow_mut();
        while self.rx.try_recv().is_ok() {}
        st.epoch = epoch;
        for l in &mut st.out {
            l.next_seq = 0;
            l.unacked.clear();
            l.rto = RTO_BASE;
        }
        for l in &mut st.inn {
            l.expected = 0;
            l.ooo.clear();
        }
        st.ready.clear();
        st.delayed.clear();
        st.capture = None;
        st.suppress = false;
    }

    /// Broadcasts `packet` to every worker including self.
    pub fn broadcast(&self, packet: Packet) {
        for w in 0..self.txs.len() {
            self.send(WorkerId::from(w), packet.clone());
        }
    }

    /// Runs one round of protocol upkeep: ingests queued frames,
    /// releases fault-delayed frames whose holdback expired, and
    /// retransmits timed-out unacked frames. Workers call this while
    /// idle between commands so parked senders still answer their
    /// peers' missing-frame timeouts.
    pub fn service(&self) {
        let mut st = self.state.borrow_mut();
        self.pump(&mut st);
        self.maintenance(&mut st);
    }

    /// Blocking receive of the next in-order packet.
    pub fn recv(&self) -> Envelope {
        loop {
            {
                let mut st = self.state.borrow_mut();
                self.pump(&mut st);
                if let Some(e) = st.ready.pop_front() {
                    return e;
                }
                self.maintenance(&mut st);
            }
            match self.rx.recv_timeout(TICK) {
                Ok(env) => {
                    let mut st = self.state.borrow_mut();
                    self.handle_raw(&mut st, env);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    let mut st = self.state.borrow_mut();
                    if let Some(e) = st.ready.pop_front() {
                        return e;
                    }
                    panic!("fabric closed");
                }
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        let mut st = self.state.borrow_mut();
        self.pump(&mut st);
        st.ready.pop_front()
    }

    /// Receive with a timeout; `None` if no in-order packet became
    /// deliverable before it expired. Runs protocol maintenance on
    /// every internal tick, so retransmissions keep flowing while the
    /// caller waits.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut st = self.state.borrow_mut();
                self.pump(&mut st);
                if let Some(e) = st.ready.pop_front() {
                    return Some(e);
                }
                self.maintenance(&mut st);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.rx.recv_timeout(TICK.min(deadline - now)) {
                Ok(env) => {
                    let mut st = self.state.borrow_mut();
                    self.handle_raw(&mut st, env);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    let mut st = self.state.borrow_mut();
                    if let Some(e) = st.ready.pop_front() {
                        return Some(e);
                    }
                    panic!("fabric closed");
                }
            }
        }
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Discards every undelivered packet queued at this endpoint —
    /// in-order-ready, raw-queued, and out-of-order held — and returns
    /// how many were dropped. Logical traffic counters are untouched
    /// (they were recorded at send time).
    pub fn drain(&self) -> usize {
        let mut st = self.state.borrow_mut();
        self.pump(&mut st);
        let mut n = st.ready.len();
        st.ready.clear();
        for l in &mut st.inn {
            n += l.ooo.len();
            l.ooo.clear();
        }
        n
    }

    /// Reports an ARQ occurrence on the link `self → peer` (or
    /// `peer → self` for receive-side events; the tap records the
    /// direction it is given) to the installed tap, if any.
    fn observe(&self, st: &EpState, peer: WorkerId, event: ArqEvent) {
        if let Some(tap) = &st.tap {
            match event {
                ArqEvent::AckSent | ArqEvent::DupDrop => {
                    tap.arq(peer.index(), self.me.index(), event)
                }
                _ => tap.arq(self.me.index(), peer.index(), event),
            }
        }
    }

    fn raw_send(&self, to: WorkerId, frame: Frame) {
        // A dead destination (worker being respawned) is not an error:
        // its state is being restored from a checkpoint anyway.
        let _ = self.txs[to.index()].send(RawEnvelope {
            from: self.me,
            frame,
        });
    }

    /// One physical transmission attempt of a data frame, exposed to
    /// the fault plan. `attempt` > 0 means an RTO retransmission.
    fn transmit(&self, st: &mut EpState, to: WorkerId, seq: u64, packet: Packet, attempt: u32) {
        let bytes = packet.wire_bytes();
        if attempt > 0 {
            self.stats.bump(|o| &o.retransmitted_bytes, bytes);
            self.observe(st, to, ArqEvent::Retransmit { bytes });
        }
        let decision = match &st.faults {
            Some(plan) => plan.decision(self.me.index(), to.index(), seq, attempt),
            None => LinkFault::Deliver,
        };
        let frame = Frame::Data {
            epoch: st.epoch,
            seq,
            packet,
        };
        match decision {
            LinkFault::Deliver => self.raw_send(to, frame),
            LinkFault::Drop => {
                self.stats.bump(|o| &o.dropped_frames, 1);
                self.observe(st, to, ArqEvent::FaultDrop);
            }
            LinkFault::Duplicate => {
                self.stats.bump(|o| &o.retransmitted_bytes, bytes);
                self.observe(st, to, ArqEvent::FaultDuplicate);
                self.raw_send(to, frame.clone());
                self.raw_send(to, frame);
            }
            LinkFault::Delay => {
                self.stats.bump(|o| &o.delayed_frames, 1);
                self.observe(st, to, ArqEvent::FaultDelay);
                let millis = st.faults.as_ref().map_or(2, |p| p.delay_millis());
                st.delayed.push(Delayed {
                    due: Instant::now() + Duration::from_millis(millis),
                    to,
                    frame,
                });
            }
        }
    }

    /// Ingests everything currently queued on the raw channel.
    fn pump(&self, st: &mut EpState) {
        while let Ok(env) = self.rx.try_recv() {
            self.handle_raw(st, env);
        }
    }

    fn handle_raw(&self, st: &mut EpState, env: RawEnvelope) {
        match env.frame {
            Frame::Control { packet } => st.ready.push_back(Envelope {
                from: env.from,
                packet,
            }),
            Frame::Data { epoch, seq, packet } => {
                if epoch != st.epoch {
                    // Stale frame from before a recovery reset. No ack:
                    // its sender has reset too and forgotten it.
                    return;
                }
                let from = env.from;
                let link = &mut st.inn[from.index()];
                if seq < link.expected {
                    self.stats.bump(|o| &o.duplicate_drops, 1);
                    self.observe(st, from, ArqEvent::DupDrop);
                } else if seq == link.expected {
                    link.expected += 1;
                    st.ready.push_back(Envelope { from, packet });
                    // Release any consecutive held-back frames.
                    let link = &mut st.inn[from.index()];
                    while let Some(p) = link.ooo.remove(&link.expected) {
                        link.expected += 1;
                        st.ready.push_back(Envelope { from, packet: p });
                    }
                } else if link.ooo.insert(seq, packet).is_some() {
                    // The held-back slot already had this frame: a dup
                    // of an out-of-order arrival. (Re-inserting the same
                    // packet is harmless — frames are immutable.)
                    self.stats.bump(|o| &o.duplicate_drops, 1);
                    self.observe(st, from, ArqEvent::DupDrop);
                }
                let cum = st.inn[from.index()].expected;
                self.stats.bump(|o| &o.acks_sent, 1);
                self.observe(st, from, ArqEvent::AckSent);
                self.raw_send(
                    from,
                    Frame::Ack {
                        epoch: st.epoch,
                        cum,
                    },
                );
            }
            Frame::Ack { epoch, cum } => {
                if epoch != st.epoch {
                    return;
                }
                let link = &mut st.out[env.from.index()];
                let mut progressed = false;
                while link.unacked.front().is_some_and(|u| u.seq < cum) {
                    link.unacked.pop_front();
                    progressed = true;
                }
                if progressed {
                    link.rto = RTO_BASE;
                    link.last_tx = Instant::now();
                }
            }
        }
    }

    /// Releases due fault-delayed frames and retransmits the oldest
    /// unacked frame of every link whose RTO expired.
    fn maintenance(&self, st: &mut EpState) {
        let now = Instant::now();
        let mut i = 0;
        while i < st.delayed.len() {
            if st.delayed[i].due <= now {
                let d = st.delayed.swap_remove(i);
                self.raw_send(d.to, d.frame);
            } else {
                i += 1;
            }
        }
        let mut retx: Vec<(WorkerId, u64, Packet, u32)> = Vec::new();
        for (w, link) in st.out.iter_mut().enumerate() {
            if let Some(front) = link.unacked.front_mut() {
                if now.duration_since(link.last_tx) >= link.rto {
                    front.attempts += 1;
                    retx.push((
                        WorkerId::from(w),
                        front.seq,
                        front.packet.clone(),
                        front.attempts,
                    ));
                    link.rto = (link.rto * 2).min(RTO_MAX);
                    link.last_tx = now;
                }
            }
        }
        for (to, seq, packet, attempts) in retx {
            self.transmit(st, to, seq, packet, attempts);
        }
    }
}

/// Master-side injector of out-of-band control packets.
///
/// The master is not a worker and owns no [`Endpoint`], but the rollback
/// protocol needs it to interrupt workers that are blocked in `recv()`
/// waiting for a dead peer. A `ControlPlane` holds a sender to every
/// worker inbox; its packets are stamped with the destination's own id
/// (no worker impersonation) and are **not** recorded in [`NetStats`] —
/// they model the master's command channel, which the paper's cost model
/// never charges to the data network.
#[derive(Clone)]
pub struct ControlPlane {
    txs: Vec<Sender<RawEnvelope>>,
}

impl ControlPlane {
    /// Sends `packet` to `to`'s inbox. A dead (dropped) endpoint is
    /// ignored: the failed worker it belonged to is being respawned and
    /// will be restored from a checkpoint anyway.
    pub fn send(&self, to: WorkerId, packet: Packet) {
        let _ = self.txs[to.index()].send(RawEnvelope {
            from: to,
            frame: Frame::Control { packet },
        });
    }

    /// Sends `packet` to every worker's inbox.
    pub fn broadcast(&self, packet: Packet) {
        for w in 0..self.txs.len() {
            self.send(WorkerId::from(w), packet.clone());
        }
    }
}

/// Builder for the channel mesh.
pub struct Fabric;

impl Fabric {
    /// Creates a fully-connected mesh of `n` endpoints sharing one
    /// [`NetStats`].
    pub fn mesh(n: usize) -> (Vec<Endpoint>, Arc<NetStats>) {
        let (eps, stats, _) = Fabric::mesh_with_control(n);
        (eps, stats)
    }

    /// Like [`Fabric::mesh`], but also returns the master's
    /// [`ControlPlane`] for out-of-band aborts.
    pub fn mesh_with_control(n: usize) -> (Vec<Endpoint>, Arc<NetStats>, ControlPlane) {
        assert!(n >= 1, "mesh needs at least one worker");
        let stats = Arc::new(NetStats::new(n));
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                me: WorkerId::from(i),
                txs: txs.clone(),
                rx,
                stats: Arc::clone(&stats),
                state: RefCell::new(EpState {
                    epoch: 0,
                    out: (0..n).map(|_| SendLink::new()).collect(),
                    inn: (0..n)
                        .map(|_| RecvLink {
                            expected: 0,
                            ooo: BTreeMap::new(),
                        })
                        .collect(),
                    ready: VecDeque::new(),
                    delayed: Vec::new(),
                    faults: None,
                    capture: None,
                    suppress: false,
                    tap: None,
                }),
            })
            .collect();
        (endpoints, stats, ControlPlane { txs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{BatchKind, WireStats};
    use hybridgraph_graph::BlockId;

    fn msg_packet(payload_len: usize, raw: u64, saved: u64) -> Packet {
        Packet::Messages {
            kind: BatchKind::Plain,
            payload: vec![0u8; payload_len].into(),
            stats: WireStats {
                raw_messages: raw,
                wire_values: raw - saved,
                wire_bytes: payload_len as u64,
                saved_messages: saved,
            },
            for_block: None,
        }
    }

    #[test]
    fn send_and_receive() {
        let (eps, _) = Fabric::mesh(2);
        eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(5) });
        let env = eps[1].recv();
        assert_eq!(env.from, WorkerId(0));
        assert!(matches!(env.packet, Packet::PullRequest { block } if block == BlockId(5)));
    }

    #[test]
    fn loopback_counts_separately() {
        let (eps, stats) = Fabric::mesh(2);
        eps[0].send(WorkerId(0), msg_packet(92, 10, 0));
        eps[0].send(WorkerId(1), msg_packet(92, 10, 2));
        let s = stats.snapshot();
        assert_eq!(s.local_bytes[0], 100);
        assert_eq!(s.out_bytes[0], 100);
        assert_eq!(s.in_bytes[1], 100);
        assert_eq!(s.in_bytes[0], 0);
        assert_eq!(s.raw_msgs_out[0], 20);
        assert_eq!(s.saved_msgs_out[0], 2);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let (eps, stats) = Fabric::mesh(3);
        eps[1].broadcast(Packet::DoneSending);
        for ep in &eps {
            let env = ep.recv();
            assert_eq!(env.from, WorkerId(1));
            assert!(matches!(env.packet, Packet::DoneSending));
        }
        let s = stats.snapshot();
        assert_eq!(s.packets_out[1], 3);
        // 2 remote sends x 8 header bytes
        assert_eq!(s.out_bytes[1], 16);
        assert_eq!(s.local_bytes[1], 8);
    }

    #[test]
    fn request_counter() {
        let (eps, stats) = Fabric::mesh(2);
        for _ in 0..3 {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(0) });
        }
        assert_eq!(stats.snapshot().total_requests(), 3);
        assert_eq!(stats.snapshot().requests_out[0], 3);
    }

    #[test]
    fn try_recv_and_timeout() {
        let (eps, _) = Fabric::mesh(2);
        assert!(eps[1].try_recv().is_none());
        assert!(eps[1].recv_timeout(Duration::from_millis(5)).is_none());
        eps[0].send(WorkerId(1), Packet::DoneSending);
        assert!(eps[1].try_recv().is_some());
    }

    #[test]
    fn snapshot_delta() {
        let (eps, stats) = Fabric::mesh(2);
        eps[0].send(WorkerId(1), msg_packet(10, 1, 0));
        let a = stats.snapshot();
        eps[0].send(WorkerId(1), msg_packet(20, 2, 1));
        let d = stats.snapshot().delta(&a);
        assert_eq!(d.out_bytes[0], 28);
        assert_eq!(d.raw_msgs_out[0], 2);
        assert_eq!(d.saved_msgs_out[0], 1);
    }

    #[test]
    fn fifo_per_pair() {
        let (eps, _) = Fabric::mesh(2);
        for i in 0..10u32 {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
        }
        for i in 0..10u32 {
            match eps[1].recv().packet {
                Packet::PullRequest { block } => assert_eq!(block, BlockId(i)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn threaded_exchange() {
        let (mut eps, stats) = Fabric::mesh(4);
        let mut handles = Vec::new();
        for ep in eps.drain(..) {
            handles.push(std::thread::spawn(move || {
                // Everyone sends one message to everyone else, then
                // receives n-1 messages.
                for w in 0..ep.num_workers() {
                    if w != ep.id().index() {
                        ep.send(WorkerId::from(w), msg_packet(4, 1, 0));
                    }
                }
                for _ in 0..ep.num_workers() - 1 {
                    ep.recv();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = stats.snapshot();
        assert_eq!(s.total_remote_bytes(), 12 * (8 + 4));
        assert_eq!(s.total_raw_messages(), 12);
    }

    /// A 100%-drop-first-attempt plan: every packet still arrives, in
    /// order, because the ARQ layer retransmits it — and the logical
    /// byte counts are identical to a lossless run.
    #[test]
    fn retransmission_survives_heavy_drops() {
        let (eps, stats) = Fabric::mesh(2);
        let plan = Arc::new(NetFaultPlan::new(5).with_drops(1000, 3));
        for ep in &eps {
            ep.install_faults(Arc::clone(&plan));
        }
        let n = 20u32;
        for i in 0..n {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
        }
        // Retransmission is driven by the *sender's* maintenance: tick
        // both sides, as each worker thread does while waiting.
        let mut got = 0u32;
        while got < n {
            eps[0].service();
            if let Some(env) = eps[1].recv_timeout(Duration::from_millis(5)) {
                match env.packet {
                    Packet::PullRequest { block } => assert_eq!(block, BlockId(got)),
                    other => panic!("unexpected {other:?}"),
                }
                got += 1;
            }
        }
        let s = stats.snapshot();
        // Logical accounting: exactly n packets, once each.
        assert_eq!(s.packets_out[0], u64::from(n));
        assert_eq!(s.out_bytes[0], u64::from(n) * 8);
        // The wire saw drops and paid retransmissions — overhead only.
        assert!(s.dropped_frames >= u64::from(n));
        assert!(s.retransmitted_bytes > 0);
        assert!(plan.drops_fired() >= u64::from(n));
    }

    /// Duplicated and delayed frames are deduped and reordered back
    /// into sequence by the receiver.
    #[test]
    fn duplicates_and_delays_are_masked() {
        let (eps, stats) = Fabric::mesh(2);
        let plan = Arc::new(
            NetFaultPlan::new(77)
                .with_duplicates(400)
                .with_delays(300, 1),
        );
        for ep in &eps {
            ep.install_faults(Arc::clone(&plan));
        }
        let n = 60u32;
        for i in 0..n {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
        }
        let mut got = 0u32;
        while got < n {
            eps[0].service(); // releases the sender-held delayed frames
            if let Some(env) = eps[1].recv_timeout(Duration::from_millis(5)) {
                match env.packet {
                    Packet::PullRequest { block } => assert_eq!(block, BlockId(got)),
                    other => panic!("unexpected {other:?}"),
                }
                got += 1;
            }
        }
        let s = stats.snapshot();
        assert_eq!(s.packets_out[0], u64::from(n));
        assert!(s.duplicate_drops > 0, "duplicates must be dropped");
        assert!(s.delayed_frames > 0, "some frames must be delayed");
        assert!(plan.duplicates_fired() > 0 && plan.delays_fired() > 0);
    }

    /// Frames from an older epoch are discarded after a reset, and the
    /// sequence space restarts cleanly.
    #[test]
    fn reset_drops_stale_epoch_traffic() {
        let (eps, _) = Fabric::mesh(2);
        eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(9) });
        // Receiver resets before looking: the queued epoch-0 frame dies.
        eps[1].reset(1);
        assert!(eps[1].try_recv().is_none());
        // Sender resets too; new-epoch traffic flows normally.
        eps[0].reset(1);
        eps[0].send(WorkerId(1), Packet::DoneSending);
        let env = eps[1].recv();
        assert!(matches!(env.packet, Packet::DoneSending));
    }

    /// Replay mode: remote sends vanish unaccounted, loopback still
    /// works, and `send_replay` is visible only as `replayed_bytes`.
    #[test]
    fn replay_mode_accounting() {
        let (eps, stats) = Fabric::mesh(2);
        let before = stats.snapshot();
        eps[0].set_replay(true);
        eps[0].send(WorkerId(1), msg_packet(50, 5, 0)); // suppressed
        eps[0].send(WorkerId(0), Packet::DoneSending); // loopback delivers
        assert!(matches!(eps[0].recv().packet, Packet::DoneSending));
        eps[0].set_replay(false);
        eps[1].send_replay(WorkerId(0), msg_packet(30, 3, 0));
        assert!(matches!(eps[0].recv().packet, Packet::Messages { .. }));
        let d = stats.snapshot().delta(&before);
        assert_eq!(d.total_remote_bytes(), 0);
        assert_eq!(d.local_bytes[0], 0);
        assert_eq!(d.replayed_bytes, 8 + 30);
        assert!(eps[1].try_recv().is_none(), "suppressed send must vanish");
    }

    /// `recv_timeout` expires on a quiet inbox close to the requested
    /// deadline, and the wait does not disturb any counter.
    #[test]
    fn recv_timeout_expiry_is_clean() {
        let (eps, stats) = Fabric::mesh(2);
        let before = stats.snapshot();
        let t0 = Instant::now();
        assert!(eps[1].recv_timeout(Duration::from_millis(30)).is_none());
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(30), "returned early");
        assert!(waited < Duration::from_secs(2), "overslept");
        assert_eq!(stats.snapshot(), before, "an idle wait must not count");
        // A packet queued before the call returns immediately.
        eps[0].send(WorkerId(1), Packet::DoneSending);
        assert!(eps[1].recv_timeout(Duration::from_secs(5)).is_some());
    }

    /// `drain` discards exactly the undelivered packets — ready,
    /// raw-queued, and out-of-order-held — while the logical send-side
    /// counters stay untouched (they were recorded at send time).
    #[test]
    fn drain_counts_and_counter_consistency() {
        let (eps, stats) = Fabric::mesh(2);
        for i in 0..4u32 {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
        }
        eps[1].recv(); // deliver one, leave three queued
        let before = stats.snapshot();
        assert_eq!(eps[1].drain(), 3);
        assert_eq!(eps[1].drain(), 0, "drain must be idempotent");
        assert!(eps[1].try_recv().is_none());
        let after = stats.snapshot();
        assert_eq!(after.out_bytes, before.out_bytes);
        assert_eq!(after.in_bytes, before.in_bytes);
        assert_eq!(after.packets_out, before.packets_out);
        // The fabric remains usable after a drain.
        eps[0].send(WorkerId(1), Packet::DoneSending);
        assert!(matches!(eps[1].recv().packet, Packet::DoneSending));
    }

    /// `drain` also sweeps frames parked in the out-of-order holdback.
    #[test]
    fn drain_sweeps_held_out_of_order_frames() {
        let (eps, _) = Fabric::mesh(2);
        // Drop the first attempt of everything: with no sender service,
        // every frame is stuck... except that drops happen at send time,
        // so instead use a delay-all plan and drain before release.
        let plan = Arc::new(NetFaultPlan::new(123).with_drops(500, 1));
        eps[0].install_faults(Arc::clone(&plan));
        for i in 0..12u32 {
            eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
        }
        // With ~half the frames dropped on first attempt, the receiver
        // holds the survivors that arrived past the first gap.
        let delivered_then_drained = {
            let mut got = 0;
            while eps[1].try_recv().is_some() {
                got += 1;
            }
            got + eps[1].drain()
        };
        // Drained + delivered can't exceed what was actually sent.
        assert!(delivered_then_drained <= 12);
        assert!(plan.drops_fired() > 0);
        // After a matching reset on both sides the link works again.
        eps[0].reset(1);
        eps[1].reset(1);
        eps[0].send(WorkerId(1), Packet::DoneSending);
        let mut env = None;
        for _ in 0..400 {
            eps[0].service();
            if let Some(e) = eps[1].recv_timeout(Duration::from_millis(5)) {
                env = Some(e);
                break;
            }
        }
        assert!(matches!(env.unwrap().packet, Packet::DoneSending));
    }

    /// `delta` round-trip: `earlier + (later - earlier) == later`,
    /// including the overhead scalars, and a self-delta is zero.
    #[test]
    fn snapshot_delta_round_trip() {
        let (eps, stats) = Fabric::mesh(2);
        let plan = Arc::new(NetFaultPlan::new(21).with_duplicates(1000));
        eps[0].install_faults(plan);
        eps[0].send(WorkerId(1), msg_packet(16, 2, 0));
        let a = stats.snapshot();
        eps[0].send(WorkerId(1), msg_packet(24, 3, 1));
        eps[1].service();
        let b = stats.snapshot();
        let d = b.delta(&a);
        // Reconstruct `b` from `a + d`, field by field.
        fn add(x: &[u64], y: &[u64]) -> Vec<u64> {
            x.iter().zip(y).map(|(p, q)| p + q).collect()
        }
        let rebuilt = NetSnapshot {
            out_bytes: add(&a.out_bytes, &d.out_bytes),
            in_bytes: add(&a.in_bytes, &d.in_bytes),
            local_bytes: add(&a.local_bytes, &d.local_bytes),
            raw_msgs_out: add(&a.raw_msgs_out, &d.raw_msgs_out),
            wire_values_out: add(&a.wire_values_out, &d.wire_values_out),
            saved_msgs_out: add(&a.saved_msgs_out, &d.saved_msgs_out),
            requests_out: add(&a.requests_out, &d.requests_out),
            packets_out: add(&a.packets_out, &d.packets_out),
            retransmitted_bytes: a.retransmitted_bytes + d.retransmitted_bytes,
            duplicate_drops: a.duplicate_drops + d.duplicate_drops,
            dropped_frames: a.dropped_frames + d.dropped_frames,
            delayed_frames: a.delayed_frames + d.delayed_frames,
            acks_sent: a.acks_sent + d.acks_sent,
            replayed_bytes: a.replayed_bytes + d.replayed_bytes,
        };
        assert_eq!(rebuilt, b);
        let zero = b.delta(&b);
        assert_eq!(zero.total_remote_bytes(), 0);
        assert_eq!(zero.retransmitted_bytes, 0);
        assert_eq!(zero.duplicate_drops, 0);
        // Every duplicate was deduped, never delivered twice.
        assert!(b.duplicate_drops > 0);
    }

    /// An installed tap sees fault firings, retransmissions and acks,
    /// and installing it changes no logical traffic counter.
    #[test]
    fn tap_observes_arq_without_touching_accounting() {
        use hybridgraph_obs::ArqCounters;
        let run = |with_tap: bool| {
            let (eps, stats) = Fabric::mesh(2);
            let plan = Arc::new(NetFaultPlan::new(5).with_drops(1000, 3));
            let tap = Arc::new(ArqCounters::new());
            for ep in &eps {
                ep.install_faults(Arc::clone(&plan));
                if with_tap {
                    ep.install_tap(tap.clone() as Arc<dyn FabricTap>);
                }
            }
            let n = 10u32;
            for i in 0..n {
                eps[0].send(WorkerId(1), Packet::PullRequest { block: BlockId(i) });
            }
            let mut got = 0u32;
            while got < n {
                eps[0].service();
                if eps[1].recv_timeout(Duration::from_millis(5)).is_some() {
                    got += 1;
                }
            }
            let s = stats.snapshot();
            (s.packets_out[0], s.out_bytes[0], tap.snapshot())
        };
        let (pkts_off, bytes_off, tap_off) = run(false);
        let (pkts_on, bytes_on, tap_on) = run(true);
        assert_eq!(pkts_off, pkts_on);
        assert_eq!(bytes_off, bytes_on, "tap must not perturb accounting");
        assert!(tap_off.is_zero(), "no tap installed, nothing observed");
        assert!(tap_on.fault_drops >= 10, "every first attempt dropped");
        assert!(tap_on.retransmits > 0);
        assert!(tap_on.acks_sent > 0);
    }

    /// Capture records remote sends (destination and packet) without
    /// disturbing delivery or accounting.
    #[test]
    fn capture_records_remote_sends() {
        let (eps, stats) = Fabric::mesh(3);
        eps[0].start_capture();
        eps[0].send(WorkerId(1), msg_packet(10, 1, 0));
        eps[0].send(WorkerId(0), Packet::DoneSending); // loopback: not captured
        eps[0].send(WorkerId(2), Packet::SuperstepDone);
        let cap = eps[0].take_capture();
        assert_eq!(cap.len(), 2);
        assert_eq!(cap[0].0, WorkerId(1));
        assert_eq!(cap[1].0, WorkerId(2));
        assert!(eps[1].recv_timeout(Duration::from_millis(200)).is_some());
        assert!(eps[2].recv_timeout(Duration::from_millis(200)).is_some());
        assert_eq!(stats.snapshot().packets_out[0], 3);
        // A second take without a start is empty.
        assert!(eps[0].take_capture().is_empty());
    }
}
