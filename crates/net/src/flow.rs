//! Sending-threshold buffering (paper Appendix E).
//!
//! Distributed systems buffer outgoing messages per destination worker and
//! flush when a sending threshold is reached, "to make full use of the
//! network idle time and reduce the overhead of building connections". The
//! threshold is the knob Fig. 26 sweeps from 1 MB to 32 MB: push's
//! combining is crippled by small thresholds (partial buffers flush before
//! merge partners arrive), while b-pull's savings are threshold-independent
//! because it generates all messages for a destination together.

use hybridgraph_graph::{VertexId, WorkerId};
use hybridgraph_storage::Record;

/// The paper's default sending threshold (4 MB, chosen in Appendix E).
pub const DEFAULT_SENDING_THRESHOLD: usize = 4 * 1024 * 1024;

/// Per-destination-worker outgoing buffers with threshold-triggered flush.
pub struct ThresholdBuffer<M: Record> {
    per_peer: Vec<Vec<(VertexId, M)>>,
    threshold_bytes: usize,
}

impl<M: Record> ThresholdBuffer<M> {
    /// Buffers for `peers` destination workers flushing at
    /// `threshold_bytes` of buffered payload.
    pub fn new(peers: usize, threshold_bytes: usize) -> Self {
        assert!(threshold_bytes > 0, "threshold must be positive");
        ThresholdBuffer {
            per_peer: (0..peers).map(|_| Vec::new()).collect(),
            threshold_bytes,
        }
    }

    /// Bytes one buffered message will occupy on the wire (plain encoding).
    #[inline]
    fn message_bytes() -> usize {
        4 + M::BYTES
    }

    /// How many messages fit under the threshold.
    pub fn messages_per_flush(&self) -> usize {
        (self.threshold_bytes / Self::message_bytes()).max(1)
    }

    /// Appends a message for `dst` owned by worker `peer`; returns the
    /// drained batch if the peer's buffer reached the threshold.
    pub fn push(&mut self, peer: WorkerId, dst: VertexId, msg: M) -> Option<Vec<(VertexId, M)>> {
        let per_flush = self.messages_per_flush();
        let buf = &mut self.per_peer[peer.index()];
        buf.push((dst, msg));
        if buf.len() >= per_flush {
            Some(std::mem::take(buf))
        } else {
            None
        }
    }

    /// Number of messages currently buffered for `peer`.
    pub fn buffered(&self, peer: WorkerId) -> usize {
        self.per_peer[peer.index()].len()
    }

    /// Total buffered messages.
    pub fn total_buffered(&self) -> usize {
        self.per_peer.iter().map(Vec::len).sum()
    }

    /// In-memory footprint of the buffers (the paper's `BS_i` when used as
    /// b-pull's sending buffer).
    pub fn memory_bytes(&self) -> u64 {
        self.total_buffered() as u64 * Self::message_bytes() as u64
    }

    /// Drains every non-empty buffer as `(peer, batch)` pairs.
    pub fn flush_all(&mut self) -> Vec<(WorkerId, Vec<(VertexId, M)>)> {
        let mut out = Vec::new();
        for (i, buf) in self.per_peer.iter_mut().enumerate() {
            if !buf.is_empty() {
                out.push((WorkerId::from(i), std::mem::take(buf)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_at_threshold() {
        // f64 messages: 12 bytes each; threshold 36 bytes -> 3 per flush.
        let mut b: ThresholdBuffer<f64> = ThresholdBuffer::new(2, 36);
        assert_eq!(b.messages_per_flush(), 3);
        assert!(b.push(WorkerId(0), VertexId(1), 1.0).is_none());
        assert!(b.push(WorkerId(0), VertexId(2), 2.0).is_none());
        let batch = b.push(WorkerId(0), VertexId(3), 3.0).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(b.buffered(WorkerId(0)), 0);
    }

    #[test]
    fn peers_are_independent() {
        let mut b: ThresholdBuffer<u32> = ThresholdBuffer::new(3, 16);
        b.push(WorkerId(0), VertexId(0), 0);
        b.push(WorkerId(1), VertexId(1), 1);
        assert_eq!(b.buffered(WorkerId(0)), 1);
        assert_eq!(b.buffered(WorkerId(1)), 1);
        assert_eq!(b.buffered(WorkerId(2)), 0);
        assert_eq!(b.total_buffered(), 2);
    }

    #[test]
    fn flush_all_drains() {
        let mut b: ThresholdBuffer<u32> = ThresholdBuffer::new(3, 1024);
        b.push(WorkerId(0), VertexId(0), 0);
        b.push(WorkerId(2), VertexId(1), 1);
        b.push(WorkerId(2), VertexId(2), 2);
        let flushed = b.flush_all();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].0, WorkerId(0));
        assert_eq!(flushed[1].1.len(), 2);
        assert_eq!(b.total_buffered(), 0);
    }

    #[test]
    fn tiny_threshold_still_batches_one() {
        let mut b: ThresholdBuffer<f64> = ThresholdBuffer::new(1, 1);
        assert_eq!(b.messages_per_flush(), 1);
        assert!(b.push(WorkerId(0), VertexId(0), 0.0).is_some());
    }

    #[test]
    fn memory_bytes_tracks_content() {
        let mut b: ThresholdBuffer<f64> = ThresholdBuffer::new(1, 1024);
        b.push(WorkerId(0), VertexId(0), 0.0);
        b.push(WorkerId(0), VertexId(1), 1.0);
        assert_eq!(b.memory_bytes(), 24);
    }

    #[test]
    fn default_threshold_is_4mb() {
        assert_eq!(DEFAULT_SENDING_THRESHOLD, 4 * 1024 * 1024);
    }
}
