//! Message combining (paper §4.2, Appendix E).
//!
//! When message values are commutative and associative, several messages
//! to the same destination vertex can be merged into one (Pregel's
//! Combiner). b-pull generates all messages for a destination on demand,
//! so combining is always fully effective there; push flushes partial
//! buffers at the sending threshold, which is why the paper's Giraph
//! baseline does not combine at the sender at all.

/// A commutative, associative merge of two message values.
pub trait Combiner<M>: Send + Sync {
    /// Combines two messages addressed to the same vertex.
    fn combine(&self, a: &M, b: &M) -> M;
}

/// Sums numeric messages (PageRank's rank contributions).
#[derive(Copy, Clone, Debug, Default)]
pub struct SumCombiner;

impl Combiner<f64> for SumCombiner {
    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }
}

impl Combiner<f32> for SumCombiner {
    fn combine(&self, a: &f32, b: &f32) -> f32 {
        a + b
    }
}

impl Combiner<u64> for SumCombiner {
    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a + b
    }
}

impl Combiner<u32> for SumCombiner {
    fn combine(&self, a: &u32, b: &u32) -> u32 {
        a.wrapping_add(*b)
    }
}

/// Keeps the minimum (SSSP's candidate distances).
#[derive(Copy, Clone, Debug, Default)]
pub struct MinCombiner;

impl Combiner<f32> for MinCombiner {
    fn combine(&self, a: &f32, b: &f32) -> f32 {
        a.min(*b)
    }
}

impl Combiner<f64> for MinCombiner {
    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }
}

impl Combiner<u32> for MinCombiner {
    fn combine(&self, a: &u32, b: &u32) -> u32 {
        (*a).min(*b)
    }
}

/// Folds an iterator of messages through a combiner; `None` for empty input.
pub fn combine_all<M: Clone, C: Combiner<M> + ?Sized>(
    combiner: &C,
    mut msgs: impl Iterator<Item = M>,
) -> Option<M> {
    let first = msgs.next()?;
    Some(msgs.fold(first, |acc, m| combiner.combine(&acc, &m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_combiner() {
        let c = SumCombiner;
        assert_eq!(c.combine(&1.5f64, &2.5), 4.0);
        assert_eq!(c.combine(&3u64, &4), 7);
    }

    #[test]
    fn min_combiner() {
        let c = MinCombiner;
        assert_eq!(c.combine(&3.0f32, &1.0), 1.0);
        assert_eq!(c.combine(&7u32, &9), 7);
    }

    #[test]
    fn combine_all_folds() {
        let c = SumCombiner;
        assert_eq!(combine_all(&c, [1.0f64, 2.0, 3.0].into_iter()), Some(6.0));
        assert_eq!(combine_all(&c, std::iter::empty::<f64>()), None);
    }

    #[test]
    fn combiner_is_order_insensitive() {
        let c = MinCombiner;
        let forward = combine_all(&c, [5.0f32, 2.0, 9.0].into_iter());
        let backward = combine_all(&c, [9.0f32, 2.0, 5.0].into_iter());
        assert_eq!(forward, backward);
    }
}
