//! Message-batch wire encodings (paper §4.2, Fig. 5, Appendix E).
//!
//! Three encodings exist, matching the paper's communication analysis:
//!
//! * **Plain** — `(dst id, value)` per message. What push uses: Giraph
//!   neither concatenates nor combines at the sender because partial
//!   buffers are flushed at the sending threshold.
//! * **Concatenated** — messages grouped by destination share one id:
//!   `(dst id, count, values…)`. What b-pull uses for non-commutative
//!   algorithms (LPA, SA).
//! * **Combined** — one `(dst id, value)` per destination after running a
//!   [`Combiner`]. What b-pull uses for commutative algorithms
//!   (PageRank, SSSP).
//!
//! [`WireStats::saved_messages`] counts the messages merged away — the
//! quantity the paper calls `M_co`, which drives the `Q_t` switching
//! metric's network term.

use crate::combine::Combiner;
use hybridgraph_graph::VertexId;
use hybridgraph_storage::Record;

/// Which encoding a batch uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BatchKind {
    /// `(dst, value)` pairs, no merging.
    Plain,
    /// Destination-grouped, id shared per group.
    Concatenated,
    /// One combined value per destination.
    Combined,
}

/// Statistics of one encoded batch.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Messages before any merging.
    pub raw_messages: u64,
    /// Values actually carried on the wire.
    pub wire_values: u64,
    /// Encoded payload bytes.
    pub wire_bytes: u64,
    /// Messages merged away by concatenation or combining (`M_co`).
    pub saved_messages: u64,
}

impl WireStats {
    /// Component-wise sum.
    pub fn plus(&self, other: &WireStats) -> WireStats {
        WireStats {
            raw_messages: self.raw_messages + other.raw_messages,
            wire_values: self.wire_values + other.wire_values,
            wire_bytes: self.wire_bytes + other.wire_bytes,
            saved_messages: self.saved_messages + other.saved_messages,
        }
    }
}

/// Encodes `msgs` with the given `kind`.
///
/// `msgs` is sorted by destination in place for the grouping encodings.
/// `combiner` must be provided iff `kind` is [`BatchKind::Combined`].
pub fn encode_batch<M: Record>(
    kind: BatchKind,
    msgs: &mut [(VertexId, M)],
    combiner: Option<&dyn Combiner<M>>,
) -> (Vec<u8>, WireStats) {
    let raw = msgs.len() as u64;
    match kind {
        BatchKind::Plain => {
            let mut out = Vec::with_capacity(msgs.len() * (4 + M::BYTES));
            for (dst, m) in msgs.iter() {
                dst.append_to(&mut out);
                m.append_to(&mut out);
            }
            let stats = WireStats {
                raw_messages: raw,
                wire_values: raw,
                wire_bytes: out.len() as u64,
                saved_messages: 0,
            };
            (out, stats)
        }
        BatchKind::Concatenated => {
            msgs.sort_by_key(|(d, _)| *d);
            let mut out = Vec::with_capacity(msgs.len() * M::BYTES + 16);
            let mut groups = 0u64;
            let mut i = 0;
            while i < msgs.len() {
                let dst = msgs[i].0;
                let mut end = i + 1;
                while end < msgs.len() && msgs[end].0 == dst {
                    end += 1;
                }
                dst.append_to(&mut out);
                ((end - i) as u32).append_to(&mut out);
                for (_, m) in &msgs[i..end] {
                    m.append_to(&mut out);
                }
                groups += 1;
                i = end;
            }
            let stats = WireStats {
                raw_messages: raw,
                wire_values: raw,
                wire_bytes: out.len() as u64,
                saved_messages: raw.saturating_sub(groups),
            };
            (out, stats)
        }
        BatchKind::Combined => {
            let combiner = combiner.expect("Combined encoding requires a combiner");
            msgs.sort_by_key(|(d, _)| *d);
            let mut out = Vec::with_capacity(msgs.len() * (4 + M::BYTES));
            let mut groups = 0u64;
            let mut i = 0;
            while i < msgs.len() {
                let dst = msgs[i].0;
                let mut acc = msgs[i].1.clone();
                let mut end = i + 1;
                while end < msgs.len() && msgs[end].0 == dst {
                    acc = combiner.combine(&acc, &msgs[end].1);
                    end += 1;
                }
                dst.append_to(&mut out);
                acc.append_to(&mut out);
                groups += 1;
                i = end;
            }
            let stats = WireStats {
                raw_messages: raw,
                wire_values: groups,
                wire_bytes: out.len() as u64,
                saved_messages: raw.saturating_sub(groups),
            };
            (out, stats)
        }
    }
}

/// Decodes a batch back into `(dst, value)` pairs.
///
/// Concatenated batches expand to one pair per value; combined batches
/// yield one pair per destination.
pub fn decode_batch<M: Record>(kind: BatchKind, bytes: &[u8]) -> Vec<(VertexId, M)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    match kind {
        BatchKind::Plain | BatchKind::Combined => {
            let width = 4 + M::BYTES;
            assert_eq!(bytes.len() % width, 0, "batch length misaligned");
            while at < bytes.len() {
                let dst = VertexId::read_from(&bytes[at..at + 4]);
                let m = M::read_from(&bytes[at + 4..at + width]);
                out.push((dst, m));
                at += width;
            }
        }
        BatchKind::Concatenated => {
            while at < bytes.len() {
                let dst = VertexId::read_from(&bytes[at..at + 4]);
                let count = u32::read_from(&bytes[at + 4..at + 8]) as usize;
                at += 8;
                for _ in 0..count {
                    out.push((dst, M::read_from(&bytes[at..at + M::BYTES])));
                    at += M::BYTES;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::{MinCombiner, SumCombiner};

    fn sample() -> Vec<(VertexId, f64)> {
        vec![
            (VertexId(2), 1.0),
            (VertexId(1), 2.0),
            (VertexId(2), 3.0),
            (VertexId(1), 4.0),
            (VertexId(3), 5.0),
        ]
    }

    #[test]
    fn plain_roundtrip() {
        let mut msgs = sample();
        let (bytes, stats) = encode_batch(BatchKind::Plain, &mut msgs, None);
        assert_eq!(stats.raw_messages, 5);
        assert_eq!(stats.wire_values, 5);
        assert_eq!(stats.saved_messages, 0);
        assert_eq!(stats.wire_bytes, 5 * 12);
        let back: Vec<(VertexId, f64)> = decode_batch(BatchKind::Plain, &bytes);
        assert_eq!(back, sample());
    }

    #[test]
    fn concatenated_shares_ids() {
        let mut msgs = sample();
        let (bytes, stats) = encode_batch(BatchKind::Concatenated, &mut msgs, None);
        assert_eq!(stats.raw_messages, 5);
        // 3 groups: v1 (2 msgs), v2 (2 msgs), v3 (1 msg)
        assert_eq!(stats.saved_messages, 2);
        assert_eq!(stats.wire_bytes, 3 * 8 + 5 * 8);
        let mut back: Vec<(VertexId, f64)> = decode_batch(BatchKind::Concatenated, &bytes);
        back.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        let mut want = sample();
        want.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        assert_eq!(back, want);
    }

    #[test]
    fn combined_merges_values() {
        let mut msgs = sample();
        let (bytes, stats) = encode_batch(BatchKind::Combined, &mut msgs, Some(&SumCombiner));
        assert_eq!(stats.wire_values, 3);
        assert_eq!(stats.saved_messages, 2);
        assert_eq!(stats.wire_bytes, 3 * 12);
        let back: Vec<(VertexId, f64)> = decode_batch(BatchKind::Combined, &bytes);
        assert_eq!(
            back,
            vec![(VertexId(1), 6.0), (VertexId(2), 4.0), (VertexId(3), 5.0)]
        );
    }

    #[test]
    fn combined_with_min() {
        let mut msgs = vec![
            (VertexId(0), 4.0f32),
            (VertexId(0), 2.0),
            (VertexId(0), 9.0),
        ];
        let (bytes, stats) = encode_batch(BatchKind::Combined, &mut msgs, Some(&MinCombiner));
        assert_eq!(stats.wire_values, 1);
        let back: Vec<(VertexId, f32)> = decode_batch(BatchKind::Combined, &bytes);
        assert_eq!(back, vec![(VertexId(0), 2.0)]);
    }

    #[test]
    fn empty_batches() {
        for kind in [BatchKind::Plain, BatchKind::Concatenated] {
            let mut msgs: Vec<(VertexId, u32)> = Vec::new();
            let (bytes, stats) = encode_batch(kind, &mut msgs, None);
            assert!(bytes.is_empty());
            assert_eq!(stats, WireStats::default());
            assert!(decode_batch::<u32>(kind, &bytes).is_empty());
        }
    }

    #[test]
    fn concatenation_wins_on_high_fan_in() {
        // Each group carries a 4-byte count, so sharing the id pays off
        // once a destination receives more than two messages — the regime
        // pull-based generation puts every high-in-degree vertex in.
        let mut batch: Vec<(VertexId, f64)> =
            (0..100).map(|i| (VertexId(i / 10), i as f64)).collect();
        let mut plain_batch = batch.clone();
        let (_, plain) = encode_batch(BatchKind::Plain, &mut plain_batch, None);
        let (_, conc) = encode_batch(BatchKind::Concatenated, &mut batch, None);
        assert!(conc.wire_bytes < plain.wire_bytes);
        assert_eq!(conc.saved_messages, 90);
    }

    #[test]
    fn wire_stats_plus() {
        let a = WireStats {
            raw_messages: 1,
            wire_values: 1,
            wire_bytes: 12,
            saved_messages: 0,
        };
        let b = WireStats {
            raw_messages: 3,
            wire_values: 2,
            wire_bytes: 20,
            saved_messages: 1,
        };
        let c = a.plus(&b);
        assert_eq!(c.raw_messages, 4);
        assert_eq!(c.wire_bytes, 32);
        assert_eq!(c.saved_messages, 1);
    }
}
