//! Wire packets exchanged between workers.
//!
//! Four packet kinds cover both message-handling strategies:
//!
//! * [`Packet::PullRequest`] — b-pull's block-granular request: its entire
//!   payload is one Vblock identifier, which is the point of block-centric
//!   pulling ("the cost of pull requests is minimized to a Vblock
//!   identifier", §4.1).
//! * [`Packet::Messages`] — a batch of messages encoded by
//!   [`crate::wire::encode_batch`]; carries its [`WireStats`] so receivers
//!   account savings without re-parsing.
//! * [`Packet::EndOfResponses`] — b-pull: the sender has produced all
//!   messages for the requested block.
//! * [`Packet::DoneSending`] — push: the sender has flushed every message
//!   of the superstep (the barrier waits for one per peer).

use crate::wire::{BatchKind, WireStats};
use hybridgraph_graph::BlockId;
use std::sync::Arc;

/// Fixed header bytes per packet (tag + ids), charged on every packet.
pub const PACKET_HEADER_BYTES: u64 = 8;

/// One unit of network traffic.
#[derive(Clone, Debug)]
pub enum Packet {
    /// Request messages for all vertices of `block` (b-pull).
    PullRequest {
        /// The requested Vblock.
        block: BlockId,
    },
    /// A batch of messages.
    Messages {
        /// How `payload` is encoded.
        kind: BatchKind,
        /// Encoded batch (see [`crate::wire`]).
        payload: Arc<[u8]>,
        /// Encoding statistics (raw/wire counts, saved messages).
        stats: WireStats,
        /// For b-pull responses: which block the batch answers.
        for_block: Option<BlockId>,
    },
    /// All responses for `block` from this worker have been sent (b-pull).
    EndOfResponses {
        /// The answered Vblock.
        block: BlockId,
    },
    /// This worker has sent every message of the superstep (push).
    DoneSending,
    /// This worker has finished pulling and updating all its blocks or
    /// vertices for the superstep (b-pull / pull); it keeps serving
    /// requests until every peer has said the same.
    SuperstepDone,
    /// Per-vertex gather requests of the pull baseline: the encoded ids of
    /// destination vertices whose in-edges the receiver hosts.
    GatherRequests {
        /// Little-endian `u32` vertex ids, 4 bytes each.
        ids: Arc<[u8]>,
    },
    /// The pull baseline's sender has issued all gather requests of the
    /// superstep to this peer.
    DoneRequesting,
    /// All gather responses from this worker for the superstep have been
    /// sent to the peer this packet addresses.
    EndOfGather,
    /// Scatter signals of the pull baseline: encoded ids of destination
    /// vertices that must gather next superstep because an in-neighbor's
    /// value changed (PowerGraph's scatter-phase activation).
    Signals {
        /// Little-endian `u32` vertex ids, 4 bytes each.
        ids: Arc<[u8]>,
    },
    /// Out-of-band rollback order from the master's control plane: a peer
    /// failed mid-superstep, so every worker must abandon the current
    /// superstep immediately (stop computing, stop waiting for barriers)
    /// and await a rollback command. Injected by
    /// [`crate::fabric::ControlPlane`], never by workers, and therefore
    /// never accounted in [`crate::fabric::NetStats`].
    Abort,
}

impl Packet {
    /// Serializes the packet for the sender-side message log.
    ///
    /// The encoding is a 1-byte tag followed by the variant fields in
    /// declaration order, everything little-endian and length-prefixed
    /// where variable. It exists for confined recovery — logged
    /// outbound packets must survive a process boundary — not for the
    /// in-process fabric, which moves [`Packet`] values directly.
    pub fn encode(&self, out: &mut Vec<u8>) {
        fn put_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
        match self {
            Packet::PullRequest { block } => {
                out.push(0);
                put_u32(out, block.0);
            }
            Packet::Messages {
                kind,
                payload,
                stats,
                for_block,
            } => {
                out.push(1);
                out.push(match kind {
                    BatchKind::Plain => 0,
                    BatchKind::Concatenated => 1,
                    BatchKind::Combined => 2,
                });
                match for_block {
                    None => out.push(0),
                    Some(b) => {
                        out.push(1);
                        put_u32(out, b.0);
                    }
                }
                put_u64(out, stats.raw_messages);
                put_u64(out, stats.wire_values);
                put_u64(out, stats.wire_bytes);
                put_u64(out, stats.saved_messages);
                put_bytes(out, payload);
            }
            Packet::EndOfResponses { block } => {
                out.push(2);
                put_u32(out, block.0);
            }
            Packet::DoneSending => out.push(3),
            Packet::SuperstepDone => out.push(4),
            Packet::GatherRequests { ids } => {
                out.push(5);
                put_bytes(out, ids);
            }
            Packet::DoneRequesting => out.push(6),
            Packet::EndOfGather => out.push(7),
            Packet::Signals { ids } => {
                out.push(8);
                put_bytes(out, ids);
            }
            Packet::Abort => out.push(9),
        }
    }

    /// Deserializes one packet from `bytes`, returning it and the
    /// number of bytes consumed. Returns `None` on malformed input
    /// (truncated log segments must degrade gracefully, not panic).
    pub fn decode(bytes: &[u8]) -> Option<(Packet, usize)> {
        fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
            Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
        }
        fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
            Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
        }
        let tag = *bytes.first()?;
        match tag {
            0 => Some((
                Packet::PullRequest {
                    block: BlockId(get_u32(bytes, 1)?),
                },
                5,
            )),
            1 => {
                let kind = match *bytes.get(1)? {
                    0 => BatchKind::Plain,
                    1 => BatchKind::Concatenated,
                    2 => BatchKind::Combined,
                    _ => return None,
                };
                let mut at = 2usize;
                let for_block = match *bytes.get(at)? {
                    0 => {
                        at += 1;
                        None
                    }
                    1 => {
                        let b = get_u32(bytes, at + 1)?;
                        at += 5;
                        Some(BlockId(b))
                    }
                    _ => return None,
                };
                let stats = WireStats {
                    raw_messages: get_u64(bytes, at)?,
                    wire_values: get_u64(bytes, at + 8)?,
                    wire_bytes: get_u64(bytes, at + 16)?,
                    saved_messages: get_u64(bytes, at + 24)?,
                };
                at += 32;
                let len = get_u32(bytes, at)? as usize;
                at += 4;
                let payload: Arc<[u8]> = bytes.get(at..at + len)?.into();
                at += len;
                Some((
                    Packet::Messages {
                        kind,
                        payload,
                        stats,
                        for_block,
                    },
                    at,
                ))
            }
            2 => Some((
                Packet::EndOfResponses {
                    block: BlockId(get_u32(bytes, 1)?),
                },
                5,
            )),
            3 => Some((Packet::DoneSending, 1)),
            4 => Some((Packet::SuperstepDone, 1)),
            5 | 8 => {
                let len = get_u32(bytes, 1)? as usize;
                let ids: Arc<[u8]> = bytes.get(5..5 + len)?.into();
                let p = if tag == 5 {
                    Packet::GatherRequests { ids }
                } else {
                    Packet::Signals { ids }
                };
                Some((p, 5 + len))
            }
            6 => Some((Packet::DoneRequesting, 1)),
            7 => Some((Packet::EndOfGather, 1)),
            9 => Some((Packet::Abort, 1)),
            _ => None,
        }
    }

    /// Bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Packet::Messages { payload, .. } => PACKET_HEADER_BYTES + payload.len() as u64,
            Packet::GatherRequests { ids } | Packet::Signals { ids } => {
                PACKET_HEADER_BYTES + ids.len() as u64
            }
            _ => PACKET_HEADER_BYTES,
        }
    }

    /// True for control packets (everything but message batches).
    pub fn is_control(&self) -> bool {
        !matches!(self, Packet::Messages { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_cost_header_only() {
        assert_eq!(
            Packet::PullRequest { block: BlockId(3) }.wire_bytes(),
            PACKET_HEADER_BYTES
        );
        assert_eq!(Packet::DoneSending.wire_bytes(), PACKET_HEADER_BYTES);
        assert!(Packet::DoneSending.is_control());
        assert_eq!(Packet::Abort.wire_bytes(), PACKET_HEADER_BYTES);
        assert!(Packet::Abort.is_control());
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let packets = vec![
            Packet::PullRequest { block: BlockId(7) },
            Packet::Messages {
                kind: BatchKind::Combined,
                payload: vec![1u8, 2, 3, 4].into(),
                stats: WireStats {
                    raw_messages: 9,
                    wire_values: 4,
                    wire_bytes: 4,
                    saved_messages: 5,
                },
                for_block: Some(BlockId(3)),
            },
            Packet::Messages {
                kind: BatchKind::Plain,
                payload: Vec::new().into(),
                stats: WireStats::default(),
                for_block: None,
            },
            Packet::EndOfResponses { block: BlockId(1) },
            Packet::DoneSending,
            Packet::SuperstepDone,
            Packet::GatherRequests {
                ids: vec![5u8, 0, 0, 0].into(),
            },
            Packet::DoneRequesting,
            Packet::EndOfGather,
            Packet::Signals {
                ids: vec![9u8, 0, 0, 0].into(),
            },
            Packet::Abort,
        ];
        let mut blob = Vec::new();
        for p in &packets {
            p.encode(&mut blob);
        }
        let mut at = 0;
        for want in &packets {
            let (got, used) = Packet::decode(&blob[at..]).expect("decode");
            at += used;
            assert_eq!(format!("{got:?}"), format!("{want:?}"));
        }
        assert_eq!(at, blob.len());
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let mut blob = Vec::new();
        Packet::Messages {
            kind: BatchKind::Plain,
            payload: vec![0u8; 64].into(),
            stats: WireStats::default(),
            for_block: None,
        }
        .encode(&mut blob);
        for cut in 0..blob.len() {
            assert!(Packet::decode(&blob[..cut]).is_none(), "cut at {cut}");
        }
        assert!(Packet::decode(&[]).is_none());
        assert!(Packet::decode(&[200]).is_none());
    }

    #[test]
    fn message_packets_add_payload() {
        let p = Packet::Messages {
            kind: BatchKind::Plain,
            payload: vec![0u8; 100].into(),
            stats: WireStats::default(),
            for_block: None,
        };
        assert_eq!(p.wire_bytes(), PACKET_HEADER_BYTES + 100);
        assert!(!p.is_control());
    }
}
