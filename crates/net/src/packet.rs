//! Wire packets exchanged between workers.
//!
//! Four packet kinds cover both message-handling strategies:
//!
//! * [`Packet::PullRequest`] — b-pull's block-granular request: its entire
//!   payload is one Vblock identifier, which is the point of block-centric
//!   pulling ("the cost of pull requests is minimized to a Vblock
//!   identifier", §4.1).
//! * [`Packet::Messages`] — a batch of messages encoded by
//!   [`crate::wire::encode_batch`]; carries its [`WireStats`] so receivers
//!   account savings without re-parsing.
//! * [`Packet::EndOfResponses`] — b-pull: the sender has produced all
//!   messages for the requested block.
//! * [`Packet::DoneSending`] — push: the sender has flushed every message
//!   of the superstep (the barrier waits for one per peer).

use crate::wire::{BatchKind, WireStats};
use hybridgraph_graph::BlockId;
use std::sync::Arc;

/// Fixed header bytes per packet (tag + ids), charged on every packet.
pub const PACKET_HEADER_BYTES: u64 = 8;

/// One unit of network traffic.
#[derive(Clone, Debug)]
pub enum Packet {
    /// Request messages for all vertices of `block` (b-pull).
    PullRequest {
        /// The requested Vblock.
        block: BlockId,
    },
    /// A batch of messages.
    Messages {
        /// How `payload` is encoded.
        kind: BatchKind,
        /// Encoded batch (see [`crate::wire`]).
        payload: Arc<[u8]>,
        /// Encoding statistics (raw/wire counts, saved messages).
        stats: WireStats,
        /// For b-pull responses: which block the batch answers.
        for_block: Option<BlockId>,
    },
    /// All responses for `block` from this worker have been sent (b-pull).
    EndOfResponses {
        /// The answered Vblock.
        block: BlockId,
    },
    /// This worker has sent every message of the superstep (push).
    DoneSending,
    /// This worker has finished pulling and updating all its blocks or
    /// vertices for the superstep (b-pull / pull); it keeps serving
    /// requests until every peer has said the same.
    SuperstepDone,
    /// Per-vertex gather requests of the pull baseline: the encoded ids of
    /// destination vertices whose in-edges the receiver hosts.
    GatherRequests {
        /// Little-endian `u32` vertex ids, 4 bytes each.
        ids: Arc<[u8]>,
    },
    /// The pull baseline's sender has issued all gather requests of the
    /// superstep to this peer.
    DoneRequesting,
    /// All gather responses from this worker for the superstep have been
    /// sent to the peer this packet addresses.
    EndOfGather,
    /// Scatter signals of the pull baseline: encoded ids of destination
    /// vertices that must gather next superstep because an in-neighbor's
    /// value changed (PowerGraph's scatter-phase activation).
    Signals {
        /// Little-endian `u32` vertex ids, 4 bytes each.
        ids: Arc<[u8]>,
    },
    /// Out-of-band rollback order from the master's control plane: a peer
    /// failed mid-superstep, so every worker must abandon the current
    /// superstep immediately (stop computing, stop waiting for barriers)
    /// and await a rollback command. Injected by
    /// [`crate::fabric::ControlPlane`], never by workers, and therefore
    /// never accounted in [`crate::fabric::NetStats`].
    Abort,
}

impl Packet {
    /// Bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Packet::Messages { payload, .. } => PACKET_HEADER_BYTES + payload.len() as u64,
            Packet::GatherRequests { ids } | Packet::Signals { ids } => {
                PACKET_HEADER_BYTES + ids.len() as u64
            }
            _ => PACKET_HEADER_BYTES,
        }
    }

    /// True for control packets (everything but message batches).
    pub fn is_control(&self) -> bool {
        !matches!(self, Packet::Messages { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packets_cost_header_only() {
        assert_eq!(
            Packet::PullRequest { block: BlockId(3) }.wire_bytes(),
            PACKET_HEADER_BYTES
        );
        assert_eq!(Packet::DoneSending.wire_bytes(), PACKET_HEADER_BYTES);
        assert!(Packet::DoneSending.is_control());
        assert_eq!(Packet::Abort.wire_bytes(), PACKET_HEADER_BYTES);
        assert!(Packet::Abort.is_control());
    }

    #[test]
    fn message_packets_add_payload() {
        let p = Packet::Messages {
            kind: BatchKind::Plain,
            payload: vec![0u8; 100].into(),
            stats: WireStats::default(),
            for_block: None,
        };
        assert_eq!(p.wire_bytes(), PACKET_HEADER_BYTES + 100);
        assert!(!p.is_control());
    }
}
