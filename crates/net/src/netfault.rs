//! Seeded, deterministic network-fault schedules.
//!
//! A [`NetFaultPlan`] decides, per `(sender, receiver, sequence
//! number)` link event, whether the fabric should drop, duplicate, or
//! delay a data frame. Decisions are pure functions of the plan's seed
//! and the frame coordinates, so the same plan replayed against the
//! same job produces the same fault schedule — the property that makes
//! network-fault reproductions debuggable, exactly like the worker-kill
//! schedules in `core::fault`.
//!
//! Drops are *bounded*: a frame selected for dropping is dropped for
//! its first `1 + h % max_extra_drops` transmission attempts and then
//! delivered, so a retransmitting sender always makes progress without
//! the plan having to track state. Duplicates and delays apply only to
//! the first attempt, which keeps retransmissions from amplifying the
//! fault rate.
//!
//! Loopback traffic (`from == to`) never faults: it does not cross the
//! simulated wire.

use hybridgraph_graph::rng::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};

/// What the fabric should do with one transmission attempt of a data
/// frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Deliver the frame normally.
    Deliver,
    /// Silently discard this transmission attempt.
    Drop,
    /// Deliver the frame and inject one extra copy.
    Duplicate,
    /// Deliver the frame after a holdback, so later frames on other
    /// links can overtake it (reordering).
    Delay,
}

/// A seeded schedule of per-link network faults.
///
/// Rates are in permille (parts per thousand) of data frames. The
/// categories are evaluated in drop → duplicate → delay order over
/// disjoint slices of the hash space, so their probabilities add up.
#[derive(Debug, Default)]
pub struct NetFaultPlan {
    seed: u64,
    /// Permille of data frames whose first attempt(s) are dropped.
    drop_permille: u64,
    /// Upper bound on *extra* drops after the first (>= 1).
    max_extra_drops: u64,
    /// Permille of data frames delivered twice.
    duplicate_permille: u64,
    /// Permille of data frames held back before delivery.
    delay_permille: u64,
    /// Holdback duration for delayed frames, in milliseconds.
    delay_millis: u64,
    drops_fired: AtomicU64,
    duplicates_fired: AtomicU64,
    delays_fired: AtomicU64,
}

impl NetFaultPlan {
    /// An empty plan with the given seed; add faults with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_extra_drops: 1,
            delay_millis: 2,
            ..Self::default()
        }
    }

    /// Drop `permille`/1000 of data frames. Each selected frame is
    /// dropped for between 1 and `max_extra` consecutive transmission
    /// attempts before being let through.
    pub fn with_drops(mut self, permille: u64, max_extra: u64) -> Self {
        self.drop_permille = permille.min(1000);
        self.max_extra_drops = max_extra.max(1);
        self
    }

    /// Duplicate `permille`/1000 of data frames.
    pub fn with_duplicates(mut self, permille: u64) -> Self {
        self.duplicate_permille = permille.min(1000);
        self
    }

    /// Delay `permille`/1000 of data frames by `millis` milliseconds.
    pub fn with_delays(mut self, permille: u64, millis: u64) -> Self {
        self.delay_permille = permille.min(1000);
        self.delay_millis = millis.max(1);
        self
    }

    /// Holdback duration for delayed frames.
    pub fn delay_millis(&self) -> u64 {
        self.delay_millis
    }

    /// Decide the fate of transmission attempt `attempt` (0-based) of
    /// the frame `(from, to, seq)`. Pure in everything but the fired
    /// counters.
    pub fn decision(&self, from: usize, to: usize, seq: u64, attempt: u32) -> LinkFault {
        if from == to {
            return LinkFault::Deliver;
        }
        let h = SplitMix64::new(
            self.seed ^ ((from as u64) << 48) ^ ((to as u64) << 32) ^ seq.wrapping_mul(0x9e37),
        )
        .next_u64();
        let r = h % 1000;
        if r < self.drop_permille {
            let drops_for = 1 + (h >> 32) % self.max_extra_drops;
            if u64::from(attempt) < drops_for {
                self.drops_fired.fetch_add(1, Ordering::Relaxed);
                return LinkFault::Drop;
            }
            return LinkFault::Deliver;
        }
        if attempt > 0 {
            // Duplicates and delays apply only to the first attempt so
            // retransmissions do not compound faults.
            return LinkFault::Deliver;
        }
        if r < self.drop_permille + self.duplicate_permille {
            self.duplicates_fired.fetch_add(1, Ordering::Relaxed);
            return LinkFault::Duplicate;
        }
        if r < self.drop_permille + self.duplicate_permille + self.delay_permille {
            self.delays_fired.fetch_add(1, Ordering::Relaxed);
            return LinkFault::Delay;
        }
        LinkFault::Deliver
    }

    /// Number of drop decisions made so far.
    pub fn drops_fired(&self) -> u64 {
        self.drops_fired.load(Ordering::Relaxed)
    }

    /// Number of duplicate decisions made so far.
    pub fn duplicates_fired(&self) -> u64 {
        self.duplicates_fired.load(Ordering::Relaxed)
    }

    /// Number of delay decisions made so far.
    pub fn delays_fired(&self) -> u64 {
        self.delays_fired.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_delivers() {
        let plan = NetFaultPlan::new(7);
        for seq in 0..2000 {
            assert_eq!(plan.decision(0, 1, seq, 0), LinkFault::Deliver);
        }
        assert_eq!(plan.drops_fired(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = NetFaultPlan::new(42).with_drops(100, 3).with_duplicates(50);
        let b = NetFaultPlan::new(42).with_drops(100, 3).with_duplicates(50);
        for seq in 0..500 {
            assert_eq!(a.decision(1, 2, seq, 0), b.decision(1, 2, seq, 0));
        }
    }

    #[test]
    fn drops_are_bounded_so_retransmission_terminates() {
        let plan = NetFaultPlan::new(3).with_drops(1000, 4);
        for seq in 0..200 {
            let delivered = (0..16).any(|attempt| {
                matches!(
                    plan.decision(0, 1, seq, attempt),
                    LinkFault::Deliver | LinkFault::Duplicate | LinkFault::Delay
                )
            });
            assert!(delivered, "seq {seq} never delivered");
        }
        assert!(plan.drops_fired() > 0);
    }

    #[test]
    fn loopback_never_faults() {
        let plan = NetFaultPlan::new(9).with_drops(1000, 2);
        for seq in 0..100 {
            assert_eq!(plan.decision(2, 2, seq, 0), LinkFault::Deliver);
        }
    }

    #[test]
    fn rates_roughly_match_permille() {
        let plan = NetFaultPlan::new(11).with_drops(100, 1);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&seq| plan.decision(0, 1, seq, 0) == LinkFault::Drop)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.05..0.2).contains(&rate), "drop rate {rate}");
    }
}
