//! Simulated network substrate for HybridGraph.
//!
//! The paper's cluster connects computational nodes over Gigabit Ethernet;
//! its analysis needs only the *bytes* each strategy moves (`C_net` in
//! Eq. 4, `M_co · Byte_m / s_net` in Eq. 11) and the message/request
//! counts. This crate reproduces the network as a channel mesh
//! with full byte accounting:
//!
//! * [`packet`] — wire formats and their serialized sizes,
//! * [`wire`] — message-batch encodings: plain (push), concatenated and
//!   combined (b-pull), with per-batch savings statistics,
//! * [`combine`] — the `Combiner` abstraction (paper §4.2, Appendix E),
//! * [`flow`] — sending-threshold buffering (Appendix E's knob),
//! * [`fabric`] — the worker-to-worker channel mesh and [`NetStats`],
//! * [`netfault`] — seeded drop/duplicate/delay schedules for the wire.
//!
//! Delivery is reliable and ordered per sender-receiver pair, matching
//! the TCP transport of the original system — but the wire underneath
//! may be lossy: a seeded [`NetFaultPlan`] drops, duplicates, and delays
//! data frames, and the endpoints mask it with sequence numbers,
//! cumulative acks, and timed retransmission (see [`fabric`]). Transport
//! overhead (retransmissions, duplicate drops, acks) is accounted apart
//! from logical traffic so the paper's byte counts stay exact. The
//! paper's receiver-paced one-outstanding-package flow control exists to
//! bound receive-buffer memory; this reproduction sizes buffers analytically
//! (Eqs. 5–6) and accounts package counts instead of blocking senders,
//! which preserves every byte and message count the figures report.

pub mod combine;
pub mod fabric;
pub mod flow;
pub mod netfault;
pub mod packet;
pub mod wire;

pub use combine::Combiner;
pub use fabric::{ControlPlane, Endpoint, Fabric, NetSnapshot, NetStats};
pub use netfault::{LinkFault, NetFaultPlan};
pub use packet::Packet;
pub use wire::{decode_batch, encode_batch, BatchKind, WireStats};
