//! Master-state snapshots for durable, restartable jobs.
//!
//! A durable service persists, at every checkpoint barrier, everything
//! the master needs to resume a job from that cut in a *new process*:
//! the superstep cursor, the hybrid [`Switcher`], the aggregated
//! per-superstep metrics, the recovery bookkeeping, and (when tracing)
//! the full trace-ring contents. [`MasterState::encode`] produces one
//! canonical byte string; committing it through
//! [`BarrierSink`](crate::config::BarrierSink) *after* the workers'
//! checkpoint files are on disk gives the write-ahead ordering that makes
//! a crash at any instant recoverable: either the commit record exists
//! (resume from this cut — the worker files it points at are complete) or
//! it does not (resume from the previous committed cut, whose files a
//! retention-2 pruning schedule keeps alive).
//!
//! The module also houses the fault-aware checkpoint-spacing math: a
//! [`MtbfEstimator`] fed by observed kills, and
//! [`adaptive_spacing_secs`] — Young's approximation
//! `sqrt(2 · write_cost · MTBF)` capped by the factor-based spacing the
//! plain adaptive policy uses.

use crate::config::Mode;
use crate::metrics::{FailureEvent, RecoveryMetrics, StepKind, SuperstepMetrics};
use crate::switch::{self, Switcher};
use hybridgraph_obs::{decode_shard_states, encode_shard_states, ShardState};
use hybridgraph_storage::service_log::{PayloadReader, PayloadWriter};
use hybridgraph_storage::IoSnapshot;
use std::io;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt master state: {what}"),
    )
}

fn kind_tag(k: StepKind) -> u8 {
    match k {
        StepKind::Push => 0,
        StepKind::PushNoSend => 1,
        StepKind::PushM => 2,
        StepKind::Pull => 3,
        StepKind::BPull => 4,
        StepKind::BPullThenPush => 5,
        StepKind::Async => 6,
        StepKind::AsyncThenPush => 7,
    }
}

fn kind_from_tag(tag: u8) -> io::Result<StepKind> {
    Ok(match tag {
        0 => StepKind::Push,
        1 => StepKind::PushNoSend,
        2 => StepKind::PushM,
        3 => StepKind::Pull,
        4 => StepKind::BPull,
        5 => StepKind::BPullThenPush,
        6 => StepKind::Async,
        7 => StepKind::AsyncThenPush,
        _ => return Err(corrupt("unknown step kind tag")),
    })
}

fn put_io(w: &mut PayloadWriter, io: &IoSnapshot) {
    w.put_u64(io.seq_read_bytes);
    w.put_u64(io.seq_write_bytes);
    w.put_u64(io.rand_read_bytes);
    w.put_u64(io.rand_write_bytes);
    w.put_u64(io.seq_read_logical_bytes);
    w.put_u64(io.seq_write_logical_bytes);
    w.put_u64(io.rand_read_logical_bytes);
    w.put_u64(io.rand_write_logical_bytes);
    w.put_u64(io.seq_read_ops);
    w.put_u64(io.seq_write_ops);
    w.put_u64(io.rand_read_ops);
    w.put_u64(io.rand_write_ops);
}

fn get_io(r: &mut PayloadReader<'_>) -> io::Result<IoSnapshot> {
    Ok(IoSnapshot {
        seq_read_bytes: r.get_u64()?,
        seq_write_bytes: r.get_u64()?,
        rand_read_bytes: r.get_u64()?,
        rand_write_bytes: r.get_u64()?,
        seq_read_logical_bytes: r.get_u64()?,
        seq_write_logical_bytes: r.get_u64()?,
        rand_read_logical_bytes: r.get_u64()?,
        rand_write_logical_bytes: r.get_u64()?,
        seq_read_ops: r.get_u64()?,
        seq_write_ops: r.get_u64()?,
        rand_read_ops: r.get_u64()?,
        rand_write_ops: r.get_u64()?,
    })
}

fn put_step(w: &mut PayloadWriter, m: &SuperstepMetrics) {
    w.put_u64(m.superstep);
    w.put_u8(kind_tag(m.kind));
    put_io(w, &m.io);
    w.put_u64(m.sem.value_update_bytes);
    w.put_u64(m.sem.push_edge_bytes);
    w.put_u64(m.sem.bpull_edge_bytes);
    w.put_u64(m.sem.fragment_aux_bytes);
    w.put_u64(m.sem.svertex_rand_bytes);
    w.put_u64(m.sem.msg_spill_bytes);
    w.put_u64(m.net_out_bytes);
    w.put_u64(m.net_local_bytes);
    w.put_u64(m.net_raw_messages);
    w.put_u64(m.net_wire_values);
    w.put_u64(m.net_saved_messages);
    w.put_u64(m.net_requests);
    w.put_u64(m.updated);
    w.put_u64(m.responders);
    w.put_u64(m.messages_produced);
    w.put_u64(m.pending_messages);
    w.put_u64(m.cio_push_bytes);
    w.put_u64(m.cio_bpull_bytes);
    w.put_u64(m.mco);
    w.put_f64(m.q_metric);
    w.put_u64(m.memory_bytes);
    w.put_u64(m.cache_hits);
    w.put_u64(m.cache_misses);
    w.put_u64(m.cache_evictions);
    w.put_f64(m.modeled_secs);
    w.put_f64(m.modeled_io_secs);
    w.put_f64(m.modeled_net_secs);
    w.put_f64(m.wall_secs);
    w.put_f64(m.blocking_secs);
    // The async extension rides only on the async step kinds (tags 6–7),
    // so strict-BSP snapshots — including the committed WAL byte counts
    // in BENCH_service_restart.json — keep their exact pre-async layout.
    if matches!(m.kind, StepKind::Async | StepKind::AsyncThenPush) {
        w.put_u64(m.asy.pseudo_rounds);
        w.put_u64(m.asy.interior_updates);
        w.put_u64(m.asy.interior_messages);
        w.put_u64(m.asy.interior_msg_bytes);
        w.put_u64(m.asy.boundary_active);
        w.put_u64(m.asy.interior_active);
        w.put_u64(m.asy.blocks_active);
        w.put_u64(m.asy.blocks_converged);
        w.put_f64(m.max_residual);
    }
}

fn get_step(r: &mut PayloadReader<'_>) -> io::Result<SuperstepMetrics> {
    let mut m = SuperstepMetrics {
        superstep: r.get_u64()?,
        kind: kind_from_tag(r.get_u8()?)?,
        io: get_io(r)?,
        sem: crate::metrics::SemanticBytes {
            value_update_bytes: r.get_u64()?,
            push_edge_bytes: r.get_u64()?,
            bpull_edge_bytes: r.get_u64()?,
            fragment_aux_bytes: r.get_u64()?,
            svertex_rand_bytes: r.get_u64()?,
            msg_spill_bytes: r.get_u64()?,
        },
        net_out_bytes: r.get_u64()?,
        net_local_bytes: r.get_u64()?,
        net_raw_messages: r.get_u64()?,
        net_wire_values: r.get_u64()?,
        net_saved_messages: r.get_u64()?,
        net_requests: r.get_u64()?,
        updated: r.get_u64()?,
        responders: r.get_u64()?,
        messages_produced: r.get_u64()?,
        pending_messages: r.get_u64()?,
        cio_push_bytes: r.get_u64()?,
        cio_bpull_bytes: r.get_u64()?,
        mco: r.get_u64()?,
        q_metric: r.get_f64()?,
        memory_bytes: r.get_u64()?,
        cache_hits: r.get_u64()?,
        cache_misses: r.get_u64()?,
        cache_evictions: r.get_u64()?,
        modeled_secs: r.get_f64()?,
        modeled_io_secs: r.get_f64()?,
        modeled_net_secs: r.get_f64()?,
        wall_secs: r.get_f64()?,
        blocking_secs: r.get_f64()?,
        asy: crate::metrics::AsyncStepStats::default(),
        max_residual: 0.0,
    };
    if matches!(m.kind, StepKind::Async | StepKind::AsyncThenPush) {
        m.asy.pseudo_rounds = r.get_u64()?;
        m.asy.interior_updates = r.get_u64()?;
        m.asy.interior_messages = r.get_u64()?;
        m.asy.interior_msg_bytes = r.get_u64()?;
        m.asy.boundary_active = r.get_u64()?;
        m.asy.interior_active = r.get_u64()?;
        m.asy.blocks_active = r.get_u64()?;
        m.asy.blocks_converged = r.get_u64()?;
        m.max_residual = r.get_f64()?;
    }
    Ok(m)
}

fn put_recovery(w: &mut PayloadWriter, rec: &RecoveryMetrics) {
    w.put_u64(rec.checkpoints_taken);
    w.put_u64(rec.checkpoint_bytes);
    put_io(w, &rec.checkpoint_io);
    w.put_u64(rec.rollbacks);
    w.put_u64(rec.confined_recoveries);
    w.put_u64(rec.checkpoint_restores);
    w.put_u64(rec.recomputed_supersteps);
    w.put_u64(rec.replayed_supersteps);
    w.put_u64(rec.msg_log_bytes);
    w.put_f64(rec.mtbf_secs);
    w.put_u64(rec.failures.len() as u64);
    for f in &rec.failures {
        w.put_u64(f.superstep);
        w.put_u64(f.worker as u64);
        w.put_str(&f.error);
    }
}

fn get_recovery(r: &mut PayloadReader<'_>) -> io::Result<RecoveryMetrics> {
    let mut rec = RecoveryMetrics {
        checkpoints_taken: r.get_u64()?,
        checkpoint_bytes: r.get_u64()?,
        checkpoint_io: get_io(r)?,
        rollbacks: r.get_u64()?,
        confined_recoveries: r.get_u64()?,
        checkpoint_restores: r.get_u64()?,
        recomputed_supersteps: r.get_u64()?,
        replayed_supersteps: r.get_u64()?,
        msg_log_bytes: r.get_u64()?,
        mtbf_secs: r.get_f64()?,
        failures: Vec::new(),
    };
    let n = r.get_u64()? as usize;
    rec.failures.reserve(n.min(1 << 16));
    for _ in 0..n {
        rec.failures.push(FailureEvent {
            superstep: r.get_u64()?,
            worker: r.get_u64()? as usize,
            error: r.get_str()?.to_string(),
        });
    }
    Ok(rec)
}

/// Modeled mean time between failures, fed by observed kills.
///
/// `advance` accumulates each superstep's modeled seconds; `observe`
/// records one failure (a worker kill surfacing at a barrier, or — on
/// resume — the master kill that halted the previous incarnation).
/// [`MtbfEstimator::mtbf`] is observed time over observed failures, or
/// `None` before the first failure (no evidence — the policy then falls
/// back to the plain factor-based spacing).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MtbfEstimator {
    observed_secs: f64,
    failures: u64,
}

impl MtbfEstimator {
    /// A fresh estimator: nothing observed.
    pub fn new() -> MtbfEstimator {
        MtbfEstimator::default()
    }

    /// Accounts `modeled_secs` of failure-free progress.
    pub fn advance(&mut self, modeled_secs: f64) {
        if modeled_secs.is_finite() && modeled_secs > 0.0 {
            self.observed_secs += modeled_secs;
        }
    }

    /// Records one observed failure.
    pub fn observe(&mut self) {
        self.failures += 1;
    }

    /// Mean modeled seconds between failures, `None` before the first.
    pub fn mtbf(&self) -> Option<f64> {
        if self.failures == 0 {
            return None;
        }
        Some((self.observed_secs / self.failures as f64).max(f64::MIN_POSITIVE))
    }

    /// Modeled seconds observed so far.
    pub fn observed_secs(&self) -> f64 {
        self.observed_secs
    }

    /// Failures observed so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    fn put(&self, w: &mut PayloadWriter) {
        w.put_f64(self.observed_secs);
        w.put_u64(self.failures);
    }

    fn get(r: &mut PayloadReader<'_>) -> io::Result<MtbfEstimator> {
        Ok(MtbfEstimator {
            observed_secs: r.get_f64()?,
            failures: r.get_u64()?,
        })
    }
}

/// Checkpoint spacing in modeled seconds: how much failure-free compute
/// should accumulate before the next checkpoint is worth cutting.
///
/// Without failure evidence (or with `fault_aware` off) this is the plain
/// adaptive rule — `factor` times the modeled cost of writing one
/// checkpoint. With an MTBF estimate it is capped by Young's
/// approximation `sqrt(2 · write_secs · MTBF)`: the higher the observed
/// kill rate (the lower the MTBF), the tighter the spacing, so a chaotic
/// environment checkpoints more often and loses less work per kill.
pub fn adaptive_spacing_secs(
    factor: f64,
    write_secs: f64,
    mtbf: Option<f64>,
    fault_aware: bool,
) -> f64 {
    let base = factor * write_secs;
    match mtbf {
        Some(m) if fault_aware && m.is_finite() && m > 0.0 => {
            base.min((2.0 * write_secs * m).sqrt())
        }
        _ => base,
    }
}

/// Everything the master needs to resume a job from a checkpoint cut in
/// a fresh process. Produced at each durable barrier, committed through
/// [`BarrierSink`](crate::config::BarrierSink), and handed back on resume
/// via [`ResumeState`](crate::config::ResumeState).
#[derive(Clone, Debug)]
pub struct MasterState {
    /// The checkpointed superstep this state resumes from (0 = baseline).
    pub superstep: u64,
    /// The previous committed cut, still on disk under retention 2 (the
    /// next checkpoint prunes it).
    pub prev_checkpoint: Option<u64>,
    /// Largest per-worker checkpoint size at this cut (the adaptive
    /// policy's write-cost input).
    pub last_ckpt_worker_bytes: u64,
    /// Fabric epoch at the cut; resume rolls endpoints onto it.
    pub epoch: u64,
    /// Worker count the state was captured for (sanity-checked on resume).
    pub workers: u32,
    /// Current hybrid mode.
    pub cur: Mode,
    /// Pending transition step, if a switch was decided at this barrier.
    pub pending_kind: Option<StepKind>,
    /// Recoveries consumed so far (counts against `max_recoveries`).
    pub recoveries_used: u64,
    /// Cumulative logical bytes (budget enforcement cursor).
    pub cum_logical: u64,
    /// Modeled seconds accumulated toward the next adaptive checkpoint.
    pub accum_step_secs: f64,
    /// Pacer seconds the master still owes for the unit it held when the
    /// state was cut (the load grant at the baseline cut, 0 at step cuts).
    pub pending_release_secs: f64,
    /// Audit records already exported to the trace.
    pub audit_seen: u64,
    /// The hybrid switching engine, mid-flight.
    pub switcher: Switcher,
    /// Aggregated metrics of every completed superstep up to the cut.
    pub steps: Vec<SuperstepMetrics>,
    /// Mode switches up to the cut.
    pub switches: Vec<(u64, Mode, Mode)>,
    /// Recovery bookkeeping up to the cut.
    pub recovery: RecoveryMetrics,
    /// Failure-rate evidence feeding the fault-aware spacing.
    pub mtbf: MtbfEstimator,
    /// Full trace-ring contents at the cut (present iff the job traces).
    pub trace: Option<Vec<ShardState>>,
}

impl MasterState {
    /// Canonical byte encoding (little-endian, length-prefixed strings,
    /// f64 as IEEE bits — bit-exact round-trips).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.put_u64(self.superstep);
        match self.prev_checkpoint {
            Some(p) => {
                w.put_u8(1);
                w.put_u64(p);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.last_ckpt_worker_bytes);
        w.put_u64(self.epoch);
        w.put_u32(self.workers);
        w.put_u8(switch::mode_tag(self.cur));
        match self.pending_kind {
            Some(k) => {
                w.put_u8(1);
                w.put_u8(kind_tag(k));
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.recoveries_used);
        w.put_u64(self.cum_logical);
        w.put_f64(self.accum_step_secs);
        w.put_f64(self.pending_release_secs);
        w.put_u64(self.audit_seen);
        self.switcher.encode(&mut w);
        w.put_u64(self.steps.len() as u64);
        for s in &self.steps {
            put_step(&mut w, s);
        }
        w.put_u64(self.switches.len() as u64);
        for (at, from, to) in &self.switches {
            w.put_u64(*at);
            w.put_u8(switch::mode_tag(*from));
            w.put_u8(switch::mode_tag(*to));
        }
        put_recovery(&mut w, &self.recovery);
        self.mtbf.put(&mut w);
        match &self.trace {
            Some(states) => {
                w.put_u8(1);
                w.put_bytes(&encode_shard_states(states));
            }
            None => w.put_u8(0),
        }
        w.into_bytes()
    }

    /// Decodes a state produced by [`MasterState::encode`].
    pub fn decode(bytes: &[u8]) -> io::Result<MasterState> {
        let mut r = PayloadReader::new(bytes);
        let superstep = r.get_u64()?;
        let prev_checkpoint = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            _ => return Err(corrupt("prev-checkpoint flag")),
        };
        let last_ckpt_worker_bytes = r.get_u64()?;
        let epoch = r.get_u64()?;
        let workers = r.get_u32()?;
        let cur = switch::mode_from_tag(r.get_u8()?)?;
        let pending_kind = match r.get_u8()? {
            0 => None,
            1 => Some(kind_from_tag(r.get_u8()?)?),
            _ => return Err(corrupt("pending-kind flag")),
        };
        let recoveries_used = r.get_u64()?;
        let cum_logical = r.get_u64()?;
        let accum_step_secs = r.get_f64()?;
        let pending_release_secs = r.get_f64()?;
        let audit_seen = r.get_u64()?;
        let switcher = Switcher::decode(&mut r)?;
        let n_steps = r.get_u64()? as usize;
        let mut steps = Vec::with_capacity(n_steps.min(1 << 16));
        for _ in 0..n_steps {
            steps.push(get_step(&mut r)?);
        }
        let n_switches = r.get_u64()? as usize;
        let mut switches = Vec::with_capacity(n_switches.min(1 << 16));
        for _ in 0..n_switches {
            switches.push((
                r.get_u64()?,
                switch::mode_from_tag(r.get_u8()?)?,
                switch::mode_from_tag(r.get_u8()?)?,
            ));
        }
        let recovery = get_recovery(&mut r)?;
        let mtbf = MtbfEstimator::get(&mut r)?;
        let trace = match r.get_u8()? {
            0 => None,
            1 => Some(decode_shard_states(&r.get_bytes()?)?),
            _ => return Err(corrupt("trace flag")),
        };
        if !r.done() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(MasterState {
            superstep,
            prev_checkpoint,
            last_ckpt_worker_bytes,
            epoch,
            workers,
            cur,
            pending_kind,
            recoveries_used,
            cum_logical,
            accum_step_secs,
            pending_release_secs,
            audit_seen,
            switcher,
            steps,
            switches,
            recovery,
            mtbf,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SemanticBytes;

    fn sample_step(s: u64) -> SuperstepMetrics {
        SuperstepMetrics {
            superstep: s,
            kind: StepKind::BPull,
            io: IoSnapshot {
                seq_read_bytes: 100 + s,
                seq_write_bytes: 7,
                rand_read_bytes: 3,
                rand_write_bytes: 0,
                seq_read_logical_bytes: 120 + s,
                seq_write_logical_bytes: 7,
                rand_read_logical_bytes: 3,
                rand_write_logical_bytes: 0,
                seq_read_ops: 4,
                seq_write_ops: 1,
                rand_read_ops: 2,
                rand_write_ops: 0,
            },
            sem: SemanticBytes {
                value_update_bytes: 11,
                push_edge_bytes: 0,
                bpull_edge_bytes: 40,
                fragment_aux_bytes: 8,
                svertex_rand_bytes: 5,
                msg_spill_bytes: 0,
            },
            net_out_bytes: 64,
            net_local_bytes: 16,
            net_raw_messages: 9,
            net_wire_values: 6,
            net_saved_messages: 3,
            net_requests: 2,
            updated: 12,
            responders: 8,
            messages_produced: 9,
            pending_messages: 4,
            cio_push_bytes: 80,
            cio_bpull_bytes: 64,
            mco: 3,
            q_metric: 0.25 * s as f64 - 0.1,
            memory_bytes: 4096,
            cache_hits: 5,
            cache_misses: 2,
            cache_evictions: 1,
            modeled_secs: 0.031 + s as f64 * 1e-4,
            modeled_io_secs: 0.02,
            modeled_net_secs: 0.004,
            wall_secs: 0.0009,
            blocking_secs: 0.0001,
            asy: crate::metrics::AsyncStepStats::default(),
            max_residual: 0.0,
        }
    }

    #[test]
    fn master_state_roundtrip_is_exact() {
        let switcher = Switcher::new(Mode::Push, 2, 0.1);
        switcher.estimate_mco(100, 60);
        let mut mtbf = MtbfEstimator::new();
        mtbf.advance(1.5);
        mtbf.observe();
        let st = MasterState {
            superstep: 4,
            prev_checkpoint: Some(2),
            last_ckpt_worker_bytes: 8192,
            epoch: 1,
            workers: 3,
            cur: Mode::BPull,
            pending_kind: Some(StepKind::PushNoSend),
            recoveries_used: 1,
            cum_logical: 123_456,
            accum_step_secs: 0.125,
            pending_release_secs: 0.0625,
            audit_seen: 2,
            switcher,
            steps: vec![sample_step(1), sample_step(2), sample_step(3)],
            switches: vec![(3, Mode::Push, Mode::BPull)],
            recovery: RecoveryMetrics {
                checkpoints_taken: 2,
                checkpoint_bytes: 2048,
                rollbacks: 1,
                checkpoint_restores: 3,
                recomputed_supersteps: 2,
                mtbf_secs: 1.5,
                failures: vec![FailureEvent {
                    superstep: 3,
                    worker: 1,
                    error: "injected".into(),
                }],
                ..RecoveryMetrics::default()
            },
            mtbf,
            trace: None,
        };
        let bytes = st.encode();
        let back = MasterState::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.superstep, 4);
        assert_eq!(back.prev_checkpoint, Some(2));
        assert_eq!(back.cur, Mode::BPull);
        assert!(matches!(back.pending_kind, Some(StepKind::PushNoSend)));
        assert_eq!(back.steps.len(), 3);
        assert_eq!(
            back.steps[2].q_metric.to_bits(),
            st.steps[2].q_metric.to_bits()
        );
        assert_eq!(back.switches, vec![(3, Mode::Push, Mode::BPull)]);
        assert_eq!(back.recovery.failures.len(), 1);
        assert_eq!(back.mtbf, st.mtbf);
    }

    #[test]
    fn async_step_roundtrips_and_stays_conditional() {
        // A strict step encodes exactly as before; an async step appends
        // its stats block (8 u64 + 1 f64 = 72 bytes).
        let strict = sample_step(1);
        let mut w = PayloadWriter::new();
        put_step(&mut w, &strict);
        let strict_len = w.into_bytes().len();

        let mut asy_step = sample_step(2);
        asy_step.kind = StepKind::Async;
        asy_step.asy = crate::metrics::AsyncStepStats {
            pseudo_rounds: 4,
            interior_updates: 30,
            interior_messages: 44,
            interior_msg_bytes: 352,
            boundary_active: 3,
            interior_active: 9,
            blocks_active: 2,
            blocks_converged: 2,
        };
        asy_step.max_residual = 1.25e-3;
        let mut w = PayloadWriter::new();
        put_step(&mut w, &asy_step);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), strict_len + 72);

        let mut r = PayloadReader::new(&bytes);
        let back = get_step(&mut r).unwrap();
        assert!(r.done());
        assert_eq!(back.kind, StepKind::Async);
        assert_eq!(back.asy, asy_step.asy);
        assert_eq!(back.max_residual.to_bits(), asy_step.max_residual.to_bits());

        // AsyncThenPush carries the block too, and survives MasterState.
        let mut fused = asy_step.clone();
        fused.kind = StepKind::AsyncThenPush;
        let st = MasterState {
            superstep: 2,
            prev_checkpoint: None,
            last_ckpt_worker_bytes: 1,
            epoch: 0,
            workers: 2,
            cur: Mode::Async,
            pending_kind: Some(StepKind::AsyncThenPush),
            recoveries_used: 0,
            cum_logical: 0,
            accum_step_secs: 0.0,
            pending_release_secs: 0.0,
            audit_seen: 0,
            switcher: Switcher::new(Mode::Async, 2, 0.1),
            steps: vec![asy_step, fused],
            switches: vec![(2, Mode::Async, Mode::Push)],
            recovery: RecoveryMetrics::default(),
            mtbf: MtbfEstimator::new(),
            trace: None,
        };
        let enc = st.encode();
        let dec = MasterState::decode(&enc).unwrap();
        assert_eq!(dec.encode(), enc);
        assert_eq!(dec.cur, Mode::Async);
        assert!(matches!(dec.pending_kind, Some(StepKind::AsyncThenPush)));
        assert_eq!(dec.steps[0].asy.pseudo_rounds, 4);
    }

    #[test]
    fn master_state_rejects_corruption() {
        let st = MasterState {
            superstep: 0,
            prev_checkpoint: None,
            last_ckpt_worker_bytes: 1,
            epoch: 0,
            workers: 1,
            cur: Mode::Push,
            pending_kind: None,
            recoveries_used: 0,
            cum_logical: 0,
            accum_step_secs: 0.0,
            pending_release_secs: 0.0,
            audit_seen: 0,
            switcher: Switcher::new(Mode::Push, 2, 0.1),
            steps: Vec::new(),
            switches: Vec::new(),
            recovery: RecoveryMetrics::default(),
            mtbf: MtbfEstimator::new(),
            trace: None,
        };
        let mut bytes = st.encode();
        assert!(MasterState::decode(&bytes[..bytes.len() - 1]).is_err());
        bytes.push(0);
        assert!(MasterState::decode(&bytes).is_err());
    }

    #[test]
    fn mtbf_estimator_tracks_rate() {
        let mut e = MtbfEstimator::new();
        assert_eq!(e.mtbf(), None);
        e.advance(2.0);
        e.advance(4.0);
        assert_eq!(e.mtbf(), None);
        e.observe();
        assert_eq!(e.mtbf(), Some(6.0));
        e.advance(6.0);
        e.observe();
        assert_eq!(e.mtbf(), Some(6.0));
        // Negative / NaN progress is ignored.
        e.advance(-5.0);
        e.advance(f64::NAN);
        assert_eq!(e.observed_secs(), 12.0);
    }

    #[test]
    fn spacing_uses_young_only_with_evidence_and_flag() {
        // No MTBF: plain factor rule, regardless of the flag.
        assert_eq!(adaptive_spacing_secs(10.0, 0.5, None, true), 5.0);
        assert_eq!(adaptive_spacing_secs(10.0, 0.5, None, false), 5.0);
        // Evidence but flag off: still the factor rule.
        assert_eq!(adaptive_spacing_secs(10.0, 0.5, Some(1.0), false), 5.0);
        // Flag on: Young's sqrt(2 * w * mtbf), capped by the factor rule.
        let y = adaptive_spacing_secs(10.0, 0.5, Some(1.0), true);
        assert!((y - 1.0).abs() < 1e-12, "sqrt(2*0.5*1.0) = 1.0, got {y}");
        // A long MTBF never *loosens* spacing beyond the factor rule.
        assert_eq!(adaptive_spacing_secs(10.0, 0.5, Some(1e9), true), 5.0);
        // Shorter MTBF -> tighter spacing.
        let a = adaptive_spacing_secs(10.0, 0.5, Some(4.0), true);
        let b = adaptive_spacing_secs(10.0, 0.5, Some(1.0), true);
        assert!(b < a && a < 5.0);
    }
}
