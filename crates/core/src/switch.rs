//! The hybrid switching machinery (paper §5).
//!
//! Three pieces:
//!
//! * [`b_lower_bound`] — Theorem 2's `B⊥ = |E|/2 − f`: if the cluster-wide
//!   message buffer `B` is at most `B⊥`, push's I/O bytes can never beat
//!   b-pull's on a broadcast-all workload, so hybrid starts in b-pull.
//! * [`q_metric`] — Eq. 11's `Q_t`: the modeled per-superstep time
//!   difference `push − b-pull` built from `M_co`, `IO(M_disk)`,
//!   `IO(V_rr)` and the sequential-read difference, each divided by its
//!   device throughput. Positive favours b-pull.
//! * [`Switcher`] — the Δt = 2 decision loop of §5.3: evaluates the
//!   predicted `Q_{t+2}` from the quantities collected at superstep `t`
//!   (Shang & Yu-style "current metrics predict the remaining
//!   supersteps") and requests a switch when the sign flips.

use crate::config::Mode;
use hybridgraph_obs::{QtAsync, QtAudit, QtInputs, QtTerms, QtTiers, QtVerdict};
use hybridgraph_storage::service_log::{PayloadReader, PayloadWriter};
use hybridgraph_storage::DeviceProfile;
use std::io;

const MB: f64 = 1024.0 * 1024.0;

/// Inputs to the `Q_t` metric, all in bytes/counts of one superstep.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CostInputs {
    /// Messages concatenation/combining would merge away (`M_co`).
    pub mco: u64,
    /// `Byte_m`: bytes saved per merged message — the id size (4) when
    /// concatenating, the whole message when combining.
    pub bytes_per_saved: u64,
    /// `IO(M_disk)`: message bytes push spills.
    pub io_mdisk: u64,
    /// `IO(V^t_rr)`: b-pull's random svertex reads.
    pub io_vrr: u64,
    /// `IO(Ē^t)`: adjacency edge bytes push reads.
    pub io_e_push: u64,
    /// `IO(E^t)`: Eblock edge bytes b-pull scans.
    pub io_e_bpull: u64,
    /// `IO(F^t)`: fragment auxiliary bytes b-pull scans.
    pub io_f: u64,
}

/// Eq. 11 — the modeled time difference `push − b-pull` for one superstep
/// (seconds). Positive means b-pull is the profitable mode.
///
/// ```text
/// Q_t =  M_co·Byte_m / s_net            (push's extra network volume)
///      + IO(M_disk) / s_rw              (push's random message writes)
///      − IO(V_rr)   / s_rr              (b-pull's random svertex reads)
///      + (IO(Ē) + IO(M_disk) − IO(E) − IO(F)) / s_sr
///                                        (sequential-read difference)
/// ```
pub fn q_metric(profile: &DeviceProfile, c: &CostInputs) -> f64 {
    let t = q_terms(profile, c);
    t.net + t.rw - t.rr + t.sr
}

/// The four Eq. 11 terms individually (seconds), for the audit log:
/// `Q_t = net + rw − rr + sr`.
pub fn q_terms(profile: &DeviceProfile, c: &CostInputs) -> QtTerms {
    QtTerms {
        net: (c.mco as f64 * c.bytes_per_saved as f64) / (profile.snet * MB),
        rw: c.io_mdisk as f64 / (profile.srw * MB),
        rr: c.io_vrr as f64 / (profile.srr * MB),
        sr: (c.io_e_push as f64 + c.io_mdisk as f64 - c.io_e_bpull as f64 - c.io_f as f64)
            / (profile.ssr * MB),
    }
}

impl CostInputs {
    /// The plain-number mirror of this struct recorded in audit artifacts.
    pub fn to_audit(&self) -> QtInputs {
        QtInputs {
            mco: self.mco,
            bytes_per_saved: self.bytes_per_saved,
            io_mdisk: self.io_mdisk,
            io_vrr: self.io_vrr,
            io_e_push: self.io_e_push,
            io_e_bpull: self.io_e_bpull,
            io_f: self.io_f,
        }
    }
}

/// Inputs to the GraphHP-style barrier-savings term: what the `Async`
/// mode's extra pseudo-rounds bought versus what they duplicated, all
/// measured (or estimated) from one superstep.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct AsyncCostInputs {
    /// Pseudo-rounds executed beyond the first sweep — each one replaces
    /// a whole strict-BSP superstep (its global barrier included).
    pub extra_rounds: u64,
    /// Value-segment bytes one superstep streams (read + write-back); a
    /// strict mode would pay this again for every replaced superstep,
    /// async iterates the resident block instead.
    pub value_io_bytes: u64,
    /// Encoded bytes of interior-destined messages async never
    /// materializes into the message store (strict push writes them).
    pub interior_msg_bytes: u64,
    /// Interior `update()` calls beyond one per touched vertex — the
    /// duplicated compute async pays for iterating ahead of the barrier.
    pub dup_updates: u64,
    /// Interior messages regenerated beyond one per in-block edge use.
    pub dup_messages: u64,
    /// Modeled CPU microseconds per vertex update (`JobConfig`).
    pub cpu_us_per_vertex: f64,
    /// Modeled CPU microseconds per message handled (`JobConfig`).
    pub cpu_us_per_message: f64,
}

/// The async extension term: modeled seconds saved by replacing strict
/// supersteps with in-memory pseudo-rounds, minus the modeled cost of the
/// duplicated interior compute. Positive favours `Async`. All-zero
/// inputs (an empty frontier) produce exactly `0.0` — never NaN.
pub fn async_gain(profile: &DeviceProfile, c: &AsyncCostInputs) -> QtAsync {
    let barrier_saved_secs = c.extra_rounds as f64 * c.value_io_bytes as f64 / (profile.ssr * MB)
        + c.interior_msg_bytes as f64 / (profile.srw * MB);
    let dup_compute_secs = (c.dup_updates as f64 * c.cpu_us_per_vertex
        + c.dup_messages as f64 * c.cpu_us_per_message)
        * 1e-6;
    QtAsync {
        barrier_saved_secs,
        dup_compute_secs,
        q_async: barrier_saved_secs - dup_compute_secs,
    }
}

/// Theorem 2 — `B⊥ = |E|/2 − f` in messages. If the cluster-wide message
/// buffer `B ≤ B⊥`, then `C_io(push) ≥ C_io(b-pull)` on a workload where
/// every vertex broadcasts, so b-pull is the safe initial mode.
pub fn b_lower_bound(num_edges: u64, fragments: u64) -> i64 {
    num_edges as i64 / 2 - fragments as i64
}

/// Theorem 2's initial-mode rule.
pub fn initial_mode(total_buffer: u64, num_edges: u64, fragments: u64) -> Mode {
    if (total_buffer as i128) <= b_lower_bound(num_edges, fragments) as i128 {
        Mode::BPull
    } else {
        Mode::Push
    }
}

/// The Δt-interval switching decision loop.
#[derive(Clone, Debug)]
pub struct Switcher {
    interval: u64,
    current: Mode,
    last_decision: u64,
    /// Minimum |Q| as a fraction of the superstep's modeled time before a
    /// switch is taken. The paper switches on the bare sign of `Q_t`; the
    /// threshold guards against paying the fused switch superstep for a
    /// predicted gain of microseconds when `Q_t` hovers around zero
    /// (visible on SA's bursty tail). Zero restores the paper's rule.
    threshold: f64,
    /// Last observed concatenating/combining ratio `R_co` (from a b-pull
    /// superstep), used to estimate `M_co` while running push.
    rco: Option<f64>,
    history: Vec<(u64, f64)>,
    /// One record per `decide` call: the full Eq. 11 evaluation and the
    /// verdict. Cloned with the switcher, so a recovery rollback that
    /// restores an earlier `MasterSnapshot` also rewinds the audit to the
    /// consistent cut.
    audit: Vec<QtAudit>,
}

impl Switcher {
    /// A switcher starting in `initial` with decision interval `interval`
    /// (the paper sets 2) and the relative gain `threshold`.
    pub fn new(initial: Mode, interval: u64, threshold: f64) -> Self {
        assert!(matches!(initial, Mode::Push | Mode::BPull | Mode::Async));
        Switcher {
            interval: interval.max(1),
            current: initial,
            last_decision: 0,
            threshold: threshold.max(0.0),
            rco: None,
            history: Vec::new(),
            audit: Vec::new(),
        }
    }

    /// The mode currently selected.
    pub fn current(&self) -> Mode {
        self.current
    }

    /// The last observed `R_co`, if any b-pull superstep has run.
    pub fn rco(&self) -> Option<f64> {
        self.rco
    }

    /// Records the merge ratio observed in a b-pull superstep:
    /// `saved / raw` messages.
    pub fn observe_rco(&mut self, saved: u64, raw: u64) {
        if raw > 0 {
            self.rco = Some(saved as f64 / raw as f64);
        }
    }

    /// Estimates `M_co` for a push superstep that produced `raw` messages
    /// to `distinct` destinations: prefers the last b-pull-observed ratio,
    /// falling back to the structural bound `raw − distinct`.
    pub fn estimate_mco(&self, raw: u64, distinct: u64) -> u64 {
        match self.rco {
            Some(r) => (raw as f64 * r) as u64,
            None => raw.saturating_sub(distinct),
        }
    }

    /// `Q_t` values recorded so far, as `(superstep, q)`.
    pub fn history(&self) -> &[(u64, f64)] {
        &self.history
    }

    /// The full decision audit: one record per `decide` call.
    pub fn audit(&self) -> &[QtAudit] {
        &self.audit
    }

    /// Feeds the quantities of superstep `t`; returns `Some(new_mode)` if
    /// the engine should switch for superstep `t + 1`.
    ///
    /// Decisions are taken at most every `interval` supersteps, never
    /// before superstep 2 (superstep 1 exchanges no messages), and only
    /// when the predicted per-superstep gain |Q| clears the threshold
    /// relative to the superstep's modeled time `step_secs`. `io_ratio`
    /// is the superstep's physical/logical classified-I/O ratio (1.0
    /// without a codec); it is recorded in the audit, not used by the
    /// decision — the byte inputs are already physical.
    pub fn decide(
        &mut self,
        t: u64,
        profile: &DeviceProfile,
        inputs: &CostInputs,
        step_secs: f64,
        io_ratio: f64,
    ) -> Option<Mode> {
        self.decide_inner(t, profile, inputs, None, step_secs, io_ratio)
    }

    /// The three-way variant for `Async`-flavoured jobs: Eq. 11 still
    /// arbitrates push vs b-pull, and the [`async_gain`] term then decides
    /// whether replacing strict supersteps with pseudo-rounds beats the
    /// strict winner. Every evaluation records its [`QtAsync`] extension
    /// in the audit.
    pub fn decide_async(
        &mut self,
        t: u64,
        profile: &DeviceProfile,
        inputs: &CostInputs,
        asy: &AsyncCostInputs,
        step_secs: f64,
        io_ratio: f64,
    ) -> Option<Mode> {
        let gain = async_gain(profile, asy);
        self.decide_inner(t, profile, inputs, Some(gain), step_secs, io_ratio)
    }

    fn decide_inner(
        &mut self,
        t: u64,
        profile: &DeviceProfile,
        inputs: &CostInputs,
        asy: Option<QtAsync>,
        step_secs: f64,
        io_ratio: f64,
    ) -> Option<Mode> {
        let terms = q_terms(profile, inputs);
        let q = terms.net + terms.rw - terms.rr + terms.sr;
        self.history.push((t, q));
        let before = self.current;
        let too_early = t < 2 || t - self.last_decision < self.interval;
        let (verdict, switched) = if too_early {
            (QtVerdict::TooEarly, None)
        } else {
            let strict_want = if q >= 0.0 { Mode::BPull } else { Mode::Push };
            let want = match asy {
                Some(g) if g.q_async > 0.0 => Mode::Async,
                // Exactly zero gain is an empty frontier — no evidence
                // either way, so a job already in async holds instead of
                // flapping to the strict winner.
                Some(g) if g.q_async == 0.0 && self.current == Mode::Async => Mode::Async,
                _ => strict_want,
            };
            // The gate compares the gain of moving against the superstep's
            // modeled time: crossing the async boundary is judged by the
            // async term, a push<->b-pull flip by Eq. 11 as before.
            let gate = if want == Mode::Async || self.current == Mode::Async {
                asy.map(|g| g.q_async.abs()).unwrap_or(0.0)
            } else {
                q.abs()
            };
            self.last_decision = t;
            if want == self.current {
                (QtVerdict::Hold, None)
            } else if gate < self.threshold * step_secs.max(0.0) {
                (QtVerdict::BelowThreshold, None)
            } else {
                self.current = want;
                (QtVerdict::Switch, Some(want))
            }
        };
        self.audit.push(QtAudit {
            superstep: t,
            inputs: inputs.to_audit(),
            terms,
            q,
            step_secs,
            io_ratio,
            threshold: self.threshold,
            mode_before: before.label(),
            mode_after: self.current.label(),
            verdict,
            asy,
            tiers: None,
        });
        switched
    }

    /// Attaches the per-tier compression breakdown to the most recent
    /// audit record. The engine calls this right after `decide` for jobs
    /// running with a codec; codec-less jobs never do, so their audit
    /// bytes are unchanged.
    pub fn annotate_tiers(&mut self, tiers: QtTiers) {
        if let Some(a) = self.audit.last_mut() {
            a.tiers = Some(tiers);
        }
    }

    /// Serializes the switcher's full state (mode, decision cursor, `R_co`,
    /// history, audit) into a durable master snapshot. Bit-exact: every
    /// float travels by bit pattern, so a decoded switcher makes byte-for-
    /// byte the same future decisions.
    pub fn encode(&self, w: &mut PayloadWriter) {
        w.put_u64(self.interval);
        w.put_u8(mode_tag(self.current));
        w.put_u64(self.last_decision);
        w.put_f64(self.threshold);
        match self.rco {
            Some(r) => {
                w.put_u8(1);
                w.put_f64(r);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.history.len() as u64);
        for (t, q) in &self.history {
            w.put_u64(*t);
            w.put_f64(*q);
        }
        w.put_u64(self.audit.len() as u64);
        for a in &self.audit {
            encode_qt_audit(w, a);
        }
    }

    /// Rebuilds a switcher from [`Switcher::encode`] bytes.
    pub fn decode(r: &mut PayloadReader<'_>) -> io::Result<Switcher> {
        let interval = r.get_u64()?;
        let current = mode_from_tag(r.get_u8()?)?;
        let last_decision = r.get_u64()?;
        let threshold = r.get_f64()?;
        let rco = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_f64()?),
            _ => return Err(snap_corrupt("rco flag")),
        };
        let nh = r.get_u64()? as usize;
        let mut history = Vec::with_capacity(nh);
        for _ in 0..nh {
            let t = r.get_u64()?;
            let q = r.get_f64()?;
            history.push((t, q));
        }
        let na = r.get_u64()? as usize;
        let mut audit = Vec::with_capacity(na);
        for _ in 0..na {
            audit.push(decode_qt_audit(r)?);
        }
        Ok(Switcher {
            interval,
            current,
            last_decision,
            threshold,
            rco,
            history,
            audit,
        })
    }
}

// ------------------------------------------------- snapshot serialization

fn snap_corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt switcher snapshot: {what}"),
    )
}

pub(crate) fn mode_tag(m: Mode) -> u8 {
    // Tags 0..=4 are positional in `Mode::ALL` (the wire format existing
    // snapshots were written with); `Async` extends past the array.
    match Mode::ALL.iter().position(|x| *x == m) {
        Some(i) => i as u8,
        None => {
            debug_assert_eq!(m, Mode::Async);
            Mode::ALL.len() as u8
        }
    }
}

pub(crate) fn mode_from_tag(tag: u8) -> io::Result<Mode> {
    if tag as usize == Mode::ALL.len() {
        return Ok(Mode::Async);
    }
    Mode::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| snap_corrupt("unknown mode tag"))
}

fn mode_label_static(label: &str) -> io::Result<&'static str> {
    if label == Mode::Async.label() {
        return Ok(Mode::Async.label());
    }
    Mode::ALL
        .iter()
        .map(|m| m.label())
        .find(|l| *l == label)
        .ok_or_else(|| snap_corrupt("unknown mode label"))
}

fn verdict_tag(v: QtVerdict) -> u8 {
    match v {
        QtVerdict::TooEarly => 0,
        QtVerdict::Hold => 1,
        QtVerdict::BelowThreshold => 2,
        QtVerdict::Switch => 3,
    }
}

fn verdict_from_tag(tag: u8) -> io::Result<QtVerdict> {
    Ok(match tag {
        0 => QtVerdict::TooEarly,
        1 => QtVerdict::Hold,
        2 => QtVerdict::BelowThreshold,
        3 => QtVerdict::Switch,
        _ => return Err(snap_corrupt("unknown verdict tag")),
    })
}

/// Serializes one Eq. 11 audit record (floats by bit pattern).
pub fn encode_qt_audit(w: &mut PayloadWriter, a: &QtAudit) {
    w.put_u64(a.superstep);
    w.put_u64(a.inputs.mco);
    w.put_u64(a.inputs.bytes_per_saved);
    w.put_u64(a.inputs.io_mdisk);
    w.put_u64(a.inputs.io_vrr);
    w.put_u64(a.inputs.io_e_push);
    w.put_u64(a.inputs.io_e_bpull);
    w.put_u64(a.inputs.io_f);
    w.put_f64(a.terms.net);
    w.put_f64(a.terms.rw);
    w.put_f64(a.terms.rr);
    w.put_f64(a.terms.sr);
    w.put_f64(a.q);
    w.put_f64(a.step_secs);
    w.put_f64(a.io_ratio);
    w.put_f64(a.threshold);
    w.put_str(a.mode_before);
    w.put_str(a.mode_after);
    // Optional extensions ride on the verdict byte's high bits (0x80 =
    // async term, 0x40 = per-tier ratios) so audit records of plain
    // push/b-pull codec-less jobs serialize byte-for-byte as they always
    // have (committed baselines depend on those byte counts).
    let mut tag = verdict_tag(a.verdict);
    if a.asy.is_some() {
        tag |= 0x80;
    }
    if a.tiers.is_some() {
        tag |= 0x40;
    }
    w.put_u8(tag);
    if let Some(x) = &a.asy {
        w.put_f64(x.barrier_saved_secs);
        w.put_f64(x.dup_compute_secs);
        w.put_f64(x.q_async);
    }
    if let Some(t) = &a.tiers {
        w.put_f64(t.seq_read);
        w.put_f64(t.seq_write);
        w.put_f64(t.rand_read);
        w.put_f64(t.rand_write);
    }
}

/// Rebuilds one audit record; mode labels are re-interned to the engine's
/// own `'static` labels.
pub fn decode_qt_audit(r: &mut PayloadReader<'_>) -> io::Result<QtAudit> {
    let superstep = r.get_u64()?;
    let inputs = QtInputs {
        mco: r.get_u64()?,
        bytes_per_saved: r.get_u64()?,
        io_mdisk: r.get_u64()?,
        io_vrr: r.get_u64()?,
        io_e_push: r.get_u64()?,
        io_e_bpull: r.get_u64()?,
        io_f: r.get_u64()?,
    };
    let terms = QtTerms {
        net: r.get_f64()?,
        rw: r.get_f64()?,
        rr: r.get_f64()?,
        sr: r.get_f64()?,
    };
    let q = r.get_f64()?;
    let step_secs = r.get_f64()?;
    let io_ratio = r.get_f64()?;
    let threshold = r.get_f64()?;
    let mode_before = mode_label_static(&r.get_str()?)?;
    let mode_after = mode_label_static(&r.get_str()?)?;
    let tag = r.get_u8()?;
    let verdict = verdict_from_tag(tag & 0x3f)?;
    let asy = if tag & 0x80 != 0 {
        Some(QtAsync {
            barrier_saved_secs: r.get_f64()?,
            dup_compute_secs: r.get_f64()?,
            q_async: r.get_f64()?,
        })
    } else {
        None
    };
    let tiers = if tag & 0x40 != 0 {
        Some(QtTiers {
            seq_read: r.get_f64()?,
            seq_write: r.get_f64()?,
            rand_read: r.get_f64()?,
            rand_write: r.get_f64()?,
        })
    } else {
        None
    };
    Ok(QtAudit {
        superstep,
        inputs,
        terms,
        q,
        step_secs,
        io_ratio,
        threshold,
        mode_before,
        mode_after,
        verdict,
        asy,
        tiers,
    })
}

/// Serializes a `Q_t` audit table to a canonical byte run — the form the
/// restart-determinism tests and the chaos harness compare byte-for-byte.
pub fn encode_qt_audits(audits: &[QtAudit]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_u64(audits.len() as u64);
    for a in audits {
        encode_qt_audit(&mut w, a);
    }
    w.into_bytes()
}

/// Rebuilds an audit table from [`encode_qt_audits`] bytes.
pub fn decode_qt_audits(buf: &[u8]) -> io::Result<Vec<QtAudit>> {
    let mut r = PayloadReader::new(buf);
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_qt_audit(&mut r)?);
    }
    if !r.done() {
        return Err(snap_corrupt("trailing bytes after audit table"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdd() -> DeviceProfile {
        DeviceProfile::local_hdd()
    }

    #[test]
    fn q_positive_when_push_spills_heavily() {
        // Lots of spilled messages, tiny b-pull overheads.
        let c = CostInputs {
            mco: 1_000_000,
            bytes_per_saved: 12,
            io_mdisk: 100 * 1024 * 1024,
            io_vrr: 1024 * 1024,
            io_e_push: 50 * 1024 * 1024,
            io_e_bpull: 50 * 1024 * 1024,
            io_f: 1024 * 1024,
        };
        assert!(q_metric(&hdd(), &c) > 0.0);
    }

    #[test]
    fn q_negative_when_no_spill_and_costly_scans() {
        // Nothing spills; b-pull pays fragment + random-read overheads.
        let c = CostInputs {
            mco: 10,
            bytes_per_saved: 12,
            io_mdisk: 0,
            io_vrr: 50 * 1024 * 1024,
            io_e_push: 1024 * 1024,
            io_e_bpull: 20 * 1024 * 1024,
            io_f: 10 * 1024 * 1024,
        };
        assert!(q_metric(&hdd(), &c) < 0.0);
    }

    #[test]
    fn q_sign_is_hardware_insensitive_when_io_dominates() {
        // The paper observes switching points do not move between HDD and
        // SSD: the sign is dominated by Cio(push) − Cio(b-pull).
        let c = CostInputs {
            mco: 1000,
            bytes_per_saved: 12,
            io_mdisk: 64 * 1024 * 1024,
            io_vrr: 8 * 1024 * 1024,
            io_e_push: 32 * 1024 * 1024,
            io_e_bpull: 40 * 1024 * 1024,
            io_f: 2 * 1024 * 1024,
        };
        let hdd_q = q_metric(&hdd(), &c);
        let ssd_q = q_metric(&DeviceProfile::amazon_ssd(), &c);
        assert_eq!(hdd_q.signum(), ssd_q.signum());
        // but the magnitude (expected gain) shrinks on SSD
        assert!(hdd_q.abs() > ssd_q.abs());
    }

    #[test]
    fn theorem2_bound() {
        assert_eq!(b_lower_bound(1000, 100), 400);
        assert_eq!(b_lower_bound(100, 100), -50);
        assert_eq!(initial_mode(300, 1000, 100), Mode::BPull);
        assert_eq!(initial_mode(500, 1000, 100), Mode::Push);
        // Negative bound: push always starts.
        assert_eq!(initial_mode(0, 100, 100), Mode::Push);
    }

    #[test]
    fn switcher_respects_interval() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.0);
        let push_favoring = CostInputs {
            io_vrr: 100 * 1024 * 1024,
            ..Default::default()
        };
        // t = 1: too early.
        assert_eq!(s.decide(1, &hdd(), &push_favoring, 0.0, 1.0), None);
        // t = 2: interval satisfied, sign negative -> switch to push.
        assert_eq!(
            s.decide(2, &hdd(), &push_favoring, 0.0, 1.0),
            Some(Mode::Push)
        );
        // t = 3: within interval of last decision, no re-evaluation.
        let bpull_favoring = CostInputs {
            io_mdisk: 100 * 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(3, &hdd(), &bpull_favoring, 0.0, 1.0), None);
        // t = 4: switches back.
        assert_eq!(
            s.decide(4, &hdd(), &bpull_favoring, 0.0, 1.0),
            Some(Mode::BPull)
        );
        assert_eq!(s.current(), Mode::BPull);
        assert_eq!(s.history().len(), 4);
    }

    #[test]
    fn switcher_stays_put_on_same_sign() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.0);
        let c = CostInputs {
            io_mdisk: 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(2, &hdd(), &c, 0.0, 1.0), None);
        assert_eq!(s.decide(4, &hdd(), &c, 0.0, 1.0), None);
        assert_eq!(s.current(), Mode::BPull);
    }

    #[test]
    fn threshold_suppresses_marginal_switches() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.5);
        // A push-favouring Q of tiny magnitude vs a long superstep.
        let c = CostInputs {
            io_vrr: 1024, // |Q| ~ 1e-6 s
            ..Default::default()
        };
        assert_eq!(
            s.decide(2, &hdd(), &c, 10.0, 1.0),
            None,
            "gain below threshold"
        );
        // Same sign but now the gain dominates the superstep time.
        let big = CostInputs {
            io_vrr: 1024 * 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(4, &hdd(), &big, 10.0, 1.0), Some(Mode::Push));
    }

    /// Each Eq. 11 input flipped on alone must pull `Q_t` in its
    /// documented direction: `mco`/`io_mdisk`/`io_e_push` favour b-pull
    /// (positive), `io_vrr`/`io_e_bpull`/`io_f` favour push (negative).
    #[test]
    fn q_sign_flip_per_term() {
        let p = hdd();
        assert_eq!(q_metric(&p, &CostInputs::default()), 0.0);
        let one_mb = 1024 * 1024;
        let cases: [(CostInputs, f64); 6] = [
            (
                CostInputs {
                    mco: 1000,
                    bytes_per_saved: 12,
                    ..Default::default()
                },
                1.0,
            ),
            (
                CostInputs {
                    io_mdisk: one_mb,
                    ..Default::default()
                },
                1.0, // both the rw and sr terms gain
            ),
            (
                CostInputs {
                    io_e_push: one_mb,
                    ..Default::default()
                },
                1.0,
            ),
            (
                CostInputs {
                    io_vrr: one_mb,
                    ..Default::default()
                },
                -1.0,
            ),
            (
                CostInputs {
                    io_e_bpull: one_mb,
                    ..Default::default()
                },
                -1.0,
            ),
            (
                CostInputs {
                    io_f: one_mb,
                    ..Default::default()
                },
                -1.0,
            ),
        ];
        for (c, sign) in &cases {
            let q = q_metric(&p, c);
            assert_eq!(q.signum(), *sign, "inputs {c:?} produced q = {q}");
            // And the term decomposition always reassembles the metric.
            let t = q_terms(&p, c);
            assert_eq!(t.net + t.rw - t.rr + t.sr, q);
        }
    }

    /// Theorem 2 boundary: at exactly `B = |E|/2 − f` the initial mode is
    /// b-pull (the bound is inclusive); one message more tips to push.
    #[test]
    fn theorem2_exact_boundary() {
        let (edges, frags) = (2000u64, 3u64);
        let b = b_lower_bound(edges, frags);
        assert_eq!(b, 997);
        assert_eq!(initial_mode(b as u64, edges, frags), Mode::BPull);
        assert_eq!(initial_mode(b as u64 + 1, edges, frags), Mode::Push);
        // Odd |E| truncates: 7/2 − 1 = 2.
        assert_eq!(b_lower_bound(7, 1), 2);
        assert_eq!(initial_mode(2, 7, 1), Mode::BPull);
        assert_eq!(initial_mode(3, 7, 1), Mode::Push);
    }

    /// Golden hand-computed Eq. 11 example on an exact-arithmetic profile
    /// (all throughputs and byte counts powers of two, so every division
    /// is exact in f64):
    ///
    /// ```text
    /// net = 1 MiB msgs × 4 B  / (4 MiB/s) = 1 s
    /// rw  = 2 MiB            / (1 MiB/s) = 2 s
    /// rr  = 1 MiB            / (1 MiB/s) = 1 s
    /// sr  = (4 + 2 − 1 − 1) MiB / (2 MiB/s) = 2 s
    /// Q   = 1 + 2 − 1 + 2 = 4 s
    /// ```
    #[test]
    fn q_golden_value() {
        let p = DeviceProfile {
            srr: 1.0,
            srw: 1.0,
            ssr: 2.0,
            ssw: 2.0,
            snet: 4.0,
        };
        let mib = 1024 * 1024;
        let c = CostInputs {
            mco: mib,
            bytes_per_saved: 4,
            io_mdisk: 2 * mib,
            io_vrr: mib,
            io_e_push: 4 * mib,
            io_e_bpull: mib,
            io_f: mib,
        };
        let t = q_terms(&p, &c);
        assert_eq!(t.net, 1.0);
        assert_eq!(t.rw, 2.0);
        assert_eq!(t.rr, 1.0);
        assert_eq!(t.sr, 2.0);
        assert_eq!(q_metric(&p, &c), 4.0);
    }

    /// Every `decide` call leaves exactly one audit record whose terms
    /// reassemble `q` and whose verdict matches the returned value.
    #[test]
    fn decide_records_audit() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.5);
        let push_favoring = CostInputs {
            io_vrr: 1024 * 1024 * 1024,
            ..Default::default()
        };
        let tiny_push = CostInputs {
            io_vrr: 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(1, &hdd(), &push_favoring, 0.0, 1.0), None);
        assert_eq!(s.decide(2, &hdd(), &tiny_push, 10.0, 1.0), None);
        assert_eq!(
            s.decide(4, &hdd(), &push_favoring, 10.0, 1.0),
            Some(Mode::Push)
        );
        assert_eq!(s.decide(6, &hdd(), &push_favoring, 10.0, 1.0), None);
        let audit = s.audit();
        assert_eq!(audit.len(), 4);
        use hybridgraph_obs::QtVerdict;
        assert_eq!(audit[0].verdict, QtVerdict::TooEarly);
        assert_eq!(audit[1].verdict, QtVerdict::BelowThreshold);
        assert_eq!(audit[2].verdict, QtVerdict::Switch);
        assert_eq!(audit[2].mode_before, "b-pull");
        assert_eq!(audit[2].mode_after, "push");
        assert_eq!(audit[3].verdict, QtVerdict::Hold);
        for a in audit {
            let t = &a.terms;
            assert_eq!(t.net + t.rw - t.rr + t.sr, a.q);
            assert!(a.inputs.io_vrr > 0);
        }
        // Cloning (as `MasterSnapshot` does for rollback) preserves the
        // audit prefix, so restoring an earlier clone rewinds the log.
        let snap = Switcher::new(Mode::BPull, 2, 0.5);
        assert!(snap.audit().is_empty());
    }

    /// A decoded switcher is bit-identical to the original: same mode,
    /// same decision cursor, same history and audit, and — the part that
    /// matters for crash-restart replay — the same *future* decisions.
    #[test]
    fn switcher_snapshot_roundtrip() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.25);
        s.observe_rco(80, 100);
        let push_favoring = CostInputs {
            io_vrr: 1024 * 1024 * 1024,
            ..Default::default()
        };
        s.decide(1, &hdd(), &push_favoring, 0.5, 1.0);
        s.decide(2, &hdd(), &push_favoring, 0.5, 1.25);

        let mut w = PayloadWriter::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        let mut d = Switcher::decode(&mut r).unwrap();
        assert!(r.done());
        assert_eq!(d.current(), s.current());
        assert_eq!(d.rco(), s.rco());
        assert_eq!(d.history(), s.history());
        assert_eq!(d.audit(), s.audit());
        // Future decisions agree bit-for-bit.
        let bpull_favoring = CostInputs {
            io_mdisk: 100 * 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(
            s.decide(4, &hdd(), &bpull_favoring, 1.0, 1.0),
            d.decide(4, &hdd(), &bpull_favoring, 1.0, 1.0),
        );
        assert_eq!(d.audit(), s.audit());
        assert_eq!(
            encode_qt_audits(s.audit()),
            encode_qt_audits(d.audit()),
            "canonical audit bytes agree"
        );
        let table = decode_qt_audits(&encode_qt_audits(s.audit())).unwrap();
        assert_eq!(table, s.audit());
    }

    /// The barrier-savings term pulls in its documented directions:
    /// extra rounds and avoided interior-message bytes favour async,
    /// duplicated updates/messages count against it.
    #[test]
    fn async_gain_directions() {
        let p = hdd();
        let mib = 1024 * 1024;
        let saving = AsyncCostInputs {
            extra_rounds: 3,
            value_io_bytes: 8 * mib,
            interior_msg_bytes: 2 * mib,
            ..Default::default()
        };
        let g = async_gain(&p, &saving);
        assert!(g.barrier_saved_secs > 0.0);
        assert_eq!(g.dup_compute_secs, 0.0);
        assert!(g.q_async > 0.0);

        let dup_only = AsyncCostInputs {
            dup_updates: 1_000_000,
            dup_messages: 2_000_000,
            cpu_us_per_vertex: 0.5,
            cpu_us_per_message: 0.5,
            ..Default::default()
        };
        let g = async_gain(&p, &dup_only);
        assert_eq!(g.barrier_saved_secs, 0.0);
        assert!(g.dup_compute_secs > 0.0);
        assert!(g.q_async < 0.0);

        // More duplicated compute monotonically erodes the same savings.
        let mixed = AsyncCostInputs {
            dup_updates: 1_000_000,
            cpu_us_per_vertex: 0.5,
            ..saving
        };
        assert!(async_gain(&p, &mixed).q_async < async_gain(&p, &saving).q_async);
    }

    /// An empty frontier produces exact zeros (never NaN) and the
    /// three-way decision holds the current mode.
    #[test]
    fn async_gain_zero_frontier() {
        let p = hdd();
        let g = async_gain(&p, &AsyncCostInputs::default());
        assert_eq!(g.barrier_saved_secs, 0.0);
        assert_eq!(g.dup_compute_secs, 0.0);
        assert_eq!(g.q_async, 0.0);
        assert!(!g.q_async.is_nan());

        let mut s = Switcher::new(Mode::Async, 2, 0.1);
        let out = s.decide_async(
            2,
            &p,
            &CostInputs::default(),
            &AsyncCostInputs::default(),
            0.0,
            1.0,
        );
        assert_eq!(out, None, "zero frontier must not force a switch");
        assert_eq!(s.current(), Mode::Async);
        let a = s.audit().last().unwrap();
        assert_eq!(a.asy.unwrap().q_async, 0.0);
        assert_eq!(a.verdict, QtVerdict::Hold);
    }

    /// Three-way decisions: a positive async gain wins the superstep, a
    /// negative one hands control back to the Eq. 11 winner.
    #[test]
    fn decide_async_switches_both_ways() {
        let p = hdd();
        let mib = 1024 * 1024;
        let mut s = Switcher::new(Mode::Push, 2, 0.0);
        let favour_async = AsyncCostInputs {
            extra_rounds: 4,
            value_io_bytes: 64 * mib,
            ..Default::default()
        };
        assert_eq!(
            s.decide_async(2, &p, &CostInputs::default(), &favour_async, 0.1, 1.0),
            Some(Mode::Async)
        );
        // Async stopped paying (all duplication): fall back to the Eq. 11
        // winner — a b-pull-favouring profile here.
        let favour_strict = AsyncCostInputs {
            dup_updates: 10_000_000,
            cpu_us_per_vertex: 1.0,
            ..Default::default()
        };
        let bpull_favoring = CostInputs {
            io_mdisk: 100 * mib,
            ..Default::default()
        };
        assert_eq!(
            s.decide_async(4, &p, &bpull_favoring, &favour_strict, 0.1, 1.0),
            Some(Mode::BPull)
        );
        assert_eq!(s.audit().len(), 2);
        assert!(s.audit().iter().all(|a| a.asy.is_some()));
        assert_eq!(s.audit()[0].mode_after, "async");
        assert_eq!(s.audit()[1].mode_before, "async");
    }

    /// Async audit records round-trip through the canonical byte run, and
    /// the extension bytes appear only when the record carries one.
    #[test]
    fn async_audit_bytes_roundtrip_and_stay_conditional() {
        let p = hdd();
        let mut strict = Switcher::new(Mode::BPull, 2, 0.0);
        strict.decide(2, &p, &CostInputs::default(), 0.1, 1.0);
        let strict_bytes = encode_qt_audits(strict.audit());

        let mut asy = Switcher::new(Mode::Async, 2, 0.0);
        asy.decide_async(
            2,
            &p,
            &CostInputs::default(),
            &AsyncCostInputs {
                extra_rounds: 2,
                value_io_bytes: 1024 * 1024,
                ..Default::default()
            },
            0.1,
            1.0,
        );
        let asy_bytes = encode_qt_audits(asy.audit());
        assert_eq!(
            asy_bytes.len(),
            strict_bytes.len() + 24 - ("b-pull".len() - "async".len()) * 2,
            "extension adds exactly three f64s (minus the shorter labels)"
        );
        let decoded = decode_qt_audits(&asy_bytes).unwrap();
        assert_eq!(decoded, asy.audit());
        assert_eq!(decoded[0].asy, asy.audit()[0].asy);
        let strict_decoded = decode_qt_audits(&strict_bytes).unwrap();
        assert!(strict_decoded[0].asy.is_none());
    }

    /// Per-tier ratio annotations round-trip through the canonical byte
    /// run (0x40 flag), survive a full switcher snapshot, and add bytes
    /// only to records that carry them.
    #[test]
    fn tier_audit_bytes_roundtrip_and_stay_conditional() {
        let p = hdd();
        let mut plain = Switcher::new(Mode::BPull, 2, 0.0);
        plain.decide(2, &p, &CostInputs::default(), 0.1, 1.0);
        let plain_bytes = encode_qt_audits(plain.audit());

        let mut coded = Switcher::new(Mode::BPull, 2, 0.0);
        coded.decide(2, &p, &CostInputs::default(), 0.1, 0.42);
        coded.annotate_tiers(QtTiers {
            seq_read: 0.36,
            seq_write: 1.0,
            rand_read: 1.0,
            rand_write: 0.9,
        });
        let coded_bytes = encode_qt_audits(coded.audit());
        assert_eq!(
            coded_bytes.len(),
            plain_bytes.len() + 32,
            "tier extension adds exactly four f64s"
        );
        let decoded = decode_qt_audits(&coded_bytes).unwrap();
        assert_eq!(decoded, coded.audit());
        assert_eq!(decoded[0].tiers.unwrap().seq_read, 0.36);
        assert!(decode_qt_audits(&plain_bytes).unwrap()[0].tiers.is_none());

        // The full switcher snapshot carries the annotation too.
        let mut w = PayloadWriter::new();
        coded.encode(&mut w);
        let bytes = w.into_bytes();
        let back = Switcher::decode(&mut PayloadReader::new(&bytes)).unwrap();
        assert_eq!(back.audit(), coded.audit());

        // Annotating with no audit record yet is a no-op, not a panic.
        let mut empty = Switcher::new(Mode::Push, 2, 0.0);
        empty.annotate_tiers(QtTiers::default());
        assert!(empty.audit().is_empty());
    }

    #[test]
    fn async_mode_tag_roundtrip() {
        for m in Mode::ALL.into_iter().chain([Mode::Async]) {
            assert_eq!(mode_from_tag(mode_tag(m)).unwrap(), m);
        }
        assert_eq!(mode_tag(Mode::Async), 5);
        assert!(mode_from_tag(6).is_err());
        assert_eq!(mode_label_static("async").unwrap(), "async");
    }

    #[test]
    fn mco_estimation() {
        let mut s = Switcher::new(Mode::Push, 2, 0.0);
        // No observation yet: structural bound.
        assert_eq!(s.estimate_mco(100, 30), 70);
        s.observe_rco(80, 100);
        assert_eq!(s.rco(), Some(0.8));
        assert_eq!(s.estimate_mco(50, 30), 40);
        // Zero raw leaves ratio unchanged.
        s.observe_rco(0, 0);
        assert_eq!(s.rco(), Some(0.8));
    }
}
