//! The hybrid switching machinery (paper §5).
//!
//! Three pieces:
//!
//! * [`b_lower_bound`] — Theorem 2's `B⊥ = |E|/2 − f`: if the cluster-wide
//!   message buffer `B` is at most `B⊥`, push's I/O bytes can never beat
//!   b-pull's on a broadcast-all workload, so hybrid starts in b-pull.
//! * [`q_metric`] — Eq. 11's `Q_t`: the modeled per-superstep time
//!   difference `push − b-pull` built from `M_co`, `IO(M_disk)`,
//!   `IO(V_rr)` and the sequential-read difference, each divided by its
//!   device throughput. Positive favours b-pull.
//! * [`Switcher`] — the Δt = 2 decision loop of §5.3: evaluates the
//!   predicted `Q_{t+2}` from the quantities collected at superstep `t`
//!   (Shang & Yu-style "current metrics predict the remaining
//!   supersteps") and requests a switch when the sign flips.

use crate::config::Mode;
use hybridgraph_storage::DeviceProfile;

const MB: f64 = 1024.0 * 1024.0;

/// Inputs to the `Q_t` metric, all in bytes/counts of one superstep.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CostInputs {
    /// Messages concatenation/combining would merge away (`M_co`).
    pub mco: u64,
    /// `Byte_m`: bytes saved per merged message — the id size (4) when
    /// concatenating, the whole message when combining.
    pub bytes_per_saved: u64,
    /// `IO(M_disk)`: message bytes push spills.
    pub io_mdisk: u64,
    /// `IO(V^t_rr)`: b-pull's random svertex reads.
    pub io_vrr: u64,
    /// `IO(Ē^t)`: adjacency edge bytes push reads.
    pub io_e_push: u64,
    /// `IO(E^t)`: Eblock edge bytes b-pull scans.
    pub io_e_bpull: u64,
    /// `IO(F^t)`: fragment auxiliary bytes b-pull scans.
    pub io_f: u64,
}

/// Eq. 11 — the modeled time difference `push − b-pull` for one superstep
/// (seconds). Positive means b-pull is the profitable mode.
///
/// ```text
/// Q_t =  M_co·Byte_m / s_net            (push's extra network volume)
///      + IO(M_disk) / s_rw              (push's random message writes)
///      − IO(V_rr)   / s_rr              (b-pull's random svertex reads)
///      + (IO(Ē) + IO(M_disk) − IO(E) − IO(F)) / s_sr
///                                        (sequential-read difference)
/// ```
pub fn q_metric(profile: &DeviceProfile, c: &CostInputs) -> f64 {
    let net = (c.mco as f64 * c.bytes_per_saved as f64) / (profile.snet * MB);
    let rw = c.io_mdisk as f64 / (profile.srw * MB);
    let rr = c.io_vrr as f64 / (profile.srr * MB);
    let sr = (c.io_e_push as f64 + c.io_mdisk as f64 - c.io_e_bpull as f64 - c.io_f as f64)
        / (profile.ssr * MB);
    net + rw - rr + sr
}

/// Theorem 2 — `B⊥ = |E|/2 − f` in messages. If the cluster-wide message
/// buffer `B ≤ B⊥`, then `C_io(push) ≥ C_io(b-pull)` on a workload where
/// every vertex broadcasts, so b-pull is the safe initial mode.
pub fn b_lower_bound(num_edges: u64, fragments: u64) -> i64 {
    num_edges as i64 / 2 - fragments as i64
}

/// Theorem 2's initial-mode rule.
pub fn initial_mode(total_buffer: u64, num_edges: u64, fragments: u64) -> Mode {
    if (total_buffer as i128) <= b_lower_bound(num_edges, fragments) as i128 {
        Mode::BPull
    } else {
        Mode::Push
    }
}

/// The Δt-interval switching decision loop.
#[derive(Clone, Debug)]
pub struct Switcher {
    interval: u64,
    current: Mode,
    last_decision: u64,
    /// Minimum |Q| as a fraction of the superstep's modeled time before a
    /// switch is taken. The paper switches on the bare sign of `Q_t`; the
    /// threshold guards against paying the fused switch superstep for a
    /// predicted gain of microseconds when `Q_t` hovers around zero
    /// (visible on SA's bursty tail). Zero restores the paper's rule.
    threshold: f64,
    /// Last observed concatenating/combining ratio `R_co` (from a b-pull
    /// superstep), used to estimate `M_co` while running push.
    rco: Option<f64>,
    history: Vec<(u64, f64)>,
}

impl Switcher {
    /// A switcher starting in `initial` with decision interval `interval`
    /// (the paper sets 2) and the relative gain `threshold`.
    pub fn new(initial: Mode, interval: u64, threshold: f64) -> Self {
        assert!(matches!(initial, Mode::Push | Mode::BPull));
        Switcher {
            interval: interval.max(1),
            current: initial,
            last_decision: 0,
            threshold: threshold.max(0.0),
            rco: None,
            history: Vec::new(),
        }
    }

    /// The mode currently selected.
    pub fn current(&self) -> Mode {
        self.current
    }

    /// The last observed `R_co`, if any b-pull superstep has run.
    pub fn rco(&self) -> Option<f64> {
        self.rco
    }

    /// Records the merge ratio observed in a b-pull superstep:
    /// `saved / raw` messages.
    pub fn observe_rco(&mut self, saved: u64, raw: u64) {
        if raw > 0 {
            self.rco = Some(saved as f64 / raw as f64);
        }
    }

    /// Estimates `M_co` for a push superstep that produced `raw` messages
    /// to `distinct` destinations: prefers the last b-pull-observed ratio,
    /// falling back to the structural bound `raw − distinct`.
    pub fn estimate_mco(&self, raw: u64, distinct: u64) -> u64 {
        match self.rco {
            Some(r) => (raw as f64 * r) as u64,
            None => raw.saturating_sub(distinct),
        }
    }

    /// `Q_t` values recorded so far, as `(superstep, q)`.
    pub fn history(&self) -> &[(u64, f64)] {
        &self.history
    }

    /// Feeds the quantities of superstep `t`; returns `Some(new_mode)` if
    /// the engine should switch for superstep `t + 1`.
    ///
    /// Decisions are taken at most every `interval` supersteps, never
    /// before superstep 2 (superstep 1 exchanges no messages), and only
    /// when the predicted per-superstep gain |Q| clears the threshold
    /// relative to the superstep's modeled time `step_secs`.
    pub fn decide(
        &mut self,
        t: u64,
        profile: &DeviceProfile,
        inputs: &CostInputs,
        step_secs: f64,
    ) -> Option<Mode> {
        let q = q_metric(profile, inputs);
        self.history.push((t, q));
        if t < 2 || t - self.last_decision < self.interval {
            return None;
        }
        let want = if q >= 0.0 { Mode::BPull } else { Mode::Push };
        if want != self.current && q.abs() >= self.threshold * step_secs.max(0.0) {
            self.last_decision = t;
            self.current = want;
            Some(want)
        } else {
            self.last_decision = t;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdd() -> DeviceProfile {
        DeviceProfile::local_hdd()
    }

    #[test]
    fn q_positive_when_push_spills_heavily() {
        // Lots of spilled messages, tiny b-pull overheads.
        let c = CostInputs {
            mco: 1_000_000,
            bytes_per_saved: 12,
            io_mdisk: 100 * 1024 * 1024,
            io_vrr: 1024 * 1024,
            io_e_push: 50 * 1024 * 1024,
            io_e_bpull: 50 * 1024 * 1024,
            io_f: 1024 * 1024,
        };
        assert!(q_metric(&hdd(), &c) > 0.0);
    }

    #[test]
    fn q_negative_when_no_spill_and_costly_scans() {
        // Nothing spills; b-pull pays fragment + random-read overheads.
        let c = CostInputs {
            mco: 10,
            bytes_per_saved: 12,
            io_mdisk: 0,
            io_vrr: 50 * 1024 * 1024,
            io_e_push: 1024 * 1024,
            io_e_bpull: 20 * 1024 * 1024,
            io_f: 10 * 1024 * 1024,
        };
        assert!(q_metric(&hdd(), &c) < 0.0);
    }

    #[test]
    fn q_sign_is_hardware_insensitive_when_io_dominates() {
        // The paper observes switching points do not move between HDD and
        // SSD: the sign is dominated by Cio(push) − Cio(b-pull).
        let c = CostInputs {
            mco: 1000,
            bytes_per_saved: 12,
            io_mdisk: 64 * 1024 * 1024,
            io_vrr: 8 * 1024 * 1024,
            io_e_push: 32 * 1024 * 1024,
            io_e_bpull: 40 * 1024 * 1024,
            io_f: 2 * 1024 * 1024,
        };
        let hdd_q = q_metric(&hdd(), &c);
        let ssd_q = q_metric(&DeviceProfile::amazon_ssd(), &c);
        assert_eq!(hdd_q.signum(), ssd_q.signum());
        // but the magnitude (expected gain) shrinks on SSD
        assert!(hdd_q.abs() > ssd_q.abs());
    }

    #[test]
    fn theorem2_bound() {
        assert_eq!(b_lower_bound(1000, 100), 400);
        assert_eq!(b_lower_bound(100, 100), -50);
        assert_eq!(initial_mode(300, 1000, 100), Mode::BPull);
        assert_eq!(initial_mode(500, 1000, 100), Mode::Push);
        // Negative bound: push always starts.
        assert_eq!(initial_mode(0, 100, 100), Mode::Push);
    }

    #[test]
    fn switcher_respects_interval() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.0);
        let push_favoring = CostInputs {
            io_vrr: 100 * 1024 * 1024,
            ..Default::default()
        };
        // t = 1: too early.
        assert_eq!(s.decide(1, &hdd(), &push_favoring, 0.0), None);
        // t = 2: interval satisfied, sign negative -> switch to push.
        assert_eq!(s.decide(2, &hdd(), &push_favoring, 0.0), Some(Mode::Push));
        // t = 3: within interval of last decision, no re-evaluation.
        let bpull_favoring = CostInputs {
            io_mdisk: 100 * 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(3, &hdd(), &bpull_favoring, 0.0), None);
        // t = 4: switches back.
        assert_eq!(s.decide(4, &hdd(), &bpull_favoring, 0.0), Some(Mode::BPull));
        assert_eq!(s.current(), Mode::BPull);
        assert_eq!(s.history().len(), 4);
    }

    #[test]
    fn switcher_stays_put_on_same_sign() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.0);
        let c = CostInputs {
            io_mdisk: 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(2, &hdd(), &c, 0.0), None);
        assert_eq!(s.decide(4, &hdd(), &c, 0.0), None);
        assert_eq!(s.current(), Mode::BPull);
    }

    #[test]
    fn threshold_suppresses_marginal_switches() {
        let mut s = Switcher::new(Mode::BPull, 2, 0.5);
        // A push-favouring Q of tiny magnitude vs a long superstep.
        let c = CostInputs {
            io_vrr: 1024, // |Q| ~ 1e-6 s
            ..Default::default()
        };
        assert_eq!(s.decide(2, &hdd(), &c, 10.0), None, "gain below threshold");
        // Same sign but now the gain dominates the superstep time.
        let big = CostInputs {
            io_vrr: 1024 * 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(s.decide(4, &hdd(), &big, 10.0), Some(Mode::Push));
    }

    #[test]
    fn mco_estimation() {
        let mut s = Switcher::new(Mode::Push, 2, 0.0);
        // No observation yet: structural bound.
        assert_eq!(s.estimate_mco(100, 30), 70);
        s.observe_rco(80, 100);
        assert_eq!(s.rco(), Some(0.8));
        assert_eq!(s.estimate_mco(50, 30), 40);
        // Zero raw leaves ratio unchanged.
        s.observe_rco(0, 0);
        assert_eq!(s.rco(), Some(0.8));
    }
}
