//! Fixed-size bitset for active/responding flags.
//!
//! Workers keep one bit per local vertex for the active-flag and
//! responding-flag vectors of Pull-Request/Pull-Respond (Algorithms 1–2).
//! The paper treats this memory as negligible; [`BitSet::memory_bytes`]
//! reports it anyway so the memory curves are honest.

/// A fixed-length bitset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A bitset of `len` zero bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Clears all bits.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// True if any bit in `range` is set.
    pub fn any_in_range(&self, range: std::ops::Range<usize>) -> bool {
        // Fast path over whole words, precise at the edges.
        range.clone().any(|i| self.get(i))
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// The backing words (checkpoint serialization).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitset of `len` bits from checkpointed `words`; bits
    /// past `len` are masked off.
    ///
    /// # Panics
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(
            words.len() >= len.div_ceil(64),
            "word run too short for {len} bits"
        );
        let mut b = BitSet { words, len };
        b.words.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            if let Some(last) = b.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        b
    }

    /// Swaps contents with `other`.
    pub fn swap(&mut self, other: &mut BitSet) {
        std::mem::swap(&mut self.words, &mut other.words);
        std::mem::swap(&mut self.len, &mut other.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0));
        assert!(b.get(64));
        assert!(b.get(129));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn ones_iterator() {
        let mut b = BitSet::new(200);
        for i in [3usize, 64, 65, 199] {
            b.set(i);
        }
        let got: Vec<usize> = b.ones().collect();
        assert_eq!(got, vec![3, 64, 65, 199]);
    }

    #[test]
    fn clear_all_and_none() {
        let mut b = BitSet::new(70);
        b.set(69);
        assert!(!b.none());
        b.clear_all();
        assert!(b.none());
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn any_in_range() {
        let mut b = BitSet::new(100);
        b.set(50);
        assert!(b.any_in_range(40..60));
        assert!(!b.any_in_range(0..50));
        assert!(!b.any_in_range(51..100));
    }

    #[test]
    fn swap_exchanges_contents() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.set(1);
        b.set(2);
        a.swap(&mut b);
        assert!(a.get(2) && !a.get(1));
        assert!(b.get(1) && !b.get(2));
    }

    #[test]
    fn words_roundtrip_masks_tail() {
        let mut b = BitSet::new(70);
        b.set(0);
        b.set(69);
        let words = b.as_words().to_vec();
        let back = BitSet::from_words(words, 70);
        assert_eq!(back, b);
        // Dirty tail bits beyond `len` are dropped on restore.
        let mut dirty = b.as_words().to_vec();
        dirty[1] |= 1 << 63;
        let cleaned = BitSet::from_words(dirty, 70);
        assert_eq!(cleaned, b);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert!(b.none());
        assert_eq!(b.ones().count(), 0);
    }
}
