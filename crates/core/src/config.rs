//! Job configuration.

use crate::fault::FaultPlan;
use crate::pacer::StepPacer;
use crate::shared::SharedStores;
use hybridgraph_storage::{CodecChoice, DeviceProfile, SharedEdgeCache, Vfs};
use std::io;
use std::sync::Arc;

/// Where a durable master commits its per-barrier snapshot. Installed by
/// the durable `GraphService` (which appends a record to its write-ahead
/// service log); `run_job` calls [`BarrierSink::commit`] at every
/// superstep barrier *after* worker checkpoints are on disk, so a commit
/// always references a restorable cut.
pub trait BarrierSink: Send + Sync + std::fmt::Debug {
    /// Durably record the master snapshot taken after `superstep`.
    fn commit(&self, superstep: u64, state: &[u8]) -> io::Result<()>;
}

/// Observer for a running job's coarse progress: the load phase and each
/// completed superstep barrier. Installed via
/// [`JobConfig::with_progress`]; the gateway uses it to stream superstep
/// events to subscribed clients. Calls happen on the master thread
/// *after* the superstep's metrics are final, and the sink must not
/// block for long — it is on the barrier path. Progress reporting is
/// observation only: it never touches modeled time or I/O accounting,
/// so attaching a sink cannot perturb byte-identical replay.
pub trait ProgressSink: Send + Sync + std::fmt::Debug {
    /// The graph is loaded and partitioned; `modeled_secs` is the modeled
    /// load time.
    fn loaded(&self, modeled_secs: f64) {
        let _ = modeled_secs;
    }
    /// Superstep `superstep` completed under `mode` taking `modeled_secs`
    /// of modeled time.
    fn superstep(&self, superstep: u64, mode: Mode, modeled_secs: f64);
}

/// An encoded master snapshot a resumed job restarts from (the bytes a
/// [`BarrierSink`] committed at the job's last barrier).
#[derive(Clone)]
pub struct ResumeState(pub Arc<Vec<u8>>);

impl std::fmt::Debug for ResumeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumeState")
            .field("bytes", &self.0.len())
            .finish()
    }
}

/// Per-worker disk overrides: worker `i` mounts `disks[i]` instead of a
/// private `MemVfs`/`DirVfs`. The durable service passes namespaced views
/// (`PrefixVfs`) over its persistent VFS, so checkpoints and spill files
/// survive a service restart under stable names.
#[derive(Clone)]
pub struct WorkerDisks(pub Vec<Arc<dyn Vfs>>);

impl std::fmt::Debug for WorkerDisks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerDisks")
            .field("workers", &self.0.len())
            .finish()
    }
}

/// Which message-handling strategy a job runs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Mode {
    /// Giraph-style push: messages spill to disk past the buffer.
    #[default]
    Push,
    /// MOCgraph-style push with message online computing (requires a
    /// combiner).
    PushM,
    /// Per-vertex pulling with an LRU vertex cache (disk-extended GraphLab
    /// PowerGraph analogue).
    Pull,
    /// The paper's block-centric pulling over VE-BLOCK.
    BPull,
    /// Adaptive switching between `Push` and `BPull` (the paper's hybrid).
    Hybrid,
    /// GraphHP-style hybrid sync/async block execution: block-interior
    /// vertices iterate in-place to a residual threshold between global
    /// barriers (pseudo-supersteps), while block-boundary messages queue
    /// for the barrier exactly as in push. The switcher may alternate
    /// this with `Push`/`BPull` per superstep via the extended `Q_t`.
    Async,
}

impl Mode {
    /// All standalone modes in the order the paper's figures list them.
    /// `Async` is deliberately excluded: the paper's figures sweep the
    /// four strict-BSP strategies plus hybrid, and serialized mode tags
    /// are positional in this array (see `switch::mode_tag`).
    pub const ALL: [Mode; 5] = [
        Mode::Push,
        Mode::PushM,
        Mode::Pull,
        Mode::BPull,
        Mode::Hybrid,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Push => "push",
            Mode::PushM => "pushM",
            Mode::Pull => "pull",
            Mode::BPull => "b-pull",
            Mode::Hybrid => "hybrid",
            Mode::Async => "async",
        }
    }
}

impl std::str::FromStr for Mode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "push" => Ok(Mode::Push),
            "pushM" | "pushm" => Ok(Mode::PushM),
            "pull" => Ok(Mode::Pull),
            "b-pull" | "bpull" => Ok(Mode::BPull),
            "hybrid" => Ok(Mode::Hybrid),
            "async" => Ok(Mode::Async),
            other => Err(format!(
                "unknown mode '{other}'; valid modes: push, pushM, pull, \
                 b-pull, hybrid, async"
            )),
        }
    }
}

/// When the engine takes superstep-boundary checkpoints.
///
/// Any policy other than [`CheckpointPolicy::Never`] also takes a
/// *baseline* checkpoint right after loading (superstep 0), so a failure
/// in any superstep has a consistent cut to roll back to.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum CheckpointPolicy {
    /// No checkpoints; a worker failure fails the job.
    #[default]
    Never,
    /// Checkpoint after every `k`-th superstep (`k >= 1`).
    EveryK(u64),
    /// Checkpoint when the modeled compute time accumulated since the
    /// last checkpoint exceeds [`JobConfig::adaptive_checkpoint_factor`]
    /// times the modeled cost of writing one — a Young-style interval
    /// driven entirely by the deterministic cost model, so the schedule
    /// is reproducible run to run.
    Adaptive,
}

/// Configuration of one job run.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Message-handling strategy.
    pub mode: Mode,
    /// Number of computational nodes (the paper's `T`).
    pub workers: usize,
    /// Per-worker message buffer `B_i`, in messages. `usize::MAX` means
    /// "sufficient memory" (nothing ever spills; vertex caches hold
    /// everything).
    pub buffer_messages: usize,
    /// Sending threshold in bytes (Appendix E; default 4 MB).
    pub sending_threshold: usize,
    /// Disk/network throughputs used for modeled time and `Q_t`.
    pub profile: DeviceProfile,
    /// Hard superstep cap (safety net on top of the program's own budget).
    pub max_supersteps: u64,
    /// Override for Vblocks per worker; `None` applies Eq. 5 / Eq. 6.
    pub vblocks_per_worker: Option<usize>,
    /// Pre-pull the next block's messages while updating the current one
    /// (only effective with a combiner, per §4.3).
    pub pre_pull: bool,
    /// Allow combining at the sender (disabled for the Fig. 18 network
    /// comparison and for `pushM+com` experiments).
    pub combining: bool,
    /// LRU vertex-cache capacity for `Pull` mode; `None` uses
    /// `buffer_messages`.
    pub lru_capacity: Option<usize>,
    /// Modeled CPU cost per message handled (microseconds).
    pub cpu_us_per_message: f64,
    /// Modeled CPU cost per vertex update (microseconds).
    pub cpu_us_per_vertex: f64,
    /// Supersteps between switching-decision evaluations (the paper's
    /// Δt = 2).
    pub switch_interval: u64,
    /// Fix hybrid's first mode instead of applying Theorem 2.
    pub initial_mode_override: Option<Mode>,
    /// Minimum |Q_t| relative to the superstep's modeled time before a
    /// switch is taken (0 = the paper's bare sign rule).
    pub switch_threshold: f64,
    /// Combine messages inside each flushed sender batch in push modes —
    /// the `pushM+com` variant of Appendix E. Only partial buffers can be
    /// merged, so small sending thresholds cripple the gain (Fig. 26).
    pub push_sender_combining: bool,
    /// Back each worker's simulated disk with real files under this
    /// directory (one subdirectory per worker) instead of memory.
    /// Accounting is identical; this exercises the physical I/O path.
    pub disk_root: Option<std::path::PathBuf>,
    /// Superstep-boundary checkpointing policy.
    pub checkpoint: CheckpointPolicy,
    /// Re-execution-to-overhead ratio for [`CheckpointPolicy::Adaptive`]:
    /// checkpoint once `accumulated modeled step time >= factor ×
    /// modeled checkpoint write time`.
    pub adaptive_checkpoint_factor: f64,
    /// Deterministic fault-injection schedule, if any.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Maximum worker failures the master will recover from before
    /// declaring the job failed (guards against endlessly re-failing
    /// hardware; injected faults fire once regardless).
    pub max_recoveries: u64,
    /// Log every worker's outgoing remote packets, one classified
    /// sequential write per superstep, enabling Pregel-style *confined*
    /// recovery: a failure respawns only the dead worker, which replays
    /// from its checkpoint while survivors re-serve their logs instead
    /// of rolling back. Without logs (the default), recovery falls back
    /// to a global rollback of every worker.
    pub message_logging: bool,
    /// Observability sink. When set, the runner and workers record typed
    /// spans/instants with modeled-time timestamps into per-worker shards
    /// (plus master/control/net tracks) and the `Switcher` keeps a full
    /// Q_t decision audit. `None` (the default) records nothing and adds
    /// no bytes to any I/O class, so `Q_t` inputs are identical with
    /// tracing on or off.
    pub trace: Option<Arc<hybridgraph_obs::TraceSink>>,
    /// On-disk compression for adjacency/VE-BLOCK extents, message
    /// spills, checkpoints and message logs. [`CodecChoice::None`] (the
    /// default) leaves every byte and counter exactly as uncompressed
    /// runs produce them; any other choice shrinks *physical* I/O while
    /// logical byte accounting — and the computed vertex values — stay
    /// identical.
    pub codec: CodecChoice,
    /// Multi-job pacing handle (see [`StepPacer`]). `None` (the default)
    /// runs the job unpaced, exactly as before the service existed.
    pub pacer: Option<Arc<dyn StepPacer>>,
    /// Catalog-built stores to attach instead of loading privately. When
    /// set, `workers` must equal the stores' slot count, and the load
    /// phase performs no build I/O.
    pub shared_stores: Option<SharedStores>,
    /// Cross-job edge-extent cache. Hits skip physical reads (and their
    /// semantic byte charges) and record only logical bytes into the
    /// requesting job's stats — which is precisely how cache interference
    /// between tenants reaches each job's `Q_t` inputs.
    pub shared_cache: Option<Arc<SharedEdgeCache>>,
    /// Per-job budget on cumulative *logical* I/O bytes (load included).
    /// The master checks after every superstep and fails the job with
    /// [`JobError::BudgetExceeded`](crate::runner::JobError::BudgetExceeded)
    /// when crossed.
    pub logical_io_budget: Option<u64>,
    /// Per-job budget on summed per-superstep high-water memory bytes,
    /// enforced like [`JobConfig::logical_io_budget`].
    pub memory_budget: Option<u64>,
    /// Durable-master hook: when set, the runner commits an encoded
    /// master snapshot here at every superstep barrier (after worker
    /// checkpoints land) and prunes checkpoints two-deep instead of
    /// one-deep, so a crash between the worker checkpoint and the commit
    /// still leaves the last *committed* cut restorable.
    pub barrier_sink: Option<Arc<dyn BarrierSink>>,
    /// Resume a crashed run from this committed master snapshot instead
    /// of starting fresh. Requires [`JobConfig::worker_disks`] pointing at
    /// the disks the original run checkpointed to.
    pub resume: Option<ResumeState>,
    /// Per-worker persistent disk mounts (see [`WorkerDisks`]). `None`
    /// (the default) gives each worker a private in-memory disk, exactly
    /// as before.
    pub worker_disks: Option<WorkerDisks>,
    /// Feed observed failures into [`CheckpointPolicy::Adaptive`]'s
    /// spacing: with an MTBF estimate available, the interval becomes
    /// `min(factor × write, √(2 × write × MTBF))` — Young's formula on
    /// modeled time. Off by default: the spacing then depends only on
    /// `adaptive_checkpoint_factor`, exactly as before.
    pub fault_aware_checkpoint: bool,
    /// Coarse progress observer: notified after the load phase and after
    /// every completed superstep barrier. `None` (the default) reports
    /// nothing. Purely observational — see [`ProgressSink`].
    pub progress: Option<Arc<dyn ProgressSink>>,
    /// Per-block residual threshold for [`Mode::Async`] pseudo-rounds: a
    /// block stops iterating its interior once the maximum
    /// `VertexProgram::residual` of its last round is at or below this.
    pub async_residual: f64,
    /// Hard cap on pseudo-rounds per superstep in [`Mode::Async`] (the
    /// regenerating round 0 plus at most this many dirty rounds).
    pub async_max_rounds: u64,
}

impl JobConfig {
    /// A configuration for `workers` nodes with everything else at the
    /// paper's defaults and ample memory.
    pub fn new(mode: Mode, workers: usize) -> Self {
        JobConfig {
            mode,
            workers,
            buffer_messages: usize::MAX,
            sending_threshold: hybridgraph_net::flow::DEFAULT_SENDING_THRESHOLD,
            profile: DeviceProfile::local_hdd(),
            max_supersteps: 10_000,
            vblocks_per_worker: None,
            pre_pull: true,
            combining: true,
            lru_capacity: None,
            cpu_us_per_message: 0.5,
            cpu_us_per_vertex: 0.5,
            switch_interval: 2,
            initial_mode_override: None,
            switch_threshold: 0.1,
            push_sender_combining: false,
            disk_root: None,
            checkpoint: CheckpointPolicy::Never,
            adaptive_checkpoint_factor: 10.0,
            fault_plan: None,
            max_recoveries: 8,
            message_logging: false,
            trace: None,
            codec: CodecChoice::None,
            pacer: None,
            shared_stores: None,
            shared_cache: None,
            logical_io_budget: None,
            memory_budget: None,
            barrier_sink: None,
            resume: None,
            worker_disks: None,
            fault_aware_checkpoint: false,
            progress: None,
            async_residual: 1e-9,
            async_max_rounds: 8,
        }
    }

    /// Sets the per-worker message buffer (the limited-memory scenario).
    pub fn with_buffer(mut self, messages: usize) -> Self {
        self.buffer_messages = messages;
        self
    }

    /// Sets the device profile.
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the sending threshold in bytes.
    pub fn with_sending_threshold(mut self, bytes: usize) -> Self {
        self.sending_threshold = bytes;
        self
    }

    /// Sets the checkpointing policy.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }

    /// Installs a fault-injection schedule.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables sender-side message logging, which lets the master use
    /// Pregel-style confined recovery instead of a global rollback.
    pub fn with_message_logging(mut self, on: bool) -> Self {
        self.message_logging = on;
        self
    }

    /// Installs an observability sink; the sink's worker count must match
    /// `workers` (checked by the runner).
    pub fn with_trace(mut self, sink: Arc<hybridgraph_obs::TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Sets the on-disk compression codec.
    pub fn with_codec(mut self, codec: CodecChoice) -> Self {
        self.codec = codec;
        self
    }

    /// Installs a multi-job pacing handle (see [`StepPacer`]).
    pub fn with_pacer(mut self, pacer: Arc<dyn StepPacer>) -> Self {
        self.pacer = Some(pacer);
        self
    }

    /// Attaches catalog-built stores; also pins `workers` to their slot
    /// count, which a registered graph requires.
    pub fn with_shared_stores(mut self, stores: SharedStores) -> Self {
        self.workers = stores.workers();
        self.shared_stores = Some(stores);
        self
    }

    /// Installs the cross-job edge-extent cache.
    pub fn with_shared_cache(mut self, cache: Arc<SharedEdgeCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Caps the job's cumulative logical I/O bytes.
    pub fn with_io_budget(mut self, bytes: u64) -> Self {
        self.logical_io_budget = Some(bytes);
        self
    }

    /// Caps the job's summed per-superstep high-water memory bytes.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Installs a durable barrier sink (see [`JobConfig::barrier_sink`]).
    pub fn with_barrier_sink(mut self, sink: Arc<dyn BarrierSink>) -> Self {
        self.barrier_sink = Some(sink);
        self
    }

    /// Resumes from a committed master snapshot.
    pub fn with_resume(mut self, state: ResumeState) -> Self {
        self.resume = Some(state);
        self
    }

    /// Mounts persistent per-worker disks; `disks.len()` must equal
    /// `workers` (checked by the runner).
    pub fn with_worker_disks(mut self, disks: WorkerDisks) -> Self {
        self.worker_disks = Some(disks);
        self
    }

    /// Installs a coarse progress observer (see [`ProgressSink`]).
    pub fn with_progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Turns fault-aware adaptive checkpoint spacing on or off.
    pub fn with_fault_aware_checkpoint(mut self, on: bool) -> Self {
        self.fault_aware_checkpoint = on;
        self
    }

    /// Sets the per-block residual threshold for `Async` pseudo-rounds.
    pub fn with_async_residual(mut self, residual: f64) -> Self {
        self.async_residual = residual;
        self
    }

    /// Caps the dirty pseudo-rounds per superstep in `Async` mode.
    pub fn with_async_max_rounds(mut self, rounds: u64) -> Self {
        self.async_max_rounds = rounds;
        self
    }

    /// True if the limited-memory scenario is configured.
    pub fn memory_limited(&self) -> bool {
        self.buffer_messages != usize::MAX
    }

    /// The LRU capacity `Pull` mode uses.
    pub fn effective_lru_capacity(&self) -> usize {
        self.lru_capacity.unwrap_or(self.buffer_messages).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = JobConfig::new(Mode::Hybrid, 5);
        assert_eq!(c.workers, 5);
        assert_eq!(c.sending_threshold, 4 * 1024 * 1024);
        assert_eq!(c.switch_interval, 2);
        assert!(!c.memory_limited());
        assert!(c.pre_pull);
        assert!(c.combining);
    }

    #[test]
    fn builders() {
        let c = JobConfig::new(Mode::Push, 3)
            .with_buffer(500_000)
            .with_sending_threshold(1024);
        assert!(c.memory_limited());
        assert_eq!(c.buffer_messages, 500_000);
        assert_eq!(c.sending_threshold, 1024);
        assert_eq!(c.effective_lru_capacity(), 500_000);
    }

    #[test]
    fn labels() {
        assert_eq!(Mode::BPull.label(), "b-pull");
        assert_eq!(Mode::Async.label(), "async");
        assert_eq!(Mode::ALL.len(), 5);
        assert!(
            !Mode::ALL.contains(&Mode::Async),
            "Async is not a figure mode and must not shift positional tags"
        );
    }

    #[test]
    fn mode_parsing_lists_valid_modes_on_error() {
        for (s, m) in [
            ("push", Mode::Push),
            ("pushM", Mode::PushM),
            ("pull", Mode::Pull),
            ("b-pull", Mode::BPull),
            ("bpull", Mode::BPull),
            ("hybrid", Mode::Hybrid),
            ("async", Mode::Async),
        ] {
            assert_eq!(s.parse::<Mode>(), Ok(m), "{s}");
        }
        let err = "warp".parse::<Mode>().unwrap_err();
        for name in ["push", "pushM", "pull", "b-pull", "hybrid", "async"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn async_knob_defaults_and_builders() {
        let c = JobConfig::new(Mode::Async, 2);
        assert_eq!(c.async_max_rounds, 8);
        assert!(c.async_residual > 0.0);
        let c = c.with_async_residual(1e-6).with_async_max_rounds(3);
        assert_eq!(c.async_residual, 1e-6);
        assert_eq!(c.async_max_rounds, 3);
    }

    #[test]
    fn checkpoint_and_fault_builders() {
        let c = JobConfig::new(Mode::Hybrid, 2);
        assert_eq!(c.checkpoint, CheckpointPolicy::Never);
        assert!(c.fault_plan.is_none());
        let plan = Arc::new(FaultPlan::new().kill(0, 1, crate::fault::FaultPhase::Compute));
        let c = c
            .with_checkpoint(CheckpointPolicy::EveryK(3))
            .with_fault_plan(Arc::clone(&plan));
        assert_eq!(c.checkpoint, CheckpointPolicy::EveryK(3));
        assert_eq!(c.fault_plan.as_ref().unwrap().len(), 1);
        assert_eq!(c.max_recoveries, 8);
    }

    #[test]
    fn message_logging_builder() {
        let c = JobConfig::new(Mode::Hybrid, 2);
        assert!(!c.message_logging, "logging is opt-in");
        let c = c.with_message_logging(true);
        assert!(c.message_logging);
    }

    #[test]
    fn codec_defaults_to_none() {
        let c = JobConfig::new(Mode::Hybrid, 2);
        assert!(c.codec.is_none());
        let c = c.with_codec(CodecChoice::Gaps);
        assert_eq!(c.codec, CodecChoice::Gaps);
    }

    #[test]
    fn lru_capacity_floor() {
        let mut c = JobConfig::new(Mode::Pull, 2);
        c.lru_capacity = Some(0);
        assert_eq!(c.effective_lru_capacity(), 1);
    }
}
